//! # seedmin — Adaptive Seed Minimization
//!
//! Facade crate re-exporting the full stack of the SIGMOD'19 reproduction
//! *Efficient Approximation Algorithms for Adaptive Seed Minimization*
//! (Tang, Huang, Xiao, Lakshmanan, Tang, Sun, Lim):
//!
//! * [`graph`] — probabilistic social graphs, generators, I/O;
//! * [`diffusion`] — IC/LT models, realizations, residual state, oracles;
//! * [`sampling`] — RR / multi-root-RR set sampling and concentration bounds;
//! * [`algo`] — ASTI, TRIM, TRIM-B and the AdaptIM / ATEUC baselines.
//!
//! ## Quickstart
//!
//! ```
//! use seedmin::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // A small power-law graph with weighted-cascade probabilities.
//! let mut rng = SmallRng::seed_from_u64(7);
//! let pairs = chung_lu_directed(500, 2_000, 2.1, &mut rng);
//! let g = assemble(500, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
//!
//! // Hidden ground truth: one sampled realization the policy will observe.
//! let phi = Realization::sample(&g, Model::IC, &mut rng);
//! let mut oracle = RealizationOracle::new(&g, phi);
//!
//! // Run ASTI with TRIM until 50 nodes are activated.
//! let report = asti(&g, Model::IC, 50, &AstiParams::with_eps(0.5), &mut oracle, &mut rng).unwrap();
//! assert!(report.total_activated >= 50);
//! ```

#![forbid(unsafe_code)]

pub use smin_core as algo;
pub use smin_diffusion as diffusion;
pub use smin_graph as graph;
pub use smin_sampling as sampling;

/// Convenient glob import covering the common workflow.
pub mod prelude {
    pub use smin_core::{
        adapt_im, asti, ateuc, trim, trim_b, AdaptImParams, AstiParams, AstiReport, AteucParams,
        TrimParams,
    };
    pub use smin_diffusion::{
        ForwardSim, Model, Realization, RealizationOracle, ResidualState, SimulationOracle,
    };
    pub use smin_graph::generators::{assemble, barabasi_albert, chung_lu_directed, erdos_renyi};
    pub use smin_graph::{Graph, GraphBuilder, WeightModel};
}
