//! The batch-size trade-off (§6.3): sweeping b shows seeds increasing and
//! selection time collapsing — TRIM-B trades adaptivity for throughput.
//! Also demonstrates the `SimulationOracle` (lazily sampled world), which is
//! how a deployment that can only observe real cascades would run.
//!
//! ```sh
//! cargo run --release --example batch_tradeoff
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::prelude::*;

fn main() {
    let n = 15_000;
    let mut rng = SmallRng::seed_from_u64(31);
    let pairs = chung_lu_directed(n, 60_000, 2.1, &mut rng);
    let g = assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("generator output is valid");
    let eta = n / 10;
    let reps = 3;

    println!("n = {n}, η = {eta}, {reps} independent worlds per batch size\n");
    println!("batch  mean seeds  mean waves  mean select time   relative time");
    let mut base_time = None;
    for b in [1usize, 2, 4, 8, 16] {
        let mut seeds = 0usize;
        let mut rounds = 0usize;
        let mut time = std::time::Duration::ZERO;
        for rep in 0..reps {
            // SimulationOracle: the world materializes only where cascades
            // actually travel.
            let world_rng = SmallRng::seed_from_u64(1000 + rep as u64);
            let mut oracle = SimulationOracle::new(&g, Model::IC, world_rng);
            let mut rng = SmallRng::seed_from_u64(2000 + rep as u64);
            let params = AstiParams::batched(0.5, b);
            let report = asti(&g, Model::IC, eta, &params, &mut oracle, &mut rng)
                .expect("parameters are valid");
            assert!(report.reached);
            seeds += report.num_seeds();
            rounds += report.num_rounds();
            time += report.total_select_time;
        }
        let t = time.as_secs_f64() / reps as f64;
        let rel = base_time.get_or_insert(t);
        println!(
            "{:>5}  {:>10.1}  {:>10.1}  {:>15.3}s  {:>13.0}%",
            b,
            seeds as f64 / reps as f64,
            rounds as f64 / reps as f64,
            t,
            t / *rel * 100.0
        );
    }
    println!("\nthe paper reports ASTI-2/4/8 at roughly 30%/10%/5% of ASTI's time (§6.2).");
}
