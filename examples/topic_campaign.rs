//! Topic-aware campaigns (the TIC extension the paper mentions in §2):
//! the same social graph spreads sports content and tech content through
//! different edges, so the minimum seed set depends on the campaign's topic
//! mixture. Also demonstrates the observation log: the sports campaign is
//! recorded and replayed step-for-step.
//!
//! ```sh
//! cargo run --release --example topic_campaign
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::diffusion::{InfluenceOracle, LoggingOracle, ReplayOracle};
use seedmin::graph::topics::TopicGraph;
use seedmin::prelude::*;

fn main() {
    let n = 8_000;
    let mut rng = SmallRng::seed_from_u64(88);
    let pairs = chung_lu_directed(n, 40_000, 2.1, &mut rng);
    let base = assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("generator output is valid");

    // Two topics with independent per-edge affinities.
    let topics = TopicGraph::random_affinities(base, 2, &mut rng);
    let eta = 200;

    println!("campaign target: η = {eta} of {n} users\n");
    println!("mixture (sports, tech)  seeds  rounds  spread");
    let mut recorded = None;
    for (name, mixture) in [
        ("pure sports", [1.0, 0.0]),
        ("pure tech  ", [0.0, 1.0]),
        ("50/50 blend", [0.5, 0.5]),
    ] {
        let g = topics.for_mixture(&mixture).expect("valid mixture");
        let mut world_rng = SmallRng::seed_from_u64(7);
        let phi = Realization::sample(&g, Model::IC, &mut world_rng);
        let inner = RealizationOracle::new(&g, phi);
        let mut oracle = LoggingOracle::new(inner, g.n());
        let mut rng = SmallRng::seed_from_u64(42);
        let report = asti(
            &g,
            Model::IC,
            eta,
            &AstiParams::with_eps(0.5),
            &mut oracle,
            &mut rng,
        )
        .expect("parameters are valid");
        println!(
            "{name}             {:>5}  {:>6}  {:>6}",
            report.num_seeds(),
            report.num_rounds(),
            report.total_activated
        );
        if name.starts_with("pure sports") {
            recorded = Some(oracle.into_parts().0);
        }
    }

    // Replay the sports campaign from its log alone — no graph, no RNG.
    let log = recorded.expect("sports campaign recorded");
    println!("\nreplaying the sports campaign from its observation log:");
    let mut replay = ReplayOracle::new(log.clone());
    for step in &log.steps {
        let activated = replay.observe(&step.seeds);
        println!(
            "  seeded {:?} -> {} newly activated",
            step.seeds,
            activated.len()
        );
    }
    println!(
        "replay reaches {} active users — byte-identical to the recorded run",
        replay.num_active()
    );
}
