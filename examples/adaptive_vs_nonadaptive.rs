//! Adaptive vs non-adaptive seed minimization — the paper's core claim
//! (§6.2, Figure 8): a non-adaptive seed set tuned for the *expected* spread
//! misses the threshold on some worlds and wastes seeds on others, while the
//! adaptive policy lands on target in every world.
//!
//! ```sh
//! cargo run --release --example adaptive_vs_nonadaptive
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::algo::{ateuc, evaluate_on_realizations, AteucParams};
use seedmin::prelude::*;

fn main() {
    let n = 10_000;
    let mut rng = SmallRng::seed_from_u64(5);
    let pairs = chung_lu_directed(n, 50_000, 2.1, &mut rng);
    let g = assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("generator output is valid");
    let eta = n / 100;
    let worlds = 20;

    // The paper's protocol: a fixed batch of sampled realizations.
    let realizations: Vec<Realization> = (0..worlds)
        .map(|_| Realization::sample(&g, Model::IC, &mut rng))
        .collect();

    // Non-adaptive: ATEUC picks ONE set achieving E[I(S)] ≥ η.
    let out =
        ateuc(&g, Model::IC, eta, &AteucParams::default(), &mut rng).expect("parameters are valid");
    let spreads = evaluate_on_realizations(&g, &out.seeds, &realizations);

    // Adaptive: ASTI re-runs per world, observing as it goes.
    let params = AstiParams::with_eps(0.5);
    let mut asti_seeds = Vec::new();
    let mut asti_spreads = Vec::new();
    for phi in &realizations {
        let mut oracle = RealizationOracle::new(&g, phi.clone());
        let mut rng = SmallRng::seed_from_u64(17);
        let report =
            asti(&g, Model::IC, eta, &params, &mut oracle, &mut rng).expect("valid parameters");
        asti_seeds.push(report.num_seeds());
        asti_spreads.push(report.total_activated);
    }

    println!(
        "threshold η = {eta}; ATEUC selected |S| = {} once\n",
        out.seeds.len()
    );
    println!("world  ATEUC spread  status      ASTI spread  ASTI seeds");
    let mut misses = 0;
    for i in 0..worlds {
        let status = if spreads[i] < eta {
            misses += 1;
            "MISS      "
        } else if spreads[i] > eta * 3 / 2 {
            "OVERSHOOT "
        } else {
            "ok        "
        };
        println!(
            "{:>5}  {:>12}  {}  {:>11}  {:>10}",
            i + 1,
            spreads[i],
            status,
            asti_spreads[i],
            asti_seeds[i]
        );
    }
    let mean_seeds = asti_seeds.iter().sum::<usize>() as f64 / worlds as f64;
    println!(
        "\nATEUC: {misses}/{worlds} worlds under target (spread guarantee is only in expectation)"
    );
    println!(
        "ASTI: 0/{worlds} under target, {mean_seeds:.1} seeds on average vs ATEUC's fixed {}",
        out.seeds.len()
    );
}
