//! Quickstart: build a probabilistic social graph, run ASTI, inspect the
//! adaptive rounds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::prelude::*;

fn main() {
    // 1. A synthetic social network: 5 000 users, 25 000 follow edges with a
    //    power-law degree profile, weighted-cascade probabilities
    //    (p(u→v) = 1/indeg(v)) as in the paper's experiments.
    let n = 5_000;
    let mut rng = SmallRng::seed_from_u64(7);
    let pairs = chung_lu_directed(n, 25_000, 2.1, &mut rng);
    let g = assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("generator output is valid");
    println!("graph: {} nodes, {} edges", g.n(), g.m());

    // 2. The hidden ground truth. In a real campaign the oracle is the world
    //    itself; here we sample one live-edge realization up front.
    let eta = 250; // influence at least 250 users
    let phi = Realization::sample(&g, Model::IC, &mut rng);
    let mut oracle = RealizationOracle::new(&g, phi);

    // 3. Run ASTI (TRIM each round, ε = 0.5 — the paper's setting).
    let params = AstiParams::with_eps(0.5);
    let report =
        asti(&g, Model::IC, eta, &params, &mut oracle, &mut rng).expect("parameters are valid");

    // 4. Inspect what happened.
    println!(
        "reached η = {eta}? {} — activated {} users with {} seeds in {} rounds",
        report.reached,
        report.total_activated,
        report.num_seeds(),
        report.num_rounds()
    );
    println!("selection wall-clock: {:?}", report.total_select_time);
    println!("\nround  seed   η_i   activated  mRR sets");
    for (i, r) in report.rounds.iter().enumerate() {
        println!(
            "{:>5}  {:>5}  {:>4}  {:>9}  {:>8}",
            i + 1,
            r.seeds[0],
            r.eta_i,
            r.newly_activated,
            r.sets_generated
        );
    }
}
