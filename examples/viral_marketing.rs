//! Viral marketing scenario from the paper's introduction: an advertiser
//! hands out free product samples batch by batch, watching each batch's
//! word-of-mouth cascade before deciding who gets the next samples, until a
//! target audience size is reached.
//!
//! Compares the sequential campaign (one influencer at a time, maximum
//! adaptivity) against batched campaigns (2/4/8 samples shipped per wave —
//! cheaper logistics, slightly more samples) on the same hidden world.
//!
//! ```sh
//! cargo run --release --example viral_marketing
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::prelude::*;

fn main() {
    // A community of 20 000 users; follower counts are heavy-tailed.
    let n = 20_000;
    let mut rng = SmallRng::seed_from_u64(2024);
    let pairs = chung_lu_directed(n, 120_000, 2.1, &mut rng);
    let g = assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("generator output is valid");

    // Campaign goal: 5% market penetration.
    let eta = n / 20;
    println!("campaign target: {eta} activated users out of {n}\n");

    // One hidden world shared by all strategies, so the comparison is fair.
    let phi = Realization::sample(&g, Model::IC, &mut rng);

    println!("batch  free samples used  waves  time to select");
    for b in [1usize, 2, 4, 8] {
        let mut oracle = RealizationOracle::new(&g, phi.clone());
        let mut rng = SmallRng::seed_from_u64(99);
        let params = AstiParams::batched(0.5, b);
        let report =
            asti(&g, Model::IC, eta, &params, &mut oracle, &mut rng).expect("parameters are valid");
        assert!(report.reached, "adaptive campaigns always reach the target");
        println!(
            "{:>5}  {:>17}  {:>5}  {:>14.3?}",
            b,
            report.num_seeds(),
            report.num_rounds(),
            report.total_select_time
        );
    }

    println!("\nsmaller batches adapt more (fewer samples); larger batches decide faster.");
}
