//! Example 2.3 / Figure 2 of the paper, executed exactly: why adaptive seed
//! minimization must rank nodes by *truncated* spread.
//!
//! The 4-node graph has E[I(v1)] = 2.75 — the best vanilla spread — yet v1
//! fails the η = 2 target on a quarter of the worlds. Ranking by truncated
//! spread E[Γ] = E[min{I, η}] instead puts v2/v3 first, which hit the target
//! on every world.
//!
//! ```sh
//! cargo run --release --example truncated_vs_vanilla
//! ```

use seedmin::diffusion::exact::{exact_expected_spread, exact_expected_truncated};
use seedmin::diffusion::Model;
use seedmin::graph::GraphBuilder;

fn main() {
    // Figure 2: v1→v2 (0.5), v1→v3 (0.5), v2→v4 (1), v3→v4 (1).
    let mut b = GraphBuilder::new(4);
    b.add_edge_p(0, 1, 0.5).unwrap();
    b.add_edge_p(0, 2, 0.5).unwrap();
    b.add_edge_p(1, 3, 1.0).unwrap();
    b.add_edge_p(2, 3, 1.0).unwrap();
    let g = b.build().unwrap();

    let eta = 2;
    println!("Figure 2 graph, threshold η = {eta}\n");
    println!("node  E[I(v)]  E[Γ(v)] = E[min(I, η)]");
    for v in 0..4u32 {
        let vanilla = exact_expected_spread(&g, Model::IC, &[v]);
        let truncated = exact_expected_truncated(&g, Model::IC, &[v], eta);
        println!("  v{}   {vanilla:>6.3}  {truncated:>6.3}", v + 1);
    }

    println!();
    println!("vanilla ranking picks v1 (2.75): on world ϕ4 (prob 0.25) it influences only");
    println!("itself, forcing a second seed — 1.25 expected seeds.");
    println!("truncated ranking picks v2/v3 (2.00): one seed suffices on every world.");
    println!();
    println!("This is why plain RR-set estimators (and adaptive IM algorithms built on");
    println!("them, like AdaptIM) cannot solve ASM with guarantees, and why the paper's");
    println!("multi-root RR sets exist (§3.2–3.3).");
}
