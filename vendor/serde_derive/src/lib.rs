//! Offline `#[derive(Serialize)]` shim. Handles the shapes the workspace
//! actually derives on — structs with named fields (plus unit structs) —
//! without syn/quote, by walking the raw token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (doc comments arrive as `#[doc = ...]`) and
    // visibility, then expect `struct Name`.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next(); // pub(crate) etc.
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("this serde shim only derives Serialize for structs");
            }
            _ => {}
        }
    }
    let name = name.expect("derive input must be a struct");

    // Find the field block. A unit struct (`struct X;`) has none; a tuple
    // struct would show a parenthesis group, which we reject explicitly.
    let mut fields: Vec<String> = Vec::new();
    for tt in tokens {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = parse_named_fields(g.stream());
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("this serde shim does not derive Serialize for tuple structs");
            }
            _ => {}
        }
    }

    let mut body = String::from("out.push('{');\n");
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "::serde::write_json_string({field:?}, out);\nout.push(':');\n\
             ::serde::Serialize::write_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');");

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extracts field names from the contents of a named-field struct body:
/// skips per-field attributes and visibility, takes the ident before each
/// top-level `:`, then skips the type up to the next top-level `,`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        while let Some(tt) = tokens.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.next() else {
            break;
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{field}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}
