//! Offline shim reproducing the subset of the `rand` 0.9 API used by the
//! seedmin workspace. The build environment has no crates.io access, so this
//! crate stands in for the real dependency with identical call signatures:
//!
//! * [`RngCore`] / [`Rng`] with `random::<T>()` and `random_range(..)`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] — here a xoshiro256++ generator seeded via SplitMix64.
//!
//! Determinism matters more than statistical pedigree for the reproduction
//! tests; xoshiro256++ comfortably passes every use the stack makes of it.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (matches `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::random`] (stands in for
/// `StandardUniform: Distribution<T>`).
pub trait Random: Sized {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Random for f64 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        // 53 random mantissa bits in [0, 1), as the real rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u32 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u32()
    }
}

impl Random for u64 {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    fn random_from(rng: &mut (impl RngCore + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as $wide;
                // Lemire-style widening multiply; bias is < 2^-64 per draw,
                // far below anything the tests can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return <$t>::random_from_wide(rng);
                }
                let span = (end - start) as $wide + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64);

trait RandomFromWide: Sized {
    fn random_from_wide(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

macro_rules! impl_random_from_wide {
    ($($t:ty),*) => {$(
        impl RandomFromWide for $t {
            fn random_from_wide(rng: &mut (impl RngCore + ?Sized)) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_from_wide!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                (self.start as $u).wrapping_add(hi) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::random_from(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::random_from(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level convenience methods (matches `rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction (matches `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ seeded via SplitMix64, mirroring
    /// how the real `SmallRng` is constructed from a `u64` seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
        for _ in 0..100 {
            let k = rng.random_range(0..=4u32);
            assert!(k <= 4);
            let f = rng.random_range(-1.0f64..2.0);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(3);
        let total: f64 = (0..100_000).map(|_| rng.random::<f64>()).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
