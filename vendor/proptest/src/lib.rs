//! Offline shim for the slice of proptest the workspace's property tests
//! use: range and tuple strategies, `prop_map`, `proptest!` with an optional
//! `#![proptest_config(..)]`, and the `prop_assert*` macros. Inputs are
//! sampled uniformly (no shrinking); failures report the case number so a
//! failing case can be replayed deterministically — generation is seeded per
//! test from a fixed constant, so runs are reproducible.

use rand::rngs::SmallRng;
use rand::Rng;

/// Generates values of `Value` for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_halfopen {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_halfopen!(i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `Just(v)` — the constant strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Per-test configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Base seed for case generation; combined with the case index so each case
/// is distinct but every run is identical.
pub const BASE_SEED: u64 = 0x5EED_CAFE_F00D_0001;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Expands each `#[test] fn name(pat in strategy, ...) { body }` item into a
/// plain `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(config.cases, stringify!($name), |rng| {
                    $(
                        let $pat = $crate::Strategy::generate(&($strategy), rng);
                    )+
                    $body
                });
            }
        )*
    };
    (
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($pat in $strategy),+ ) $body )*
        }
    };
}

/// Runs `f` for `cases` deterministic inputs, labelling any panic with the
/// failing case index.
pub fn run_cases(cases: u32, test_name: &str, f: impl Fn(&mut SmallRng)) {
    use rand::SeedableRng;
    for case in 0..cases {
        let mut rng =
            SmallRng::seed_from_u64(BASE_SEED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest shim: {test_name} failed at case {case}/{cases}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3usize..20, x in -1.0f64..2.0) {
            prop_assert!((3..20).contains(&n));
            prop_assert!((-1.0..2.0).contains(&x));
        }

        #[test]
        fn tuples_and_map((a, b) in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(b >= a);
            prop_assert_ne!(b, a + 100);
            prop_assert_eq!(a, a);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(k in 1u64..5) {
            prop_assert!((1..5).contains(&k));
        }
    }
}
