//! Offline shim for the `serde_json` surface the seedmin workspace uses:
//! [`Value`], the [`json!`] macro (flat objects/arrays with expression
//! values), [`to_string`] / [`to_string_pretty`], and [`from_str`] for the
//! primitive/`Vec` shapes the tests deserialize.

use serde::Serialize;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are kept as `f64`, which is lossless for every integer the
    /// workspace serializes (they are far below 2^53).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.write_json(out),
            Value::Number(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    x.write_json(out);
                }
            }
            Value::String(s) => s.write_json(out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    k.write_json(out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

macro_rules! impl_from_num {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// Builds a [`Value`] from a flat `{"key": expr, ...}` / `[expr, ...]`
/// literal. Unlike real serde_json, nested object literals must themselves be
/// wrapped in `json!` — the workspace only uses that form anyway.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($value)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
    Err(Error { msg: msg.into() })
}

/// Serializes `value` as compact JSON. Infallible for the shim's trait, but
/// kept `Result` for signature compatibility.
pub fn to_string(value: &impl Serialize) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty(value: &impl Serialize) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = parse(&compact)?;
    let mut out = String::new();
    render_pretty(&parsed, 0, &mut out);
    Ok(out)
}

fn render_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                k.write_json(out);
                out.push_str(": ");
                render_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => other.write_json(out),
    }
}

/// Types reconstructible from a [`Value`] (shim stand-in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_de_int {
    ($($t:ty),* $(,)?) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(x) if x.fract() == 0.0 => Ok(*x as $t),
                    other => err(format!("expected integer, found {other:?}")),
                }
            }
        }
    )*};
}

impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(x) => Ok(*x),
            Value::Null => Ok(f64::NAN),
            other => err(format!("expected number, found {other:?}")),
        }
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {other:?}")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => err(format!("expected string, found {other:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => err(format!("expected array, found {other:?}")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Parses a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

fn parse(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                entries.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        match hex.and_then(char::from_u32) {
                            Some(c) => {
                                out.push(c);
                                *pos += 4;
                            }
                            None => return err(format!("bad \\u escape at byte {pos}")),
                        }
                    }
                    _ => return err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| Error {
                    msg: "invalid UTF-8".into(),
                })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or(Error {
            msg: format!("invalid number at byte {start}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let s = to_string_pretty(&vec![1, 2, 3]).unwrap();
        let back: Vec<i32> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "x",
            "n": 3usize,
            "ok": true,
            "slope": Some(2.5),
            "missing": None::<f64>,
            "series": vec![json!([1, 0.5])],
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"x","n":3,"ok":true,"slope":2.5,"missing":null,"series":[[1,0.5]]}"#
        );
    }

    #[test]
    fn pretty_is_parseable_and_indented() {
        let v = json!({"a": vec![1, 2], "b": "x"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let v = json!("line\n\"quote\"");
        let s = to_string(&v).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "line\n\"quote\"");
    }
}
