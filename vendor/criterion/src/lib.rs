//! Offline shim for the slice of Criterion's API the workspace benches use.
//! Instead of statistical sampling it runs each routine a handful of times
//! and prints the mean wall-clock duration — enough for `cargo bench` to be
//! a meaningful smoke run, and for `cargo build --benches` to compile the
//! real bench bodies exactly as written.
//!
//! Like real Criterion, `cargo bench -- --test` switches to test mode: each
//! routine executes exactly once and timing output is suppressed, so CI can
//! assert every bench body actually runs without paying for measurement.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// How many timed iterations the shim runs per benchmark (one in `--test`
/// mode, mirroring real Criterion's smoke-test behavior).
fn runs() -> u32 {
    if test_mode() {
        1
    } else {
        3
    }
}

/// Whether `--test` was passed to the bench binary (after `cargo bench --`).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` times the routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            drop(out);
        }
    }
}

/// Top-level driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
    let runs = runs();
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: runs,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if test_mode() {
        println!("test bench {label:<48} ... ok");
    } else {
        let per_iter = bencher.elapsed / runs.max(1);
        println!("bench {label:<48} {per_iter:>12.2?}/iter (shim, {runs} iters)");
    }
}

/// Throughput annotation (accepted, ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
