//! Offline shim for the slice of `serde` the seedmin workspace uses: the
//! [`Serialize`] trait (and its derive) as consumed by the sibling
//! `serde_json` shim. Instead of serde's visitor architecture, `Serialize`
//! here writes JSON text directly — `serde_json::to_string*` and the derive
//! macro are the only consumers, so the simpler contract is equivalent.

// Let the derive's generated `::serde::` paths resolve inside this crate's
// own tests (the same trick the real serde uses).
extern crate self as serde;

/// A type that can write itself as a JSON value.
pub trait Serialize {
    fn write_json(&self, out: &mut String);
}

/// Re-export of the derive macro so `use serde::Serialize;` brings in both
/// the trait and `#[derive(Serialize)]`, as with the real crate.
pub use serde_derive::Serialize;

macro_rules! impl_display_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_display_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            // JSON has no NaN/Inf; serde_json emits null for them.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

/// Escapes and quotes `s` as a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn to_json(v: &impl Serialize) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&3usize), "3");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Some(7u32)), "7");
        assert_eq!(to_json(&None::<u32>), "null");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            label: String,
            tags: Vec<u32>,
        }
        let p = Point {
            x: 0.5,
            label: "origin".into(),
            tags: vec![1, 2],
        };
        assert_eq!(to_json(&p), r#"{"x":0.5,"label":"origin","tags":[1,2]}"#);
    }
}
