//! Statistical validation of Lemma 3.6 / Lemma 4.1: the node (batch) TRIM
//! (TRIM-B) returns has exact expected truncated spread within
//! `(1 − 1/e)(1 − ε)` (resp. `ρ_b(1 − 1/e)(1 − ε)`) of the exhaustive
//! optimum, with only the advertised (tiny) failure probability.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::algo::trim::{trim, TrimScratch};
use seedmin::algo::trim_b::trim_b;
use seedmin::algo::TrimParams;
use seedmin::diffusion::exact::exact_expected_truncated;
use seedmin::diffusion::{Model, ResidualState};
use seedmin::graph::{generators, Graph, WeightModel};
use seedmin::sampling::coverage::rho_b;

fn instances() -> Vec<Graph> {
    let mut out = Vec::new();
    for seed in 0..5u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = generators::erdos_renyi(8, 12, &mut rng);
        out.push(
            generators::assemble(8, &pairs, true, WeightModel::Uniform(0.45), &mut rng).unwrap(),
        );
    }
    out
}

#[test]
fn trim_selection_meets_guarantee_with_margin() {
    let eps = 0.3;
    let params = TrimParams::with_eps(eps);
    let factor = (1.0 - 1.0 / std::f64::consts::E) * (1.0 - eps);
    let mut violations = 0usize;
    let mut total = 0usize;
    for (gi, g) in instances().iter().enumerate() {
        for eta in [2usize, 4, 6] {
            // exhaustive per-singleton optimum
            let exact: Vec<f64> = (0..g.n() as u32)
                .map(|v| exact_expected_truncated(g, Model::IC, &[v], eta))
                .collect();
            let opt = exact.iter().cloned().fold(f64::MIN, f64::max);
            for run in 0..6u64 {
                let residual = ResidualState::new(g.n());
                let mut scratch = TrimScratch::new(g.n());
                let mut rng = SmallRng::seed_from_u64(run * 31 + gi as u64);
                let out = trim(
                    g,
                    Model::IC,
                    &residual,
                    eta,
                    &params,
                    &mut scratch,
                    &mut rng,
                )
                .unwrap();
                total += 1;
                if exact[out.node as usize] < factor * opt - 1e-9 {
                    violations += 1;
                }
            }
        }
    }
    // Failure probability per round is δ ≪ 1; across 90 runs even a couple
    // of violations would indicate a real bug.
    assert!(
        violations == 0,
        "{violations}/{total} TRIM selections below the (1−1/e)(1−ε) guarantee"
    );
}

#[test]
fn trim_b_selection_meets_batch_guarantee() {
    let eps = 0.3;
    let b = 2usize;
    let params = TrimParams::with_eps(eps);
    let factor = rho_b(b) * (1.0 - 1.0 / std::f64::consts::E) * (1.0 - eps);
    let mut violations = 0usize;
    let mut total = 0usize;
    for (gi, g) in instances().iter().enumerate() {
        let n = g.n() as u32;
        for eta in [3usize, 5] {
            // exhaustive optimum over all size-2 batches
            let mut opt = f64::MIN;
            for u in 0..n {
                for v in (u + 1)..n {
                    opt = opt.max(exact_expected_truncated(g, Model::IC, &[u, v], eta));
                }
            }
            for run in 0..4u64 {
                let residual = ResidualState::new(g.n());
                let mut scratch = TrimScratch::new(g.n());
                let mut rng = SmallRng::seed_from_u64(run * 17 + gi as u64);
                let out = trim_b(
                    g,
                    Model::IC,
                    &residual,
                    eta,
                    b,
                    &params,
                    &mut scratch,
                    &mut rng,
                )
                .unwrap();
                let achieved = exact_expected_truncated(g, Model::IC, &out.seeds, eta);
                total += 1;
                if achieved < factor * opt - 1e-9 {
                    violations += 1;
                }
            }
        }
    }
    assert!(
        violations == 0,
        "{violations}/{total} TRIM-B selections below the ρ_b(1−1/e)(1−ε) guarantee"
    );
}

#[test]
fn trim_estimate_brackets_exact_value() {
    // The reported estimate η·Λ(v*)/|R| converges to E[Γ̃(v*)], which is
    // within [ (1−1/e)·E[Γ(v*)], E[Γ(v*)] ] — verify against the exact value
    // with sampling slack.
    let params = TrimParams::with_eps(0.1);
    for (gi, g) in instances().iter().enumerate() {
        let eta = 4;
        let residual = ResidualState::new(g.n());
        let mut scratch = TrimScratch::new(g.n());
        let mut rng = SmallRng::seed_from_u64(gi as u64);
        let out = trim(
            g,
            Model::IC,
            &residual,
            eta,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        let exact = exact_expected_truncated(g, Model::IC, &[out.node], eta);
        assert!(
            out.est_truncated_spread <= exact * 1.15 + 0.1,
            "graph {gi}: estimate {} far above exact {exact}",
            out.est_truncated_spread
        );
        assert!(
            out.est_truncated_spread >= (1.0 - 1.0 / std::f64::consts::E) * exact * 0.85 - 0.1,
            "graph {gi}: estimate {} far below the band around {exact}",
            out.est_truncated_spread
        );
    }
}
