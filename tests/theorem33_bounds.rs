//! Exhaustive verification of Theorem 3.3 and the §3.3 Remark: the mRR
//! estimator `Γ̃(S) = η·1[S ∩ R ≠ ∅]` satisfies
//!
//! * randomized rounding (`E[k] = n/η`):  `(1 − 1/e)·E[Γ] ≤ E[Γ̃] ≤ E[Γ]`
//! * fixed `k = ⌊n/η⌋`:                  ratio in `[1 − 1/√e, 1]`
//! * fixed `k = ⌊n/η⌋ + 1`:              ratio in `[1 − 1/e, 2]`
//!
//! `E[Γ̃]` is computed *exactly*: enumerate every realization, compute the
//! forward reach `x = |Reach_ϕ(S)|`, and apply the hypergeometric miss
//! probability `p(x) = C(n−x, k)/C(n, k)` under the k-distribution. A
//! Monte-Carlo cross-check then confirms the actual sampler realizes the
//! same expectation.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::diffusion::exact::{
    exact_expected_truncated, for_each_ic_realization, for_each_lt_realization,
};
use seedmin::diffusion::{ForwardSim, Model, ResidualState};
use seedmin::graph::{generators, Graph, GraphBuilder, WeightModel};
use seedmin::sampling::{MrrSampler, RootCountDist};

/// `C(n−x, k)/C(n, k)` — probability that k uniform distinct roots all miss
/// a fixed x-subset.
fn miss_prob(n: usize, x: usize, k: usize) -> f64 {
    if k > n - x {
        return 0.0;
    }
    let mut p = 1.0f64;
    for i in 0..k {
        p *= (n - x - i) as f64 / (n - i) as f64;
    }
    p
}

/// Exact `E[Γ̃(S)]` under a root-count distribution, by realization
/// enumeration.
fn exact_estimator_expectation(g: &Graph, seeds: &[u32], eta: usize, dist: RootCountDist) -> f64 {
    exact_estimator_expectation_model(g, Model::IC, seeds, eta, dist)
}

/// Model-generic version (the live-edge argument behind Theorem 3.3 is
/// model-agnostic; we verify that concretely under LT too).
fn exact_estimator_expectation_model(
    g: &Graph,
    model: Model,
    seeds: &[u32],
    eta: usize,
    dist: RootCountDist,
) -> f64 {
    let n = g.n();
    let ratio = n as f64 / eta as f64;
    let floor = ratio.floor() as usize;
    let frac = ratio - ratio.floor();
    let ks: Vec<(usize, f64)> = match dist {
        RootCountDist::Randomized => {
            if frac > 0.0 {
                vec![
                    (floor.clamp(1, n), 1.0 - frac),
                    ((floor + 1).clamp(1, n), frac),
                ]
            } else {
                vec![(floor.clamp(1, n), 1.0)]
            }
        }
        RootCountDist::FixedFloor => vec![(floor.clamp(1, n), 1.0)],
        RootCountDist::FixedCeil => vec![((floor + 1).clamp(1, n), 1.0)],
    };

    let mut sim = ForwardSim::new(n);
    let mut total = 0.0;
    let mut visit = |phi: &seedmin::diffusion::Realization, p: f64| {
        let x = sim.spread(g, phi, seeds);
        let hit: f64 = ks
            .iter()
            .map(|&(k, w)| w * (1.0 - miss_prob(n, x, k)))
            .sum();
        total += p * eta as f64 * hit;
    };
    match model {
        Model::IC => for_each_ic_realization(g, &mut visit),
        Model::LT => for_each_lt_realization(g, &mut visit),
    }
    total
}

fn test_graphs() -> Vec<Graph> {
    let mut graphs = Vec::new();
    // Figure 2
    let mut b = GraphBuilder::new(4);
    b.add_edge_p(0, 1, 0.5).unwrap();
    b.add_edge_p(0, 2, 0.5).unwrap();
    b.add_edge_p(1, 3, 1.0).unwrap();
    b.add_edge_p(2, 3, 1.0).unwrap();
    graphs.push(b.build().unwrap());
    // small random graphs (m ≤ 12 keeps enumeration cheap)
    for seed in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = generators::erdos_renyi(7, 11, &mut rng);
        graphs.push(
            generators::assemble(7, &pairs, true, WeightModel::Uniform(0.4), &mut rng).unwrap(),
        );
    }
    graphs
}

#[test]
fn randomized_rounding_is_within_theorem_band() {
    let inv_e = 1.0 / std::f64::consts::E;
    for (gi, g) in test_graphs().iter().enumerate() {
        for eta in 1..=g.n() {
            for v in 0..g.n() as u32 {
                let exact = exact_expected_truncated(g, Model::IC, &[v], eta);
                let est = exact_estimator_expectation(g, &[v], eta, RootCountDist::Randomized);
                assert!(
                    est <= exact + 1e-9,
                    "graph {gi}, v{v}, η={eta}: E[Γ̃]={est} > E[Γ]={exact}"
                );
                assert!(
                    est >= (1.0 - inv_e) * exact - 1e-9,
                    "graph {gi}, v{v}, η={eta}: E[Γ̃]={est} < (1−1/e)·E[Γ]={}",
                    (1.0 - inv_e) * exact
                );
            }
        }
    }
}

#[test]
fn randomized_rounding_holds_for_seed_sets() {
    let g = &test_graphs()[0];
    let inv_e = 1.0 / std::f64::consts::E;
    let sets: &[&[u32]] = &[&[0, 3], &[1, 2], &[0, 1, 2, 3], &[2, 3]];
    for &seeds in sets {
        for eta in 1..=4 {
            let exact = exact_expected_truncated(g, Model::IC, seeds, eta);
            let est = exact_estimator_expectation(g, seeds, eta, RootCountDist::Randomized);
            assert!(est <= exact + 1e-9);
            assert!(est >= (1.0 - inv_e) * exact - 1e-9);
        }
    }
}

#[test]
fn fixed_floor_band_is_coarser() {
    // ratio ∈ [1 − 1/√e, 1]
    let lo = 1.0 - (-0.5f64).exp();
    for g in &test_graphs() {
        for eta in 2..=g.n() {
            for v in 0..g.n() as u32 {
                let exact = exact_expected_truncated(g, Model::IC, &[v], eta);
                let est = exact_estimator_expectation(g, &[v], eta, RootCountDist::FixedFloor);
                assert!(est <= exact + 1e-9, "fixed-floor must not exceed E[Γ]");
                assert!(
                    est >= lo * exact - 1e-9,
                    "fixed-floor ratio {} below 1−1/√e",
                    est / exact
                );
            }
        }
    }
}

#[test]
fn fixed_ceil_band_can_exceed_truth() {
    // ratio ∈ [1 − 1/e, 2]; crucially it CAN exceed 1 (over-estimation) —
    // find a witness, which is exactly why the Remark rejects this variant.
    let inv_e = 1.0 / std::f64::consts::E;
    let mut witnessed_over = false;
    for g in &test_graphs() {
        for eta in 2..=g.n() {
            for v in 0..g.n() as u32 {
                let exact = exact_expected_truncated(g, Model::IC, &[v], eta);
                let est = exact_estimator_expectation(g, &[v], eta, RootCountDist::FixedCeil);
                assert!(est >= (1.0 - inv_e) * exact - 1e-9);
                assert!(est <= 2.0 * exact + 1e-9);
                if est > exact + 1e-9 {
                    witnessed_over = true;
                }
            }
        }
    }
    assert!(
        witnessed_over,
        "expected at least one over-estimation witness for fixed-ceil"
    );
}

#[test]
fn sampler_realizes_the_exact_expectation() {
    // Monte-Carlo over the real MrrSampler vs the closed-form expectation.
    let g = &test_graphs()[0];
    let n = g.n();
    let eta = 2;
    for v in 0..4u32 {
        let expected = exact_estimator_expectation(g, &[v], eta, RootCountDist::Randomized);
        let mut sampler = MrrSampler::new(n);
        let residual = ResidualState::new(n);
        let mut rng = SmallRng::seed_from_u64(777 + v as u64);
        let trials = 60_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let set = sampler.sample(
                g,
                Model::IC,
                &residual,
                eta,
                RootCountDist::Randomized,
                &mut rng,
            );
            if set.contains(&v) {
                hits += 1;
            }
        }
        let est = eta as f64 * hits as f64 / trials as f64;
        assert!(
            (est - expected).abs() < 0.03,
            "v{v}: sampler {est} vs exact {expected}"
        );
    }
}

#[test]
fn randomized_rounding_band_holds_under_lt() {
    // Build small valid LT instances (WC weights sum to 1 per node) and
    // verify the Theorem 3.3 band model-agnostically.
    let inv_e = 1.0 / std::f64::consts::E;
    for seed in 0..3u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = generators::erdos_renyi(6, 9, &mut rng);
        let g =
            generators::assemble(6, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
        assert!(g.is_valid_lt());
        for eta in 1..=6usize {
            for v in 0..6u32 {
                let exact = exact_expected_truncated(&g, Model::LT, &[v], eta);
                let est = exact_estimator_expectation_model(
                    &g,
                    Model::LT,
                    &[v],
                    eta,
                    RootCountDist::Randomized,
                );
                assert!(
                    est <= exact + 1e-9,
                    "LT seed {seed} v{v} η={eta}: {est} > {exact}"
                );
                assert!(
                    est >= (1.0 - inv_e) * exact - 1e-9,
                    "LT seed {seed} v{v} η={eta}: {est} < (1−1/e)·{exact}"
                );
            }
        }
    }
}

#[test]
fn lt_sampler_realizes_the_exact_expectation() {
    let mut rng = SmallRng::seed_from_u64(9);
    let pairs = generators::erdos_renyi(6, 9, &mut rng);
    let g = generators::assemble(6, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
    let eta = 3;
    for v in 0..6u32 {
        let expected =
            exact_estimator_expectation_model(&g, Model::LT, &[v], eta, RootCountDist::Randomized);
        let mut sampler = MrrSampler::new(g.n());
        let residual = ResidualState::new(g.n());
        let mut rng = SmallRng::seed_from_u64(333 + v as u64);
        let trials = 50_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let set = sampler.sample(
                &g,
                Model::LT,
                &residual,
                eta,
                RootCountDist::Randomized,
                &mut rng,
            );
            if set.contains(&v) {
                hits += 1;
            }
        }
        let est = eta as f64 * hits as f64 / trials as f64;
        assert!(
            (est - expected).abs() < 0.04,
            "LT v{v}: sampler {est} vs exact {expected}"
        );
    }
}

#[test]
fn miss_prob_sanity() {
    assert_eq!(miss_prob(10, 0, 3), 1.0);
    assert_eq!(miss_prob(10, 10, 1), 0.0);
    assert!((miss_prob(4, 1, 1) - 0.75).abs() < 1e-12);
    // k > n - x ⇒ must hit
    assert_eq!(miss_prob(5, 3, 4), 0.0);
}
