//! Cross-crate integration tests: the full adaptive seed minimization
//! pipeline against ground truth and across configurations.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::algo::greedy_oracle::exact_greedy_policy;
use seedmin::diffusion::InfluenceOracle;
use seedmin::prelude::*;
use smin_graph::generators;

fn wc_graph(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pairs = generators::chung_lu_directed(n, m, 2.1, &mut rng);
    generators::assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap()
}

#[test]
fn asti_reaches_eta_on_every_sampled_world_ic_and_lt() {
    let g = wc_graph(400, 1600, 1);
    for model in [Model::IC, Model::LT] {
        for world in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(world);
            let phi = Realization::sample(&g, model, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let report = asti(
                &g,
                model,
                60,
                &AstiParams::with_eps(0.5),
                &mut oracle,
                &mut rng,
            )
            .expect("valid parameters");
            assert!(report.reached, "{model} world {world}");
            assert!(report.total_activated >= 60);
            // every selected seed was inactive at selection time, so seeds
            // are distinct
            let mut sorted = report.seeds.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), report.num_seeds(), "duplicate seed selected");
        }
    }
}

#[test]
fn asti_seed_count_is_near_oracle_on_tiny_graphs() {
    // Exact-greedy (the Golovin–Krause oracle policy) vs ASTI on graphs small
    // enough to enumerate: over many worlds, ASTI should use at most a
    // modest factor more seeds.
    let mut rng = SmallRng::seed_from_u64(5);
    let pairs = generators::erdos_renyi(10, 14, &mut rng);
    let g = generators::assemble(10, &pairs, true, WeightModel::Uniform(0.5), &mut rng).unwrap();
    let eta = 6;
    let worlds = 12;
    let mut oracle_total = 0usize;
    let mut asti_total = 0usize;
    for world in 0..worlds {
        let mut rng = SmallRng::seed_from_u64(100 + world);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut o1 = RealizationOracle::new(&g, phi.clone());
        let oracle_seeds = exact_greedy_policy(&g, Model::IC, eta, &mut o1, &mut rng).unwrap();
        let mut o2 = RealizationOracle::new(&g, phi);
        let report = asti(
            &g,
            Model::IC,
            eta,
            &AstiParams::with_eps(0.3),
            &mut o2,
            &mut rng,
        )
        .expect("valid parameters");
        assert!(report.reached);
        oracle_total += oracle_seeds.len();
        asti_total += report.num_seeds();
    }
    assert!(
        asti_total as f64 <= 1.6 * oracle_total as f64 + 2.0,
        "ASTI used {asti_total} seeds vs oracle {oracle_total} over {worlds} worlds"
    );
}

#[test]
fn batch_size_trades_seeds_for_rounds() {
    let g = wc_graph(600, 3000, 2);
    let eta = 120;
    let mut per_batch: Vec<(usize, f64, f64)> = Vec::new();
    for b in [1usize, 4, 8] {
        let mut seeds = 0usize;
        let mut rounds = 0usize;
        let reps = 5;
        for world in 0..reps {
            let mut rng = SmallRng::seed_from_u64(300 + world as u64);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let report = asti(
                &g,
                Model::IC,
                eta,
                &AstiParams::batched(0.5, b),
                &mut oracle,
                &mut rng,
            )
            .expect("valid parameters");
            assert!(report.reached);
            seeds += report.num_seeds();
            rounds += report.num_rounds();
        }
        per_batch.push((b, seeds as f64 / reps as f64, rounds as f64 / reps as f64));
    }
    // rounds must shrink as b grows
    assert!(per_batch[0].2 > per_batch[1].2);
    assert!(per_batch[1].2 >= per_batch[2].2);
    // and seeds should not shrink (adaptivity can only help)
    assert!(per_batch[2].1 >= per_batch[0].1 - 1.0);
}

#[test]
fn deterministic_given_seeds() {
    let g = wc_graph(300, 1200, 3);
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        asti(
            &g,
            Model::IC,
            50,
            &AstiParams::with_eps(0.5),
            &mut oracle,
            &mut rng,
        )
        .unwrap()
        .seeds
    };
    assert_eq!(run(9), run(9), "same seed must reproduce the exact run");
    // and (overwhelmingly) a different seed gives a different world/run
    // (not asserted strictly — just sanity that the RNG is actually used)
    let _ = run(10);
}

#[test]
fn adaptive_beats_nonadaptive_in_feasibility() {
    use seedmin::algo::{ateuc, evaluate_on_realizations, AteucParams};
    let g = wc_graph(500, 2000, 4);
    let eta = 50;
    let mut rng = SmallRng::seed_from_u64(11);
    let worlds: Vec<Realization> = (0..15)
        .map(|_| Realization::sample(&g, Model::IC, &mut rng))
        .collect();

    let out = ateuc(&g, Model::IC, eta, &AteucParams::default(), &mut rng).unwrap();
    let ateuc_spreads = evaluate_on_realizations(&g, &out.seeds, &worlds);

    let mut asti_feasible = 0;
    for phi in &worlds {
        let mut oracle = RealizationOracle::new(&g, phi.clone());
        let mut rng = SmallRng::seed_from_u64(12);
        let report = asti(
            &g,
            Model::IC,
            eta,
            &AstiParams::with_eps(0.5),
            &mut oracle,
            &mut rng,
        )
        .unwrap();
        if report.reached {
            asti_feasible += 1;
        }
    }
    assert_eq!(
        asti_feasible,
        worlds.len(),
        "ASTI is feasible by construction"
    );
    let ateuc_feasible = ateuc_spreads.iter().filter(|&&s| s >= eta).count();
    assert!(
        ateuc_feasible <= worlds.len(),
        "sanity: ATEUC feasibility {ateuc_feasible} can lag ASTI's {asti_feasible}"
    );
}

#[test]
fn adapt_im_matches_asti_effectiveness_but_costs_more_samples() {
    use seedmin::algo::{adapt_im, AdaptImParams};
    let g = wc_graph(500, 2500, 6);
    let eta = 25; // small η: the regime where TRIM's mRR advantage peaks
    let mut asti_sets = 0usize;
    let mut adapt_sets = 0usize;
    let mut asti_seeds = 0usize;
    let mut adapt_seeds = 0usize;
    for world in 0..4u64 {
        let mut rng = SmallRng::seed_from_u64(500 + world);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut o1 = RealizationOracle::new(&g, phi.clone());
        let r1 = asti(
            &g,
            Model::IC,
            eta,
            &AstiParams::with_eps(0.5),
            &mut o1,
            &mut rng,
        )
        .unwrap();
        let mut o2 = RealizationOracle::new(&g, phi);
        let r2 = adapt_im(
            &g,
            Model::IC,
            eta,
            &AdaptImParams::with_eps(0.5),
            &mut o2,
            &mut rng,
        )
        .unwrap();
        assert!(r1.reached && r2.reached);
        asti_sets += r1.total_sets;
        adapt_sets += r2.total_sets;
        asti_seeds += r1.num_seeds();
        adapt_seeds += r2.num_seeds();
    }
    assert!(
        adapt_sets > asti_sets,
        "AdaptIM should need more samples: {adapt_sets} vs {asti_sets}"
    );
    // similar effectiveness (within ~2× on these tiny instances)
    assert!(adapt_seeds as f64 <= 2.0 * asti_seeds as f64 + 2.0);
}

#[test]
fn warm_started_oracle_composes_with_asti() {
    let g = wc_graph(300, 1500, 7);
    let mut rng = SmallRng::seed_from_u64(70);
    let phi = Realization::sample(&g, Model::IC, &mut rng);
    let mut oracle = RealizationOracle::new(&g, phi);
    // phase 1: reach 30
    let r1 = asti(
        &g,
        Model::IC,
        30,
        &AstiParams::with_eps(0.5),
        &mut oracle,
        &mut rng,
    )
    .unwrap();
    assert!(r1.reached);
    let active_after_phase1 = oracle.num_active();
    // phase 2: extend the SAME oracle to 60 — previous activations count
    let r2 = asti(
        &g,
        Model::IC,
        60,
        &AstiParams::with_eps(0.5),
        &mut oracle,
        &mut rng,
    )
    .unwrap();
    assert!(r2.reached);
    assert!(oracle.num_active() >= 60);
    assert!(r2.total_activated >= active_after_phase1);
    // phase 2 must not have re-selected phase-1 seeds
    for s in &r2.seeds {
        assert!(
            !r1.seeds.contains(s),
            "seed {s} selected twice across phases"
        );
    }
}
