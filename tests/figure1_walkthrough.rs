//! The paper's Figure 1 walk-through, executed literally.
//!
//! Figure 1 shows a 6-node graph and one realization ϕ in which an adaptive
//! policy first seeds v1 (activating v1, v4, v6), observes that the target
//! η = 4 is not yet met, then seeds v3 in the residual graph (activating v3
//! and v5 through the live edge ⟨v3, v5⟩) for a total of 5 ≥ η active nodes.
//!
//! Edge probabilities in Figure 1(a): ⟨v1,v2⟩ 0.9 fails in ϕ; ⟨v1,v4⟩ 0.3,
//! ⟨v1,v6⟩ (via 0.6/0.7 chain) succeed; ⟨v3,v5⟩ 0.4 is live but unrevealed
//! until v3 is seeded. We fix an equivalent structure and the realization's
//! live-edge statuses explicitly, then drive the very same select-observe
//! loop through the public oracle API.

use seedmin::diffusion::{InfluenceOracle, Realization, RealizationOracle, ResidualState};
use seedmin::graph::GraphBuilder;

/// v1..v6 = 0..5. Edges (forward CSR order is by source then target):
///   v1→v2 (0.9), v1→v4 (0.3), v4→v6 (0.6), v6→v5? no — keep to the spirit:
///   v1 reaches v4 and v6; v3 reaches v5; v2 isolated target.
fn figure1_graph() -> seedmin::graph::Graph {
    let mut b = GraphBuilder::new(6);
    b.add_edge_p(0, 1, 0.9).unwrap(); // v1→v2 (fails in ϕ)
    b.add_edge_p(0, 3, 0.3).unwrap(); // v1→v4 (live in ϕ)
    b.add_edge_p(3, 5, 0.6).unwrap(); // v4→v6 (live in ϕ)
    b.add_edge_p(2, 4, 0.4).unwrap(); // v3→v5 (live in ϕ, unrevealed at first)
    b.add_edge_p(1, 2, 0.7).unwrap(); // v2→v3 (status irrelevant: v2 never activates)
    b.build().unwrap()
}

/// The realization of Figure 1(b): live edges marked per the figure.
/// Forward CSR order: (0,1), (0,3), (1,2), (2,4), (3,5).
fn figure1_phi() -> Realization {
    Realization::from_ic_statuses(vec![
        false, // v1→v2 failed (dashed in Figure 1(c))
        true,  // v1→v4 succeeded
        true,  // v2→v3 (thin/unrevealed; liveness never queried)
        true,  // v3→v5 live — the second seed's payoff
        true,  // v4→v6 succeeded
    ])
}

#[test]
fn adaptive_walkthrough_matches_figure() {
    let g = figure1_graph();
    let eta = 4;
    let mut oracle = RealizationOracle::new(&g, figure1_phi());
    let mut residual = ResidualState::new(6);

    // Round 1: seed v1 (node 0) as in Figure 1(c).
    let mut newly = oracle.observe(&[0]);
    newly.sort_unstable();
    assert_eq!(newly, vec![0, 3, 5], "v1 activates v1, v4, v6");
    assert_eq!(oracle.num_active(), 3);
    assert!(
        oracle.num_active() < eta,
        "threshold not yet met — continue"
    );
    residual.kill_all(&newly);

    // Residual graph G2: exactly {v2, v3, v5} remain, as the paper states.
    let mut alive: Vec<u32> = residual.alive_nodes().to_vec();
    alive.sort_unstable();
    assert_eq!(alive, vec![1, 2, 4], "V2 = {{v2, v3, v5}}");

    // Round 2: seed v3 (node 2) as in Figure 1(d).
    let mut newly = oracle.observe(&[2]);
    newly.sort_unstable();
    assert_eq!(
        newly,
        vec![2, 4],
        "v3 activates itself and v5 via the live thin edge"
    );
    assert_eq!(oracle.num_active(), 5);
    assert!(
        oracle.num_active() >= eta,
        "threshold reached; process terminates"
    );
}

#[test]
fn walkthrough_via_asti_terminates_with_at_most_three_seeds() {
    // Running the actual algorithm on the same world must also reach η = 4;
    // seed identities may differ (estimates are stochastic) but feasibility
    // and sanity bounds hold.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use seedmin::prelude::*;
    let g = figure1_graph();
    for seed in 0..10u64 {
        let mut oracle = RealizationOracle::new(&g, figure1_phi());
        let mut rng = SmallRng::seed_from_u64(seed);
        let report = asti(
            &g,
            Model::IC,
            4,
            &AstiParams::with_eps(0.5),
            &mut oracle,
            &mut rng,
        )
        .expect("valid parameters");
        assert!(report.reached);
        assert!(
            report.num_seeds() <= 3,
            "this world is coverable with ≤ 3 seeds, used {}",
            report.num_seeds()
        );
    }
}

/// A misbehaving oracle that never reports activations: ASTI must still
/// terminate (by exhausting the residual graph) instead of spinning.
struct SilentOracle {
    active: Vec<bool>,
}

impl InfluenceOracle for SilentOracle {
    fn observe(&mut self, _seeds: &[u32]) -> Vec<u32> {
        Vec::new()
    }
    fn active_mask(&self) -> &[bool] {
        &self.active
    }
    fn num_active(&self) -> usize {
        0
    }
}

#[test]
fn degenerate_oracle_cannot_hang_asti() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use seedmin::prelude::*;
    let g = figure1_graph();
    let mut oracle = SilentOracle {
        active: vec![false; 6],
    };
    let mut rng = SmallRng::seed_from_u64(1);
    let report = asti(
        &g,
        Model::IC,
        4,
        &AstiParams::with_eps(0.5),
        &mut oracle,
        &mut rng,
    )
    .expect("valid parameters");
    assert!(!report.reached, "a silent world can never reach η");
    assert!(report.num_seeds() <= 6, "at most one seed per node");
}
