//! Kernel-equivalence properties: the word-parallel coverage kernels (PR:
//! word-batched `commit_pick`, unrolled candidate scans, CELF single-winner
//! fast path, word-skipping bitset primitives) must be observationally
//! identical to the obviously-correct scalar references — bit for bit, on
//! arbitrary random inputs, including pool sizes that straddle the 64-bit
//! word boundaries of the covered mask.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use seedmin::sampling::{CoverageEngine, SketchPool};
use smin_graph::{FixedBitSet, NodeId};

// ---------------------------------------------------------------------------
// FixedBitSet word primitives vs per-bit references
// ---------------------------------------------------------------------------

/// Strategy: a bitset capacity and a pseudo-random bit pattern seed.
fn bits_and_seed() -> impl Strategy<Value = (usize, u64)> {
    (1usize..200, 0u64..10_000)
}

fn random_bitset(len: usize, rng: &mut SmallRng, density: f64) -> FixedBitSet {
    let mut b = FixedBitSet::new(len);
    for i in 0..len {
        if rng.random_range(0.0..1.0) < density {
            b.insert(i);
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_word_matches_per_bit_inserts((len, seed) in bits_and_seed()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut word_wise = random_bitset(len, &mut rng, 0.3);
        let mut bit_wise = word_wise.clone();
        let words = len.div_ceil(64);
        for wi in 0..words {
            // random mask clipped to the capacity of this word
            let live = (len - (wi << 6)).min(64);
            let clip = if live == 64 { u64::MAX } else { (1u64 << live) - 1 };
            let mask = rng.random_range(0..=u64::MAX) & clip;
            let fresh = word_wise.insert_word(wi, mask);
            // reference: insert bit by bit, collecting the fresh ones
            let mut fresh_ref = 0u64;
            for bit in 0..live {
                if mask & (1u64 << bit) != 0 && bit_wise.insert((wi << 6) | bit) {
                    fresh_ref |= 1u64 << bit;
                }
            }
            prop_assert_eq!(fresh, fresh_ref);
        }
        let a: Vec<usize> = word_wise.ones().collect();
        let b: Vec<usize> = bit_wise.ones().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn union_count_matches_union_with_plus_count((len, seed) in bits_and_seed()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = random_bitset(len, &mut rng, 0.4);
        let b = random_bitset(len, &mut rng, 0.4);
        let before = a.count_ones();
        let mut fused = a.clone();
        let fresh = fused.union_count(&b);
        let mut reference = a.clone();
        reference.union_with(&b);
        prop_assert_eq!(fused.count_ones(), reference.count_ones());
        prop_assert_eq!(before + fresh, fused.count_ones());
        let x: Vec<usize> = fused.ones().collect();
        let y: Vec<usize> = reference.ones().collect();
        prop_assert_eq!(x, y);
    }

    #[test]
    fn count_ones_range_matches_filtered_ones((len, seed) in bits_and_seed()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let b = random_bitset(len, &mut rng, 0.5);
        for _ in 0..8 {
            let lo = rng.random_range(0..=len);
            let hi = rng.random_range(lo..=len);
            let word_wise = b.count_ones_range(lo, hi);
            let scalar = b.ones().filter(|&i| lo <= i && i < hi).count();
            prop_assert_eq!(word_wise, scalar);
        }
    }

    #[test]
    fn ones_iterator_matches_contains_scan((len, seed) in bits_and_seed()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let b = random_bitset(len, &mut rng, 0.2);
        let skipping: Vec<usize> = b.ones().collect();
        let scalar: Vec<usize> = (0..len).filter(|&i| b.contains(i)).collect();
        prop_assert_eq!(skipping, scalar);
    }
}

// ---------------------------------------------------------------------------
// CoverageEngine strategies vs a scalar reference greedy
// ---------------------------------------------------------------------------

/// Scalar reference: full rescans, per-bit covered flags, the engine's
/// tie-breaking (higher gain, then smaller id).
struct ScalarGreedy {
    n: usize,
    sets: Vec<Vec<NodeId>>,
    node_sets: Vec<Vec<u32>>,
}

impl ScalarGreedy {
    fn new(n: usize, sets: &[Vec<NodeId>]) -> Self {
        let mut node_sets = vec![Vec::new(); n];
        for (id, s) in sets.iter().enumerate() {
            for &v in s {
                node_sets[v as usize].push(id as u32);
            }
        }
        ScalarGreedy {
            n,
            sets: sets.to_vec(),
            node_sets,
        }
    }

    fn argmax(&self) -> Option<(NodeId, u32)> {
        let mut best: Option<(NodeId, u32)> = None;
        for v in 0..self.n as u32 {
            let c = self.node_sets[v as usize].len() as u32;
            if c > 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
                best = Some((v, c));
            }
        }
        best
    }

    /// Greedy until `b` picks or `stop(covered)` says done; returns
    /// (seeds, covered, stopped_by_target).
    fn greedy(&self, b: usize, stop: impl Fn(u32) -> bool) -> (Vec<NodeId>, u32, bool) {
        let mut marginal: Vec<u32> = (0..self.n)
            .map(|v| self.node_sets[v].len() as u32)
            .collect();
        let mut covered_sets = vec![false; self.sets.len()];
        let mut seeds = Vec::new();
        let mut covered = 0u32;
        loop {
            if stop(covered) {
                return (seeds, covered, true);
            }
            if seeds.len() == b {
                return (seeds, covered, false);
            }
            let mut best: Option<(NodeId, u32)> = None;
            for v in 0..self.n as u32 {
                let c = marginal[v as usize];
                if c > 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
                    best = Some((v, c));
                }
            }
            let Some((v, gain)) = best else {
                return (seeds, covered, false);
            };
            seeds.push(v);
            covered += gain;
            for &s in &self.node_sets[v as usize] {
                if !covered_sets[s as usize] {
                    covered_sets[s as usize] = true;
                    for &u in &self.sets[s as usize] {
                        marginal[u as usize] -= 1;
                    }
                }
            }
        }
    }
}

/// Strategy: random pools whose set count deliberately lands on or near the
/// covered-mask word boundaries (63/64/65, 127/128/129) a third of the
/// time, so `insert_word`'s boundary clipping is continuously exercised.
fn random_pools() -> impl Strategy<Value = (usize, Vec<Vec<NodeId>>)> {
    (2usize..50, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch = if seed % 3 == 0 {
            [63usize, 64, 65, 127, 128, 129][rng.random_range(0..6usize)]
        } else {
            rng.random_range(0..200usize)
        };
        let sets = (0..batch)
            .map(|_| {
                let size = rng.random_range(0..10usize);
                let mut s: Vec<NodeId> = (0..size).map(|_| rng.random_range(0..n as u32)).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        (n, sets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernelized_engine_matches_scalar_greedy((n, sets) in random_pools()) {
        let mut pool = SketchPool::new(n);
        for s in &sets {
            pool.add_set(s);
        }
        let reference = ScalarGreedy::new(n, &sets);
        let mut engine = CoverageEngine::new();

        prop_assert_eq!(engine.argmax(&pool), reference.argmax());

        for b in [1usize, 2, 7, 8, 63, 64, 65, 200] {
            let (seeds, covered, _) = reference.greedy(b, |_| false);
            let celf = engine.select(&pool, b);
            prop_assert_eq!(&celf.seeds, &seeds);
            prop_assert_eq!(celf.covered, covered);
            let eager = engine.select_eager(&pool, b);
            prop_assert_eq!(&eager.seeds, &seeds);
            prop_assert_eq!(eager.covered, covered);
            // every covered set the kernels marked is genuinely covered
            prop_assert_eq!(engine.covered_sets().count(), covered as usize);
        }

        for target in [0.0, 1.0, 16.0, 64.0, 1e9] {
            let (seeds, covered, reached) =
                reference.greedy(usize::MAX, |c| f64::from(c) >= target);
            let (got, got_reached) = engine.select_until(&pool, target, |c| c);
            prop_assert_eq!(&got.seeds, &seeds);
            prop_assert_eq!(got.covered, covered);
            prop_assert_eq!(got_reached, reached);
        }
    }
}

// ---------------------------------------------------------------------------
// CELF single-winner fast path: pinned heap-operation counts
// ---------------------------------------------------------------------------

fn pool_from(sets: &[&[NodeId]], n: usize) -> SketchPool {
    let mut p = SketchPool::new(n);
    for s in sets {
        p.add_set(s);
    }
    p
}

/// A refreshed top that still beats the rest of the heap must commit
/// without the push + re-pop round-trip.
#[test]
fn celf_fast_path_skips_the_reheap() {
    // node 0: sets 0..9 (gain 10); node 1: shares sets 0..2 plus own
    // 10..14 (gain 8, refreshes to 5 after node 0); node 2: sets 15..18
    // (gain 4). After picking node 0, node 1's stale top refreshes to 5,
    // which still beats node 2's 4 — the fast path commits it directly.
    let mut sets: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..3 {
        sets.push(vec![0, 1]); // shared
    }
    for _ in 0..7 {
        sets.push(vec![0]);
    }
    for _ in 0..5 {
        sets.push(vec![1]);
    }
    for _ in 0..4 {
        sets.push(vec![2]);
    }
    let refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();
    let pool = pool_from(&refs, 3);

    let mut engine = CoverageEngine::new();
    let g = engine.select(&pool, 3);
    assert_eq!(g.seeds, vec![0, 1, 2]);
    assert_eq!(g.covered, 19);
    // round 1: pop node 0 (cached gain exact); round 2: pop node 1 stale,
    // refresh 8 -> 5, fast path (5 > node 2's 4) commits with no push;
    // round 3: pop node 2 (cached gain exact).
    assert_eq!(engine.last_heap_pops, 3, "pop count drifted");
    assert_eq!(engine.last_heap_pushes, 0, "fast path failed to engage");
}

/// A refreshed top that falls behind the heap must be pushed back — the
/// fast path must not engage.
#[test]
fn celf_reheap_still_taken_when_refresh_loses() {
    // node 0: sets 0..9; node 1: shares 6 of them plus own 2 (gain 8,
    // refreshes to 2 after node 0 — now behind node 2's 4).
    let mut sets: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..6 {
        sets.push(vec![0, 1]);
    }
    for _ in 0..4 {
        sets.push(vec![0]);
    }
    for _ in 0..2 {
        sets.push(vec![1]);
    }
    for _ in 0..4 {
        sets.push(vec![2]);
    }
    let refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();
    let pool = pool_from(&refs, 3);

    let mut engine = CoverageEngine::new();
    let g = engine.select(&pool, 3);
    assert_eq!(g.seeds, vec![0, 2, 1]);
    assert_eq!(g.covered, 16);
    // round 1: pop node 0; round 2: pop node 1 stale (8 -> 2, behind 4),
    // push it back, pop node 2 fresh; round 3: pop node 1 (cached exact).
    assert_eq!(engine.last_heap_pops, 4, "pop count drifted");
    assert_eq!(engine.last_heap_pushes, 1, "push-back count drifted");
}

// ---------------------------------------------------------------------------
// Thread-count identity through the kernelized engine
// ---------------------------------------------------------------------------

/// TRIM-B selections driven through the kernelized engine are byte-identical
/// at 1 and 4 sketch-generation threads, and so is the engine's recorded
/// heap traffic (selection is single-threaded downstream of the pool).
#[test]
fn trim_b_selections_identical_across_thread_counts() {
    use seedmin::algo::trim::TrimScratch;
    use seedmin::algo::trim_b::trim_b;
    use seedmin::diffusion::{Model, ResidualState};
    use seedmin::graph::generators::{assemble, chung_lu_directed};
    use seedmin::graph::WeightModel;
    use seedmin::prelude::TrimParams;

    let mut rng = SmallRng::seed_from_u64(0x51CC);
    let pairs = chung_lu_directed(500, 2_000, 2.1, &mut rng);
    let g = assemble(500, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
    let residual = ResidualState::new(500);

    let mut baseline: Option<(Vec<u32>, u32, usize, usize, usize)> = None;
    for threads in [1usize, 4] {
        let params = TrimParams::with_eps(0.4).with_threads(threads);
        let mut scratch = TrimScratch::new(g.n());
        let mut rng = SmallRng::seed_from_u64(0xFA57);
        let out = trim_b(
            &g,
            Model::IC,
            &residual,
            50,
            4,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        let state = (
            out.seeds.clone(),
            out.coverage,
            out.sets_generated,
            scratch.engine().last_heap_pops,
            scratch.engine().last_heap_pushes,
        );
        match &baseline {
            None => baseline = Some(state),
            Some(base) => assert_eq!(&state, base, "{threads} threads diverged"),
        }
    }
    let (seeds, _, _, pops, _) = baseline.unwrap();
    assert!(!seeds.is_empty());
    assert!(pops >= seeds.len(), "every committed pick costs >= 1 pop");
}
