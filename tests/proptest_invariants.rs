//! Property-based invariants spanning the whole stack.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::diffusion::{ForwardSim, Model, Realization, RealizationOracle, ResidualState};
use seedmin::graph::{generators, Graph, GraphBuilder, WeightModel};
use seedmin::prelude::{asti, AstiParams};
use seedmin::sampling::{MrrSampler, ReverseSampler, RootCountDist};

/// Strategy: a random small directed graph with uniform probabilities.
fn small_graph() -> impl Strategy<Value = (Graph, u64)> {
    (3usize..20, 0u64..1000, 1u32..100).prop_map(|(n, seed, p_pct)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        let m = (n + seed as usize % (max_m.max(1))).min(max_m).max(1);
        let pairs = generators::erdos_renyi(n, m, &mut rng);
        let p = p_pct as f64 / 100.0;
        let g = generators::assemble(n, &pairs, true, WeightModel::Uniform(p), &mut rng).unwrap();
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_roundtrip_counts((g, _) in small_graph()) {
        // every forward edge appears exactly once in reverse adjacency
        let fwd: usize = (0..g.n() as u32).map(|u| g.out_degree(u)).sum();
        let rev: usize = (0..g.n() as u32).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(fwd, g.m());
        prop_assert_eq!(rev, g.m());
        for (u, v, p) in g.edges() {
            prop_assert!(g.in_edges(v).any(|(src, q, _)| src == u && q == p));
        }
    }

    #[test]
    fn wc_weights_always_form_valid_lt((g, seed) in small_graph()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let wc = smin_graph::weights::apply_weights(&g, WeightModel::WeightedCascade, &mut rng);
        prop_assert!(wc.is_valid_lt());
        for v in 0..wc.n() as u32 {
            if wc.in_degree(v) > 0 {
                prop_assert!((wc.in_prob_sum(v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn realization_spread_monotone_in_seeds((g, seed) in small_graph()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut sim = ForwardSim::new(g.n());
        let s1 = sim.spread(&g, &phi, &[0]);
        let s2 = sim.spread(&g, &phi, &[0, (g.n() - 1) as u32]);
        prop_assert!(s2 >= s1, "adding a seed cannot shrink the spread");
        prop_assert!(s2 <= g.n());
        prop_assert!(s1 >= 1);
    }

    #[test]
    fn rr_set_contains_root_and_only_alive((g, seed) in small_graph()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sampler = ReverseSampler::new(g.n());
        let mut residual = ResidualState::new(g.n());
        // kill a couple of nodes (never the root)
        let root = (g.n() - 1) as u32;
        residual.kill(0);
        let set = sampler.sample(&g, Model::IC, Some(residual.alive_mask()), &[root], &mut rng);
        prop_assert!(set.contains(&root));
        for &u in &set {
            prop_assert!(residual.is_alive(u));
        }
        // no duplicates
        let mut s = set.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), set.len());
    }

    #[test]
    fn mrr_root_count_within_bounds((g, seed) in small_graph()) {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        for eta in 1..=n {
            let k = seedmin::sampling::sample_root_count(n, eta, RootCountDist::Randomized, &mut rng);
            let ratio = n as f64 / eta as f64;
            prop_assert!(k >= 1 && k <= n);
            prop_assert!((k as f64) >= ratio.floor().min(n as f64) - 1e-9);
            prop_assert!((k as f64) <= ratio.floor() + 1.0 + 1e-9);
        }
    }

    #[test]
    fn mrr_sets_nonempty_and_alive((g, seed) in small_graph()) {
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut residual = ResidualState::new(n);
        if n > 4 {
            residual.kill_all(&[1, 3]);
        }
        let mut sampler = MrrSampler::new(n);
        let eta = (n / 2).max(1);
        for _ in 0..16 {
            let set = sampler.sample(&g, Model::IC, &residual, eta, RootCountDist::Randomized, &mut rng);
            prop_assert!(!set.is_empty());
            prop_assert!(set.iter().all(|&u| residual.is_alive(u)));
        }
    }

    #[test]
    fn asti_terminates_feasibly_on_random_graphs((g, seed) in small_graph()) {
        let n = g.n();
        let eta = (n / 2).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let mut params = AstiParams::with_eps(0.5);
        params.trim.theta_cap = Some(2_000); // keep property runs fast
        let report = asti(&g, Model::IC, eta, &params, &mut oracle, &mut rng).unwrap();
        prop_assert!(report.reached);
        prop_assert!(report.total_activated >= eta);
        prop_assert!(report.num_seeds() <= n);
        // the adaptive policy never selects an already-active node, so the
        // seed list is duplicate-free
        let mut s = report.seeds.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), report.num_seeds());
    }

    #[test]
    fn truncated_spread_bounded(eta in 1usize..10, seed in 0u64..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = generators::erdos_renyi(8, 12, &mut rng);
        let g = generators::assemble(8, &pairs, true, WeightModel::Uniform(0.5), &mut rng).unwrap();
        let eta = eta.min(8);
        let exact = seedmin::diffusion::exact::exact_expected_truncated(&g, Model::IC, &[0], eta);
        let vanilla = seedmin::diffusion::exact::exact_expected_spread(&g, Model::IC, &[0]);
        prop_assert!(exact <= eta as f64 + 1e-9);
        prop_assert!(exact <= vanilla + 1e-9);
        prop_assert!(exact >= 1.0 - 1e-9, "a seed always activates itself");
    }

    #[test]
    fn lt_realizations_in_degree_at_most_one((g, seed) in small_graph()) {
        // rescale to a valid LT instance first
        let mut rng = SmallRng::seed_from_u64(seed);
        let lt = smin_graph::weights::apply_weights(&g, WeightModel::WeightedCascade, &mut rng);
        let phi = Realization::sample(&lt, Model::LT, &mut rng);
        // each node has at most one live in-edge
        for v in 0..lt.n() as u32 {
            let live_in = lt.in_edges(v).filter(|&(_, _, e)| phi.is_live(e, v)).count();
            prop_assert!(live_in <= 1, "node {} kept {} live in-edges", v, live_in);
        }
    }

    #[test]
    fn builder_rejects_invalid_inputs(n in 1usize..10, u in 0u32..20, v in 0u32..20, p in -1.0f64..2.0) {
        let mut b = GraphBuilder::new(n);
        let r = b.add_edge_p(u, v, p);
        let valid = (u as usize) < n && (v as usize) < n && p > 0.0 && p <= 1.0;
        prop_assert_eq!(r.is_ok(), valid);
    }
}
