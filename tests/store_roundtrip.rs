//! Property-based round-trip guarantees for the `.smg` binary snapshot:
//! encode → decode is lossless down to probability bit patterns, the
//! encoding is deterministic byte-for-byte, and single-byte corruption
//! anywhere in the file never yields a silently-wrong graph.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::graph::store;
use seedmin::graph::{generators, Graph, GraphError, StoreError, WeightModel};

/// Strategy: a small random directed graph across the weight models the
/// datasets layer actually uses, so probability bit patterns vary.
fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0u64..1000, 0u8..3).prop_map(|(n, seed, model_ix)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        let m = (1 + seed as usize % max_m.max(1)).min(max_m);
        let pairs = generators::erdos_renyi(n, m, &mut rng);
        let model = match model_ix {
            0 => WeightModel::WeightedCascade,
            1 => WeightModel::Uniform(0.37),
            _ => WeightModel::Trivalency,
        };
        generators::assemble(n, &pairs, true, model, &mut rng).expect("valid generator output")
    })
}

fn encode(g: &Graph) -> Vec<u8> {
    let mut bytes = Vec::new();
    store::write_smg(g, &mut bytes).expect("in-memory encode cannot fail");
    bytes
}

/// CSR-level equality: node/edge counts and the exact forward edge list,
/// comparing probabilities by bit pattern (not approximate equality).
/// Panics on mismatch, which proptest reports as a test-case failure.
fn assert_graphs_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.m(), b.m());
    let ea: Vec<(u32, u32, u64)> = a.edges().map(|(u, v, p)| (u, v, p.to_bits())).collect();
    let eb: Vec<(u32, u32, u64)> = b.edges().map(|(u, v, p)| (u, v, p.to_bits())).collect();
    assert_eq!(ea, eb);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smg_roundtrip_is_lossless(g in small_graph()) {
        let bytes = encode(&g);
        let back = store::read_smg_bytes(&bytes).expect("decode own encoding");
        assert_graphs_identical(&g, &back);
        // reverse adjacency is rebuilt, not stored: it must agree too
        for v in 0..g.n() as u32 {
            prop_assert_eq!(g.in_degree(v), back.in_degree(v));
        }
    }

    #[test]
    fn smg_encoding_is_deterministic(g in small_graph()) {
        let first = encode(&g);
        let second = encode(&g);
        prop_assert!(first == second, "same graph must encode byte-identically");
        // and a decoded copy re-encodes to the same bytes (canonical form)
        let back = store::read_smg_bytes(&first).expect("decode own encoding");
        prop_assert_eq!(first, encode(&back));
    }

    #[test]
    fn header_checksum_matches_graph_checksum(g in small_graph()) {
        let bytes = encode(&g);
        let header = store::read_smg_header(&bytes[..]).expect("read header");
        prop_assert_eq!(header.n, g.n() as u64);
        prop_assert_eq!(header.m, g.m() as u64);
        prop_assert_eq!(header.file_len(), bytes.len() as u64);
        // registry identity: derivable from the first 64 bytes alone
        prop_assert_eq!(header.content_checksum(), store::content_checksum(&g));
    }

    #[test]
    fn single_byte_corruption_never_decodes_silently(
        g in small_graph(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let clean = encode(&g);
        let mut bytes = clean.clone();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor;
        match store::read_smg_bytes(&bytes) {
            // Every flip must be caught: magic and header bytes by the magic
            // check / header CRC, reserved header bytes by the zero check
            // (Malformed), section bytes (including alignment padding) by
            // their section CRCs.
            Err(GraphError::Store(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
            Ok(_) => prop_assert!(false, "corrupted byte {pos} decoded silently"),
        }
    }

    #[test]
    fn truncation_never_decodes(g in small_graph(), keep_frac in 0.0f64..1.0) {
        let clean = encode(&g);
        let keep = ((keep_frac * clean.len() as f64) as usize).min(clean.len() - 1);
        let err = store::read_smg_bytes(&clean[..keep])
            .expect_err("truncated snapshot must not decode");
        prop_assert!(
            matches!(
                err,
                GraphError::Store(StoreError::Truncated { .. } | StoreError::BadMagic)
            ),
            "unexpected error class: {err}"
        );
    }
}
