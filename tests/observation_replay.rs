//! Record → replay round trip: an ASTI campaign recorded through
//! [`LoggingOracle`] and re-driven against [`ReplayOracle`] with the same
//! policy RNG must reproduce the identical run — the audit-trail property a
//! production deployment needs.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::diffusion::{InfluenceOracle, LoggingOracle, ObservationLog, ReplayOracle};
use seedmin::prelude::*;
use smin_graph::generators;

fn graph() -> Graph {
    let mut rng = SmallRng::seed_from_u64(4);
    let pairs = generators::chung_lu_directed(500, 2_500, 2.1, &mut rng);
    generators::assemble(500, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap()
}

#[test]
fn recorded_campaign_replays_identically() {
    let g = graph();
    let eta = 60;
    let params = AstiParams::with_eps(0.5);

    // Record a live run.
    let mut world_rng = SmallRng::seed_from_u64(10);
    let phi = Realization::sample(&g, Model::IC, &mut world_rng);
    let inner = RealizationOracle::new(&g, phi);
    let mut recorder = LoggingOracle::new(inner, g.n());
    let mut rng = SmallRng::seed_from_u64(99);
    let original = asti(&g, Model::IC, eta, &params, &mut recorder, &mut rng).unwrap();
    let (log, _) = recorder.into_parts();

    // Serialize and parse back (the audit file).
    let text = log.to_text();
    let parsed = ObservationLog::from_text(&text).unwrap();
    assert_eq!(parsed, log);
    assert_eq!(parsed.seeds(), original.seeds);
    assert_eq!(parsed.total_activated(), original.total_activated);

    // Re-drive the exact same policy against the replay.
    let mut replay = ReplayOracle::new(parsed);
    let mut rng = SmallRng::seed_from_u64(99);
    let replayed = asti(&g, Model::IC, eta, &params, &mut replay, &mut rng).unwrap();
    assert_eq!(replayed.seeds, original.seeds);
    assert_eq!(replayed.total_activated, original.total_activated);
    assert_eq!(replayed.num_rounds(), original.num_rounds());
    assert_eq!(replay.remaining(), 0, "every recorded step consumed");
}

#[test]
fn truncated_log_fails_loudly_mid_replay() {
    // Corrupt the audit file by dropping the final steps: re-driving the
    // same policy must hit "replay exhausted" instead of silently reporting
    // an unfinished campaign as complete.
    let g = graph();
    let eta = 250; // large enough that several rounds are needed
    let params = AstiParams::with_eps(0.5);
    let mut world_rng = SmallRng::seed_from_u64(10);
    let phi = Realization::sample(&g, Model::IC, &mut world_rng);
    let mut recorder = LoggingOracle::new(RealizationOracle::new(&g, phi), g.n());
    let mut rng = SmallRng::seed_from_u64(99);
    let original = asti(&g, Model::IC, eta, &params, &mut recorder, &mut rng).unwrap();
    let (mut log, _) = recorder.into_parts();
    assert!(
        original.num_rounds() >= 2,
        "need a multi-round campaign for this test"
    );
    log.steps.truncate(original.num_rounds() - 1);

    let mut replay = ReplayOracle::new(log);
    let mut rng = SmallRng::seed_from_u64(99);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = asti(&g, Model::IC, eta, &params, &mut replay, &mut rng);
    }));
    assert!(
        result.is_err(),
        "truncated replay must panic, not silently differ"
    );
}

#[test]
fn audit_line_format_is_pinned() {
    // Golden serialization: the CLI's `asm run --audit` files use exactly
    // this line format, so any change here silently breaks every archived
    // audit trail. The text below is the contract, byte for byte.
    use seedmin::diffusion::ObservationStep;
    let log = ObservationLog {
        n: 7,
        steps: vec![
            ObservationStep {
                seeds: vec![3],
                activated: vec![3, 5, 6],
            },
            ObservationStep {
                seeds: vec![0, 2],
                activated: vec![0],
            },
            ObservationStep {
                seeds: vec![1],
                activated: vec![],
            },
        ],
    };
    let golden = "\
# observation log, n = 7
S 3 | A 3 5 6
S 0 2 | A 0
S 1 | A
";
    assert_eq!(
        log.to_text(),
        golden,
        "serialized format drifted from golden"
    );
    let parsed = ObservationLog::from_text(golden).unwrap();
    assert_eq!(parsed, log, "golden text no longer parses to the same log");
    // idempotent round trip
    assert_eq!(
        ObservationLog::from_text(&parsed.to_text()).unwrap(),
        parsed
    );
}

#[test]
fn golden_log_replays_through_the_oracle() {
    // The golden file drives a ReplayOracle exactly as `asm run --audit`
    // output would.
    let golden = "\
# observation log, n = 5
S 4 | A 4 1
S 0 | A 0 2 3
";
    let log = ObservationLog::from_text(golden).unwrap();
    let mut replay = ReplayOracle::new(log);
    assert_eq!(replay.observe(&[4]), vec![4, 1]);
    assert_eq!(replay.observe(&[0]), vec![0, 2, 3]);
    assert_eq!(replay.num_active(), 5);
    assert_eq!(replay.remaining(), 0);
}

#[test]
fn logging_is_transparent() {
    // The wrapped oracle behaves exactly like the bare one.
    let g = graph();
    let eta = 40;
    let params = AstiParams::with_eps(0.5);
    let mut world_rng = SmallRng::seed_from_u64(20);
    let phi = Realization::sample(&g, Model::IC, &mut world_rng);

    let mut bare = RealizationOracle::new(&g, phi.clone());
    let mut rng = SmallRng::seed_from_u64(7);
    let r1 = asti(&g, Model::IC, eta, &params, &mut bare, &mut rng).unwrap();

    let mut logged = LoggingOracle::new(RealizationOracle::new(&g, phi), g.n());
    let mut rng = SmallRng::seed_from_u64(7);
    let r2 = asti(&g, Model::IC, eta, &params, &mut logged, &mut rng).unwrap();

    assert_eq!(r1.seeds, r2.seeds);
    assert_eq!(logged.num_active(), bare.num_active());
}
