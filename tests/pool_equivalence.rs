//! Layout-equivalence property: the arena-backed columnar [`SketchPool`]
//! must be observationally identical to a naive reference pool
//! (`Vec<Vec<u32>>` inverted index, the pre-refactor layout) on every query
//! surface — coverage counts, argmax, union coverage, and greedy
//! selections — for arbitrary random pools, including across `reset`.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use seedmin::sampling::{
    greedy_max_coverage, lazy_greedy_max_coverage, CoverageEngine, SketchPool,
};
use smin_graph::NodeId;

/// The reference layout: per-node `Vec`s, scans everything, obviously
/// correct. Tie-breaking matches the engine (higher gain, then smaller id).
struct NaivePool {
    n: usize,
    sets: Vec<Vec<NodeId>>,
    node_sets: Vec<Vec<u32>>,
}

impl NaivePool {
    fn new(n: usize) -> Self {
        NaivePool {
            n,
            sets: Vec::new(),
            node_sets: vec![Vec::new(); n],
        }
    }

    fn add_set(&mut self, nodes: &[NodeId]) {
        let id = self.sets.len() as u32;
        for &v in nodes {
            self.node_sets[v as usize].push(id);
        }
        self.sets.push(nodes.to_vec());
    }

    fn coverage_counts(&self) -> Vec<u32> {
        (0..self.n)
            .map(|v| self.node_sets[v].len() as u32)
            .collect()
    }

    fn argmax(&self) -> Option<(NodeId, u32)> {
        let mut best: Option<(NodeId, u32)> = None;
        for v in 0..self.n as u32 {
            let c = self.node_sets[v as usize].len() as u32;
            if c > 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
                best = Some((v, c));
            }
        }
        best
    }

    fn coverage_of_set(&self, nodes: &[NodeId]) -> u32 {
        let mut seen = vec![false; self.sets.len()];
        let mut c = 0;
        for &v in nodes {
            for &s in &self.node_sets[v as usize] {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    c += 1;
                }
            }
        }
        c
    }

    fn greedy(&self, b: usize) -> (Vec<NodeId>, u32) {
        let mut marginal = self.coverage_counts();
        let mut covered_sets = vec![false; self.sets.len()];
        let mut seeds = Vec::new();
        let mut covered = 0;
        for _ in 0..b {
            let mut best: Option<(NodeId, u32)> = None;
            for v in 0..self.n as u32 {
                let c = marginal[v as usize];
                if c > 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
                    best = Some((v, c));
                }
            }
            let Some((v, gain)) = best else { break };
            seeds.push(v);
            covered += gain;
            for &s in &self.node_sets[v as usize] {
                if !covered_sets[s as usize] {
                    covered_sets[s as usize] = true;
                    for &u in &self.sets[s as usize] {
                        marginal[u as usize] -= 1;
                    }
                }
            }
        }
        (seeds, covered)
    }
}

/// Strategy: a batch of random duplicate-free sets over `0..n`.
fn random_sets() -> impl Strategy<Value = (usize, Vec<Vec<NodeId>>)> {
    (2usize..40, 0u64..10_000).prop_map(|(n, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch = rng.random_range(0..60usize);
        let sets = (0..batch)
            .map(|_| {
                let size = rng.random_range(0..12usize);
                let mut s: Vec<NodeId> = (0..size).map(|_| rng.random_range(0..n as u32)).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        (n, sets)
    })
}

fn build_both(n: usize, sets: &[Vec<NodeId>]) -> (SketchPool, NaivePool) {
    let mut arena = SketchPool::new(n);
    let mut naive = NaivePool::new(n);
    for s in sets {
        arena.add_set(s);
        naive.add_set(s);
    }
    (arena, naive)
}

fn assert_equivalent(arena: &SketchPool, naive: &NaivePool) {
    assert_eq!(arena.len(), naive.sets.len());
    assert_eq!(arena.coverage_counts(), &naive.coverage_counts()[..]);
    assert_eq!(arena.argmax(), naive.argmax());
    // inverted index replays ids in insertion order
    for v in 0..naive.n as u32 {
        let got: Vec<u32> = arena.sets_of(v).collect();
        assert_eq!(got, naive.node_sets[v as usize], "sets_of({v}) diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arena_pool_matches_naive_reference((n, sets) in random_sets()) {
        let (arena, naive) = build_both(n, &sets);
        assert_equivalent(&arena, &naive);

        // union-coverage queries on a few deterministic member subsets
        let all: Vec<NodeId> = (0..n as u32).collect();
        prop_assert_eq!(arena.coverage_of_set(&all), naive.coverage_of_set(&all));
        let evens: Vec<NodeId> = (0..n as u32).step_by(2).collect();
        prop_assert_eq!(arena.coverage_of_set(&evens), naive.coverage_of_set(&evens));
        prop_assert_eq!(arena.coverage_of_set(&[]), 0);

        // greedy selections: eager, CELF, and persistent-engine paths must
        // all equal the naive reference, pick for pick
        let mut engine = CoverageEngine::new();
        for b in [1usize, 2, 3, 8] {
            let (seeds, covered) = naive.greedy(b);
            let eager = greedy_max_coverage(&arena, b);
            prop_assert_eq!(&eager.seeds, &seeds);
            prop_assert_eq!(eager.covered, covered);
            let lazy = lazy_greedy_max_coverage(&arena, b);
            prop_assert_eq!(&lazy.seeds, &seeds);
            let reused = engine.select(&arena, b);
            prop_assert_eq!(&reused.seeds, &seeds);
        }
    }

    #[test]
    fn arena_pool_matches_naive_after_reset((n, sets) in random_sets()) {
        // Fill, reset, refill with the same sets shifted by one: the arena's
        // recycled chunks must behave exactly like a fresh naive pool.
        let (mut arena, _) = build_both(n, &sets);
        arena.reset();
        let mut naive = NaivePool::new(n);
        for s in sets.iter().rev() {
            arena.add_set(s);
            naive.add_set(s);
        }
        assert_equivalent(&arena, &naive);
    }
}
