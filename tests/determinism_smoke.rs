//! Workspace smoke test: the full ASTI pipeline is deterministic for a fixed
//! RNG seed — same graph, same realization, same seed set, across two
//! independent runs. This pins down the reproducibility contract every
//! figure/table bin relies on.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::prelude::*;

fn run_once(seed: u64) -> (usize, Vec<u32>, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pairs = chung_lu_directed(400, 1_600, 2.1, &mut rng);
    let g = assemble(400, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
    let phi = Realization::sample(&g, Model::IC, &mut rng);
    let mut oracle = RealizationOracle::new(&g, phi);
    let report = asti(&g, Model::IC, 40, &AstiParams::with_eps(0.5), &mut oracle, &mut rng)
        .expect("valid parameters");
    (g.m(), report.seeds.clone(), report.total_activated)
}

#[test]
fn asti_is_deterministic_for_equal_seeds() {
    let (m1, seeds1, act1) = run_once(0xA571);
    let (m2, seeds2, act2) = run_once(0xA571);
    assert_eq!(m1, m2, "graph generation must be deterministic");
    assert_eq!(seeds1, seeds2, "seed selection must be deterministic");
    assert_eq!(act1, act2, "activation accounting must be deterministic");
    assert!(act1 >= 40, "ASTI must reach the threshold");
    assert!(!seeds1.is_empty());
}

#[test]
fn asti_differs_across_seeds() {
    // Not a strict requirement of the algorithm, but if two unrelated seeds
    // produce identical graphs AND identical seed sets, the RNG plumbing is
    // almost certainly broken (e.g. a hardcoded seed somewhere).
    let (m1, seeds1, _) = run_once(1);
    let (m2, seeds2, _) = run_once(2);
    assert!(
        m1 != m2 || seeds1 != seeds2,
        "independent seeds produced identical runs"
    );
}
