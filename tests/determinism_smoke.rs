//! Workspace smoke test: the full ASTI pipeline is deterministic for a fixed
//! RNG seed — same graph, same realization, same seed set, across two
//! independent runs — **and across sketch-generation thread counts**: the
//! per-set counter-derived RNG streams make the generated pool bit-identical
//! whether it was produced by 1 worker or 8. This pins down the
//! reproducibility contract every figure/table bin relies on.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::algo::trim::{trim, TrimScratch};
use seedmin::algo::trim_b::trim_b;
use seedmin::prelude::*;
use seedmin::sampling::SketchPool;

fn run_once(seed: u64) -> (usize, Vec<u32>, usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pairs = chung_lu_directed(400, 1_600, 2.1, &mut rng);
    let g = assemble(400, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
    let phi = Realization::sample(&g, Model::IC, &mut rng);
    let mut oracle = RealizationOracle::new(&g, phi);
    let report = asti(
        &g,
        Model::IC,
        40,
        &AstiParams::with_eps(0.5),
        &mut oracle,
        &mut rng,
    )
    .expect("valid parameters");
    (g.m(), report.seeds.clone(), report.total_activated)
}

#[test]
fn asti_is_deterministic_for_equal_seeds() {
    let (m1, seeds1, act1) = run_once(0xA571);
    let (m2, seeds2, act2) = run_once(0xA571);
    assert_eq!(m1, m2, "graph generation must be deterministic");
    assert_eq!(seeds1, seeds2, "seed selection must be deterministic");
    assert_eq!(act1, act2, "activation accounting must be deterministic");
    assert!(act1 >= 40, "ASTI must reach the threshold");
    assert!(!seeds1.is_empty());
}

/// Shared fixture for the cross-thread tests: a mid-size Chung–Lu graph and
/// a partially killed residual, so the snapshot path is exercised off the
/// trivial all-alive state.
fn thread_fixture() -> (Graph, ResidualState) {
    let mut rng = SmallRng::seed_from_u64(0x7EAD);
    let pairs = chung_lu_directed(600, 2_400, 2.1, &mut rng);
    let g = assemble(600, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
    let mut residual = ResidualState::new(600);
    residual.kill_all(&[1, 17, 99, 256, 420]);
    (g, residual)
}

fn dump_pool(pool: &SketchPool) -> Vec<Vec<u32>> {
    (0..pool.len() as u32)
        .map(|i| pool.set(i).to_vec())
        .collect()
}

/// FNV-1a over the pool's flattened set contents (order-sensitive).
fn pool_digest(pool: &SketchPool) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for i in 0..pool.len() as u32 {
        for &v in pool.set(i) {
            h ^= v as u64 + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xFFFF_FFFF;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Golden regression: selections and pool contents captured from the
/// pre-arena (`Vec<Vec<u32>>` inverted index) implementation. The columnar
/// refactor must be bit-identical on every thread count — if a layout or
/// tie-breaking change trips this test, it changed observable behavior, not
/// just performance.
#[test]
fn selections_match_pre_refactor_goldens() {
    let (g, residual) = thread_fixture();
    for threads in [1usize, 2, 8] {
        let params = TrimParams::with_eps(0.4).with_threads(threads);
        let mut scratch = TrimScratch::new(g.n());
        let mut rng = SmallRng::seed_from_u64(0xA57);
        let out = trim(
            &g,
            Model::IC,
            &residual,
            60,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.node, 399, "trim selection drifted at {threads} threads");
        assert_eq!(out.coverage, 581);
        assert_eq!(out.sets_generated, 864);
        assert_eq!(pool_digest(scratch.pool()), 0x4c12033beb864a01);

        let mut scratch = TrimScratch::new(g.n());
        let mut rng = SmallRng::seed_from_u64(0xB47C);
        let out = trim_b(
            &g,
            Model::IC,
            &residual,
            60,
            4,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.seeds, vec![399, 212, 521, 546], "trim_b batch drifted");
        assert_eq!(out.coverage, 788);
        assert_eq!(out.sets_generated, 828);
        assert_eq!(pool_digest(scratch.pool()), 0xa57c3c3e46341392);
    }

    let (_, seeds, activated) = run_once(0xA571);
    assert_eq!(seeds, vec![227, 238], "full ASTI seed sequence drifted");
    assert_eq!(activated, 72);
}

#[test]
fn trim_selection_and_pool_identical_across_thread_counts() {
    let (g, residual) = thread_fixture();
    let mut baseline: Option<(u32, u32, usize, Vec<Vec<u32>>)> = None;
    for threads in [1usize, 2, 8] {
        let params = TrimParams::with_eps(0.4).with_threads(threads);
        let mut scratch = TrimScratch::new(g.n());
        let mut rng = SmallRng::seed_from_u64(0xA57);
        let out = trim(
            &g,
            Model::IC,
            &residual,
            60,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        let state = (
            out.node,
            out.coverage,
            out.sets_generated,
            dump_pool(scratch.pool()),
        );
        match &baseline {
            None => baseline = Some(state),
            Some(base) => {
                assert_eq!(state.0, base.0, "{threads} threads picked a different seed");
                assert_eq!(state.1, base.1, "{threads} threads: coverage diverged");
                assert_eq!(state.2, base.2, "{threads} threads: |R| diverged");
                assert_eq!(
                    state.3, base.3,
                    "{threads} threads: pool contents diverged from single-threaded"
                );
            }
        }
    }
    let (_, _, sets, _) = baseline.unwrap();
    assert!(sets > 0);
}

#[test]
fn trim_b_batch_identical_across_thread_counts() {
    let (g, residual) = thread_fixture();
    let mut baseline: Option<(Vec<u32>, u32, Vec<Vec<u32>>)> = None;
    for threads in [1usize, 2, 8] {
        let params = TrimParams::with_eps(0.4).with_threads(threads);
        let mut scratch = TrimScratch::new(g.n());
        let mut rng = SmallRng::seed_from_u64(0xB47C);
        let out = trim_b(
            &g,
            Model::IC,
            &residual,
            60,
            4,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        let state = (out.seeds.clone(), out.coverage, dump_pool(scratch.pool()));
        match &baseline {
            None => baseline = Some(state),
            Some(base) => assert_eq!(&state, base, "{threads} threads diverged"),
        }
    }
}

#[test]
fn full_asti_run_identical_across_thread_counts() {
    fn run(threads: usize) -> (Vec<u32>, usize) {
        let mut rng = SmallRng::seed_from_u64(0xA571);
        let pairs = chung_lu_directed(400, 1_600, 2.1, &mut rng);
        let g = assemble(400, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let mut params = AstiParams::with_eps(0.5);
        params.trim = params.trim.with_threads(threads);
        let report = asti(&g, Model::IC, 40, &params, &mut oracle, &mut rng).unwrap();
        (report.seeds.clone(), report.total_activated)
    }
    let (seeds1, act1) = run(1);
    for threads in [2usize, 8] {
        let (seeds, act) = run(threads);
        assert_eq!(seeds, seeds1, "{threads} threads changed the seed sequence");
        assert_eq!(act, act1, "{threads} threads changed activation accounting");
    }
    assert!(act1 >= 40);
}

#[test]
fn asti_differs_across_seeds() {
    // Not a strict requirement of the algorithm, but if two unrelated seeds
    // produce identical graphs AND identical seed sets, the RNG plumbing is
    // almost certainly broken (e.g. a hardcoded seed somewhere).
    let (m1, seeds1, _) = run_once(1);
    let (m2, seeds2, _) = run_once(2);
    assert!(
        m1 != m2 || seeds1 != seeds2,
        "independent seeds produced identical runs"
    );
}
