//! Empirical checks of the paper's cost lemmas.
//!
//! * **Lemma 3.8**: the expected edges examined per mRR set is
//!   `O((OPT_i/η_i)·m_i)` — we verify the measured expected-per-sample cost
//!   against the bound with the exact OPT of constructed instances.
//! * **Lemma 3.9**: TRIM generates `O(η_i ln n_i / (ε² OPT_i))` sets — we
//!   verify the qualitative driver: instances with large `OPT_i` stop with
//!   far fewer sets than instances with tiny `OPT_i`, and growing `η` with
//!   OPT ∝ η keeps the count stable.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use seedmin::algo::trim::{trim, TrimScratch};
use seedmin::algo::TrimParams;
use seedmin::diffusion::{Model, ResidualState};
use seedmin::graph::GraphBuilder;
use seedmin::sampling::{MrrSampler, RootCountDist};

/// Star with `n − 1` leaves and deterministic edges: `E[Γ(center)] = η`
/// exactly, so `OPT = η` and the Lemma 3.8 bound is `(OPT/η)·m = m`.
fn star(n: usize) -> seedmin::graph::Graph {
    let mut b = GraphBuilder::new(n);
    for leaf in 1..n as u32 {
        b.add_edge_p(0, leaf, 1.0).unwrap();
    }
    b.build().unwrap()
}

/// Edgeless graph: `OPT = 1` (every node only activates itself).
fn isolated(n: usize) -> seedmin::graph::Graph {
    GraphBuilder::new(n).build().unwrap()
}

#[test]
fn lemma38_ept_bound_on_star() {
    // On the star, every mRR set that contains any leaf root traverses that
    // leaf's single in-edge; expected edges examined per set ≤ m·OPT/η = m.
    // Actually sharper: per-set cost = (#roots that are leaves) ≤ k ≈ n/η...
    // we assert the lemma's bound with constant 4 slack.
    let n = 512;
    let g = star(n);
    let m = g.m() as f64;
    for eta in [4usize, 32, 128] {
        let mut sampler = MrrSampler::new(n);
        let residual = ResidualState::new(n);
        let mut rng = SmallRng::seed_from_u64(eta as u64);
        let mut out = Vec::new();
        let sets = 2_000;
        for _ in 0..sets {
            sampler.sample_into(
                &g,
                Model::IC,
                &residual,
                eta,
                RootCountDist::Randomized,
                &mut rng,
                &mut out,
            );
        }
        let per_set = sampler.edges_examined as f64 / sets as f64;
        let opt = eta as f64; // E[Γ(center)] = η
        let bound = opt / eta as f64 * m;
        assert!(
            per_set <= 4.0 * bound,
            "η={eta}: measured EPT {per_set} exceeds 4×bound {bound}"
        );
    }
}

#[test]
fn lemma38_cost_shrinks_with_opt_on_sparse_graph() {
    // On the isolated graph OPT = 1: per-set cost must be ~k node visits and
    // zero edges.
    let n = 256;
    let g = isolated(n);
    let mut sampler = MrrSampler::new(n);
    let residual = ResidualState::new(n);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut out = Vec::new();
    for _ in 0..500 {
        sampler.sample_into(
            &g,
            Model::IC,
            &residual,
            16,
            RootCountDist::Randomized,
            &mut rng,
            &mut out,
        );
    }
    assert_eq!(sampler.edges_examined, 0, "no edges to examine");
}

#[test]
fn lemma39_set_count_inverse_in_opt() {
    // Same η, two extremes of OPT: the star (OPT = η) must certify with far
    // fewer mRR sets than the isolated graph (OPT = 1).
    let n = 512;
    let eta = 32;
    let params = TrimParams::with_eps(0.5);

    let run = |g: &seedmin::graph::Graph| {
        let residual = ResidualState::new(n);
        let mut scratch = TrimScratch::new(n);
        let mut rng = SmallRng::seed_from_u64(7);
        trim(
            g,
            Model::IC,
            &residual,
            eta,
            &params,
            &mut scratch,
            &mut rng,
        )
        .expect("valid")
        .sets_generated
    };

    let sets_star = run(&star(n));
    let sets_isolated = run(&isolated(n));
    assert!(
        sets_isolated >= 4 * sets_star,
        "OPT=1 instance used {sets_isolated} sets, OPT=η instance {sets_star}"
    );
}

#[test]
fn lemma39_star_stops_after_first_check() {
    // With OPT = η the center covers every set: Λ(v*) = |R|, the ratio
    // Λˡ/Λᵘ approaches 1 quickly, so TRIM should stop within the first
    // couple of doublings.
    let n = 1024;
    let g = star(n);
    let params = TrimParams::with_eps(0.5);
    let residual = ResidualState::new(n);
    let mut scratch = TrimScratch::new(n);
    let mut rng = SmallRng::seed_from_u64(3);
    let out = trim(
        &g,
        Model::IC,
        &residual,
        64,
        &params,
        &mut scratch,
        &mut rng,
    )
    .unwrap();
    assert_eq!(out.node, 0, "the center dominates");
    assert!(
        out.iterations <= 3,
        "expected early stop, took {} iterations / {} sets",
        out.iterations,
        out.sets_generated
    );
}

#[test]
fn trim_set_count_scales_with_eta_over_opt() {
    // On stars OPT tracks η exactly, so the η/OPT driver is constant and
    // the set count should stay within a small factor across η values.
    let n = 1024;
    let g = star(n);
    let params = TrimParams::with_eps(0.5);
    let mut counts = Vec::new();
    for eta in [16usize, 64, 256] {
        let residual = ResidualState::new(n);
        let mut scratch = TrimScratch::new(n);
        let mut rng = SmallRng::seed_from_u64(11);
        let out = trim(
            &g,
            Model::IC,
            &residual,
            eta,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        counts.push(out.sets_generated as f64);
    }
    let max = counts.iter().cloned().fold(f64::MIN, f64::max);
    let min = counts.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min <= 8.0,
        "set counts should be η-stable when OPT ∝ η: {counts:?}"
    );
}
