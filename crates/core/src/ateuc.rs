//! ATEUC — the non-adaptive seed-minimization baseline (§6.1).
//!
//! Reimplemented from the description of Han et al. 2017 ("Cost-Effective
//! Seed Selection for Online Social Networks", ref.\[22\]) given in the paper:
//! ATEUC maintains two greedy candidate sets over a pool of single-root RR
//! sets,
//!
//! * `S_u` — grown until a *lower* confidence bound on `E[I(S_u)]` reaches
//!   `η` (so `E[I(S_u)] ≥ η` w.h.p. — the returned solution), and
//! * `S_l` — grown until an *upper* confidence bound reaches `η` (an
//!   optimistic lower estimate of how many seeds are needed),
//!
//! doubling the pool until the stop condition `|S_u| ≤ 2|S_l|` holds (§6.2).
//! Two behaviours of the original are reproduced faithfully:
//!
//! * the guarantee is on the *expected* spread only — on individual
//!   realizations the returned set may miss `η` (the "N/A" rows of Table 3,
//!   Figure 8), or overshoot it wastefully;
//! * larger `η` needs more seeds, making `|S_u| ≤ 2|S_l|` easier to satisfy,
//!   so the running time *decreases* with `η` (Figure 5's inverted trend).

use crate::error::AsmError;
use rand::Rng;
use smin_diffusion::{ForwardSim, Model, Realization, ResidualState};
use smin_graph::{Graph, NodeId};
use smin_sampling::bounds::{coverage_lower_bound, coverage_upper_bound};
use smin_sampling::{CoverageEngine, MrrSampler, SketchPool};

/// ATEUC parameters.
#[derive(Clone, Copy, Debug)]
pub struct AteucParams {
    /// Confidence parameter: each candidate's bound holds with probability
    /// `1 − 1/n` per doubling (the recommended setting in ref.\[22\]).
    pub delta_exponent: f64,
    /// Initial pool size.
    pub theta0: usize,
    /// Maximum number of doublings before returning the current `S_u`.
    pub max_doublings: usize,
}

impl Default for AteucParams {
    fn default() -> Self {
        AteucParams {
            delta_exponent: 1.0,
            theta0: 256,
            max_doublings: 14,
        }
    }
}

/// Result of an ATEUC run.
#[derive(Clone, Debug)]
pub struct AteucOutput {
    /// The returned seed set `S_u` (greedy order).
    pub seeds: Vec<NodeId>,
    /// Size of the optimistic candidate `S_l` at termination.
    pub lower_candidate_size: usize,
    /// Estimated expected spread `n·Λ(S_u)/θ` of the returned set.
    pub est_spread: f64,
    /// RR sets generated in the final pool.
    pub sets_generated: usize,
    /// Doublings performed.
    pub doublings: usize,
    /// Whether the greedy could certify `E[I(S_u)] ≥ η`; `false` means the
    /// pool/doubling budget ran out first (the full vertex set is returned).
    pub certified: bool,
}

/// Runs ATEUC: one-shot (non-adaptive) seed selection targeting
/// `E[I(S)] ≥ η`.
pub fn ateuc(
    g: &Graph,
    model: Model,
    eta: usize,
    params: &AteucParams,
    rng: &mut impl Rng,
) -> Result<AteucOutput, AsmError> {
    let n = g.n();
    if n == 0 {
        return Err(AsmError::EmptyGraph);
    }
    if eta == 0 || eta > n {
        return Err(AsmError::EtaOutOfRange { eta, n });
    }

    let mut residual = ResidualState::new(n); // all alive: full graph
    let mut sampler = MrrSampler::new(n);
    let mut pool = SketchPool::new(n);
    let mut engine = CoverageEngine::new();
    let mut set_buf: Vec<NodeId> = Vec::new();
    let mut root_buf: Vec<NodeId> = Vec::new();

    // failure budget: ln(n^c · doublings) per bound application
    let a = params.delta_exponent * (n.max(2) as f64).ln()
        + ((params.max_doublings.max(1)) as f64).ln()
        + 1.0;

    let mut theta = params.theta0.max(16);
    let mut doublings = 0usize;
    loop {
        while pool.len() < theta {
            residual.sample_k_distinct(1, rng, &mut root_buf);
            sampler.reverse_sample_into(
                g,
                model,
                residual.alive_mask(),
                &root_buf,
                rng,
                &mut set_buf,
            );
            pool.add_set(&set_buf);
        }

        let theta_f = pool.len() as f64;
        let target_cov_pess = |cov: f64| n as f64 * coverage_lower_bound(cov, a) / theta_f;
        let target_cov_opt = |cov: f64| n as f64 * coverage_upper_bound(cov, a) / theta_f;

        // Both candidate growths run through the shared coverage engine
        // (bound-driven greedy; same tie-breaking as TRIM-B's selection).
        let (upper, certified) = engine.select_until(&pool, eta as f64, target_cov_pess);
        let (lower, _) = engine.select_until(&pool, eta as f64, target_cov_opt);

        let done = certified && upper.seeds.len() <= 2 * lower.seeds.len().max(1);
        if done || doublings >= params.max_doublings {
            let est = n as f64 * upper.covered as f64 / theta_f;
            return Ok(AteucOutput {
                seeds: upper.seeds,
                lower_candidate_size: lower.seeds.len(),
                est_spread: est,
                sets_generated: pool.len(),
                doublings,
                certified,
            });
        }
        theta *= 2;
        doublings += 1;
    }
}

/// Evaluates a fixed (non-adaptive) seed set on a batch of realizations,
/// returning the realized spread of each — the protocol behind Figure 8 and
/// the "N/A" entries of Table 3.
pub fn evaluate_on_realizations(
    g: &Graph,
    seeds: &[NodeId],
    realizations: &[Realization],
) -> Vec<usize> {
    let mut sim = ForwardSim::new(g.n());
    realizations
        .iter()
        .map(|phi| sim.spread(g, phi, seeds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::spread::mc_expected_spread;
    use smin_graph::{generators, GraphBuilder, WeightModel};

    #[test]
    fn deterministic_star_needs_one_seed() {
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6u32 {
            b.add_edge_p(0, leaf, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        // η = 5 of 6: the center alone certifiably spreads to everything.
        // (η = n can never be certified by a *strict* lower confidence bound,
        // which is itself a faithful ATEUC behavior.)
        let out = ateuc(&g, Model::IC, 5, &AteucParams::default(), &mut rng).unwrap();
        assert!(out.certified);
        assert_eq!(out.seeds, vec![0]);
    }

    #[test]
    fn isolated_nodes_need_eta_seeds() {
        let g = GraphBuilder::new(6).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let out = ateuc(&g, Model::IC, 3, &AteucParams::default(), &mut rng).unwrap();
        // Each seed only covers itself; the lower bound on coverage needs
        // slack, so ≥ 3 seeds (possibly a few more for confidence).
        assert!(out.seeds.len() >= 3, "got {}", out.seeds.len());
        assert!(out.certified);
    }

    #[test]
    fn expected_spread_of_result_meets_eta() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs = generators::chung_lu_directed(300, 1200, 2.1, &mut rng);
        let g = generators::assemble(300, &pairs, true, WeightModel::WeightedCascade, &mut rng)
            .unwrap();
        let eta = 60;
        let out = ateuc(&g, Model::IC, eta, &AteucParams::default(), &mut rng).unwrap();
        assert!(out.certified);
        let spread = mc_expected_spread(&g, Model::IC, &out.seeds, 4_000, &mut rng);
        assert!(
            spread >= eta as f64 * 0.9,
            "E[I(S)] ≈ {spread} but η = {eta}"
        );
    }

    #[test]
    fn may_miss_eta_on_individual_realizations() {
        // The defining weakness: over many realizations, a certified ATEUC
        // set should miss η on at least one (while never by construction
        // being adaptive). We use a stochastic graph where variance is high.
        let mut rng = SmallRng::seed_from_u64(4);
        let pairs = generators::chung_lu_directed(200, 600, 2.1, &mut rng);
        let g = generators::assemble(200, &pairs, true, WeightModel::WeightedCascade, &mut rng)
            .unwrap();
        let eta = 40;
        let out = ateuc(&g, Model::IC, eta, &AteucParams::default(), &mut rng).unwrap();
        let realizations: Vec<_> = (0..40)
            .map(|_| Realization::sample(&g, Model::IC, &mut rng))
            .collect();
        let spreads = evaluate_on_realizations(&g, &out.seeds, &realizations);
        assert_eq!(spreads.len(), 40);
        let misses = spreads.iter().filter(|&&s| s < eta).count();
        // Not guaranteed mathematically, but with WC weights the spread
        // variance makes ≥ 1 miss overwhelmingly likely; allow zero but then
        // require visible overshoot instead (both demonstrate rigidity).
        let overshoot = spreads
            .iter()
            .filter(|&&s| s as f64 > 1.5 * eta as f64)
            .count();
        assert!(
            misses > 0 || overshoot > 0,
            "non-adaptive set neither missed nor overshot on 40 realizations: {spreads:?}"
        );
    }

    #[test]
    fn evaluate_on_realizations_matches_forward_sim() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let phis = vec![
            Realization::from_ic_statuses(vec![true, true]),
            Realization::from_ic_statuses(vec![false, true]),
        ];
        assert_eq!(evaluate_on_realizations(&g, &[0], &phis), vec![3, 1]);
    }

    #[test]
    fn eta_validation() {
        let g = GraphBuilder::new(3).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(matches!(
            ateuc(&g, Model::IC, 0, &AteucParams::default(), &mut rng),
            Err(AsmError::EtaOutOfRange { .. })
        ));
        assert!(matches!(
            ateuc(&g, Model::IC, 4, &AteucParams::default(), &mut rng),
            Err(AsmError::EtaOutOfRange { .. })
        ));
    }
}
