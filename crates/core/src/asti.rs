//! ASTI — Adaptive Seed minimization with Truncated Influence (Algorithm 1).
//!
//! The driver loop: each round select the (approximately) best node — or
//! size-`b` batch — by expected marginal *truncated* spread on the residual
//! graph, observe its actual influence through the oracle, remove the newly
//! activated nodes, and repeat until `η` nodes are active.
//!
//! Instantiated with TRIM (batch 1) this is the paper's headline algorithm:
//! expected approximation `(ln η + 1)²/((1 − 1/e)(1 − ε))` (Theorem 3.7) in
//! `O(η(m + n)/ε² · ln n)` expected time (Theorem 3.11). With `b > 1`
//! (TRIM-B) the ratio gains a `1/ρ_b` factor (Theorem 4.2) at the same
//! asymptotic cost (Theorem 4.4).

use crate::error::AsmError;
use crate::params::AstiParams;
use crate::report::{AstiReport, RoundReport};
use crate::trim::{trim, TrimScratch};
use crate::trim_b::trim_b;
use rand::Rng;
use smin_diffusion::{InfluenceOracle, Model, ResidualState};
use smin_graph::cast::u32_of;
use smin_graph::Graph;
use std::time::Instant;

/// Reusable cross-run state for [`asti_in`]: the residual alive-mask plus
/// the full [`TrimScratch`] (sketch pool, sketch-generation workers, and
/// coverage engine).
///
/// A long-running service keeps one session per cached graph and recycles it
/// across requests: the sketch-pool arena, worker buffers, and coverage
/// engine retain the capacity learned on earlier runs, so a warm request
/// performs no cold allocations. Reuse never changes results — every run
/// resets the logical state ([`ResidualState::reset`], `SketchPool::reset`)
/// before touching it, so `asti_in` on a recycled session is bit-identical
/// to [`asti`] on a fresh one (pinned by tests).
pub struct AstiSession {
    n: usize,
    scratch: TrimScratch,
    residual: ResidualState,
}

impl AstiSession {
    /// A cold session for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        AstiSession {
            n,
            scratch: TrimScratch::new(n),
            residual: ResidualState::new(n),
        }
    }

    /// Node count the session was sized for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Heap bytes currently retained by the session's sketch pool —
    /// observability for services reporting per-graph warm-state size.
    pub fn pool_heap_bytes(&self) -> usize {
        self.scratch.pool().heap_bytes()
    }

    /// Per-stage select timings (sketch generation vs coverage selection)
    /// accumulated by the most recent [`asti_in`] run on this session.
    /// Observability only — headers, `/metrics`, trace logs — never bodies.
    pub fn stage_micros(&self) -> crate::trim::StageMicros {
        self.scratch.stage_micros()
    }

    /// CELF heap / scan traffic of the most recent coverage selection —
    /// the sampling layer's instrumentation counters, surfaced for the
    /// session layer's metrics.
    pub fn select_traffic(&self) -> smin_sampling::coverage::SelectTraffic {
        self.scratch.engine().select_traffic()
    }
}

/// Runs ASTI until at least `eta` nodes are active according to `oracle`.
///
/// The oracle may arrive with activations already observed (warm start);
/// those nodes are excluded from the residual graph and count toward `eta`.
///
/// # Errors
/// * [`AsmError::EtaOutOfRange`] unless `1 ≤ eta ≤ n`;
/// * [`AsmError::InvalidEps`] / [`AsmError::InvalidBatch`] for bad params;
/// * [`AsmError::InvalidLtInstance`] if `model` is LT but some node's
///   incoming probabilities exceed 1.
pub fn asti(
    g: &Graph,
    model: Model,
    eta: usize,
    params: &AstiParams,
    oracle: &mut impl InfluenceOracle,
    rng: &mut impl Rng,
) -> Result<AstiReport, AsmError> {
    let mut session = AstiSession::new(g.n());
    asti_in(g, model, eta, params, oracle, rng, &mut session)
}

/// [`asti`] on a caller-owned [`AstiSession`], recycling the session's
/// sketch-pool arena and worker scratch instead of reallocating. Selections
/// are identical whether the session is cold or warm.
///
/// Additional error: [`AsmError::SessionMismatch`] when the session was
/// sized for a different node count than `g`.
pub fn asti_in(
    g: &Graph,
    model: Model,
    eta: usize,
    params: &AstiParams,
    oracle: &mut impl InfluenceOracle,
    rng: &mut impl Rng,
    session: &mut AstiSession,
) -> Result<AstiReport, AsmError> {
    params.validate()?;
    let n = g.n();
    if n == 0 {
        return Err(AsmError::EmptyGraph);
    }
    if session.n != n {
        return Err(AsmError::SessionMismatch {
            session_n: session.n,
            graph_n: n,
        });
    }
    if eta == 0 || eta > n {
        return Err(AsmError::EtaOutOfRange { eta, n });
    }
    if model == Model::LT {
        for v in 0..u32_of(n) {
            let mass = g.in_prob_sum(v);
            if mass > 1.0 + 1e-9 {
                return Err(AsmError::InvalidLtInstance { node: v, mass });
            }
        }
    }

    let AstiSession {
        residual, scratch, ..
    } = session;
    residual.reset();
    scratch.reset_stage_micros();
    for (u, &active) in oracle.active_mask().iter().enumerate() {
        if active {
            residual.kill(u32_of(u));
        }
    }
    let mut report = AstiReport {
        seeds: Vec::new(),
        rounds: Vec::new(),
        total_activated: oracle.num_active(),
        eta,
        reached: oracle.num_active() >= eta,
        total_select_time: std::time::Duration::ZERO,
        total_sets: 0,
    };

    while oracle.num_active() < eta && residual.n_alive() > 0 {
        let eta_i = eta - oracle.num_active();
        let n_alive = residual.n_alive();

        // Line 3: (approximate) truncated-influence maximization.
        // smin-lint: allow(no-wall-clock) -- reported only, never branched on; selection stays bit-identical
        let started = Instant::now();
        let (seeds, sets_generated, est) = if params.batch == 1 {
            let out = trim(g, model, residual, eta_i, &params.trim, scratch, rng)?;
            (vec![out.node], out.sets_generated, out.est_truncated_spread)
        } else {
            let out = trim_b(
                g,
                model,
                residual,
                eta_i,
                params.batch,
                &params.trim,
                scratch,
                rng,
            )?;
            (out.seeds, out.sets_generated, out.est_truncated_spread)
        };
        let select_time = started.elapsed();

        // Lines 4–7: observe, record, shrink the residual graph. The seeds
        // themselves are killed unconditionally: a well-behaved oracle
        // reports them among the newly activated, but guarding here makes
        // termination unconditional even against a misbehaving oracle (each
        // round strictly shrinks the residual graph).
        let newly = oracle.observe(&seeds);
        residual.kill_all(&newly);
        residual.kill_all(&seeds);

        report.seeds.extend_from_slice(&seeds);
        report.total_select_time += select_time;
        report.total_sets += sets_generated;
        report.rounds.push(RoundReport {
            seeds,
            newly_activated: newly.len(),
            eta_i,
            n_alive,
            sets_generated,
            est_truncated_spread: est,
            select_time,
        });
    }

    report.total_activated = oracle.num_active();
    report.reached = report.total_activated >= eta;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::{Realization, RealizationOracle, SimulationOracle};
    use smin_graph::GraphBuilder;

    fn chain(n: usize, p: f64) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..(n - 1) as u32 {
            b.add_edge_p(u, u + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn reaches_threshold_on_deterministic_chain() {
        // p = 1 chain: seeding node 0 activates everything in one round.
        let g = chain(10, 1.0);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let report = asti(&g, Model::IC, 10, &params, &mut oracle, &mut rng).unwrap();
        assert!(report.reached);
        assert_eq!(report.total_activated, 10);
        assert_eq!(report.num_seeds(), 1);
        assert_eq!(report.seeds, vec![0]);
    }

    #[test]
    fn stops_as_soon_as_threshold_met() {
        let g = chain(10, 1.0);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(2);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let report = asti(&g, Model::IC, 3, &params, &mut oracle, &mut rng).unwrap();
        assert!(report.reached);
        assert_eq!(report.num_rounds(), 1);
        assert!(report.total_activated >= 3);
    }

    #[test]
    fn isolated_nodes_need_one_seed_each() {
        // No edges: every seed activates exactly itself.
        let g = GraphBuilder::new(5).build().unwrap();
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let report = asti(&g, Model::IC, 4, &params, &mut oracle, &mut rng).unwrap();
        assert!(report.reached);
        assert_eq!(report.num_seeds(), 4);
        assert_eq!(report.total_activated, 4);
    }

    #[test]
    fn always_feasible_on_every_realization() {
        // Random graph, every realization: the adaptive policy must reach η
        // exactly (the defining advantage over non-adaptive ATEUC).
        let mut rng = SmallRng::seed_from_u64(4);
        let pairs = smin_graph::generators::erdos_renyi(40, 80, &mut rng);
        let g = smin_graph::generators::assemble(
            40,
            &pairs,
            true,
            smin_graph::WeightModel::WeightedCascade,
            &mut rng,
        )
        .unwrap();
        let params = AstiParams::with_eps(0.5);
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let report = asti(&g, Model::IC, 20, &params, &mut oracle, &mut rng).unwrap();
            assert!(report.reached, "seed {seed} failed to reach η");
            assert!(report.total_activated >= 20);
        }
    }

    #[test]
    fn batched_runs_use_fewer_rounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        let pairs = smin_graph::generators::erdos_renyi(60, 120, &mut rng);
        let g = smin_graph::generators::assemble(
            60,
            &pairs,
            true,
            smin_graph::WeightModel::WeightedCascade,
            &mut rng,
        )
        .unwrap();
        let eta = 30;
        let mut seeds1 = 0usize;
        let mut rounds4 = Vec::new();
        let mut rounds1 = Vec::new();
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(100 + seed);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut o1 = RealizationOracle::new(&g, phi.clone());
            let r1 = asti(
                &g,
                Model::IC,
                eta,
                &AstiParams::with_eps(0.5),
                &mut o1,
                &mut rng,
            )
            .unwrap();
            let mut o4 = RealizationOracle::new(&g, phi);
            let r4 = asti(
                &g,
                Model::IC,
                eta,
                &AstiParams::batched(0.5, 4),
                &mut o4,
                &mut rng,
            )
            .unwrap();
            assert!(r1.reached && r4.reached);
            seeds1 += r1.num_seeds();
            rounds1.push(r1.num_rounds());
            rounds4.push(r4.num_rounds());
        }
        let sum1: usize = rounds1.iter().sum();
        let sum4: usize = rounds4.iter().sum();
        assert!(
            sum4 < sum1,
            "batch 4 should use fewer rounds ({sum4} vs {sum1})"
        );
        assert!(seeds1 > 0);
    }

    #[test]
    fn works_with_simulation_oracle() {
        let g = chain(8, 0.9);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut oracle = SimulationOracle::new(&g, Model::IC, SmallRng::seed_from_u64(7));
        let report = asti(&g, Model::IC, 6, &params, &mut oracle, &mut rng).unwrap();
        assert!(report.reached);
        assert!(report.total_activated >= 6);
    }

    #[test]
    fn warm_start_respects_prior_activations() {
        let g = chain(10, 1.0);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(8);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        // Pre-activate the tail half.
        oracle.observe(&[5]);
        assert_eq!(oracle.num_active(), 5);
        let report = asti(&g, Model::IC, 7, &params, &mut oracle, &mut rng).unwrap();
        assert!(report.reached);
        // Needed at most one more seed (node 0 activates the remaining head).
        assert!(report.num_seeds() <= 2);
    }

    #[test]
    fn eta_validation() {
        let g = chain(5, 1.0);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(9);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi.clone());
        assert!(matches!(
            asti(&g, Model::IC, 0, &params, &mut oracle, &mut rng),
            Err(AsmError::EtaOutOfRange { .. })
        ));
        let mut oracle = RealizationOracle::new(&g, phi);
        assert!(matches!(
            asti(&g, Model::IC, 6, &params, &mut oracle, &mut rng),
            Err(AsmError::EtaOutOfRange { .. })
        ));
    }

    #[test]
    fn lt_instance_validation() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.8).unwrap();
        b.add_edge_p(1, 0, 0.8).unwrap();
        // make node 1 oversubscribed
        let mut b2 = GraphBuilder::new(3);
        b2.add_edge_p(0, 2, 0.8).unwrap();
        b2.add_edge_p(1, 2, 0.8).unwrap();
        let g = b2.build().unwrap();
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut oracle = SimulationOracle::new(&g, Model::LT, SmallRng::seed_from_u64(11));
        assert!(matches!(
            asti(&g, Model::LT, 2, &params, &mut oracle, &mut rng),
            Err(AsmError::InvalidLtInstance { node: 2, .. })
        ));
        drop(b);
    }

    #[test]
    fn warm_session_reuse_is_bit_identical_to_fresh() {
        // The service reuse pattern: one session, many runs. Every run on
        // the warm session must match a cold `asti` on identical inputs,
        // and the warm pool must retain its arena capacity between runs.
        let mut rng = SmallRng::seed_from_u64(31);
        let pairs = smin_graph::generators::erdos_renyi(50, 100, &mut rng);
        let g = smin_graph::generators::assemble(
            50,
            &pairs,
            true,
            smin_graph::WeightModel::WeightedCascade,
            &mut rng,
        )
        .unwrap();
        let params = AstiParams::with_eps(0.5);
        let mut session = AstiSession::new(50);
        let mut warm_bytes = 0usize;
        for seed in 0..4u64 {
            let mut world_rng = SmallRng::seed_from_u64(1000 + seed);
            let phi = Realization::sample(&g, Model::IC, &mut world_rng);

            let mut oracle = RealizationOracle::new(&g, phi.clone());
            let mut rng = SmallRng::seed_from_u64(seed);
            let fresh = asti(&g, Model::IC, 25, &params, &mut oracle, &mut rng).unwrap();

            let mut oracle = RealizationOracle::new(&g, phi);
            let mut rng = SmallRng::seed_from_u64(seed);
            let warm = asti_in(
                &g,
                Model::IC,
                25,
                &params,
                &mut oracle,
                &mut rng,
                &mut session,
            )
            .unwrap();

            assert_eq!(warm.seeds, fresh.seeds, "seed {seed}: selections diverged");
            assert_eq!(warm.total_activated, fresh.total_activated);
            assert_eq!(warm.total_sets, fresh.total_sets);
            assert!(
                session.pool_heap_bytes() >= warm_bytes,
                "seed {seed}: warm pool shrank"
            );
            warm_bytes = session.pool_heap_bytes();
        }
        assert!(warm_bytes > 0, "session retained no arena capacity");
    }

    #[test]
    fn session_rejects_wrong_graph_size() {
        let g = chain(10, 1.0);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(32);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let mut session = AstiSession::new(7);
        assert!(matches!(
            asti_in(
                &g,
                Model::IC,
                5,
                &params,
                &mut oracle,
                &mut rng,
                &mut session
            ),
            Err(AsmError::SessionMismatch {
                session_n: 7,
                graph_n: 10
            })
        ));
    }

    #[test]
    fn round_reports_are_consistent() {
        let g = chain(12, 0.7);
        let params = AstiParams::with_eps(0.5);
        let mut rng = SmallRng::seed_from_u64(12);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        let report = asti(&g, Model::IC, 8, &params, &mut oracle, &mut rng).unwrap();
        let total_new: usize = report.rounds.iter().map(|r| r.newly_activated).sum();
        assert_eq!(total_new, report.total_activated);
        let total_seeds: usize = report.rounds.iter().map(|r| r.seeds.len()).sum();
        assert_eq!(total_seeds, report.num_seeds());
        // eta_i strictly decreases round over round
        for w in report.rounds.windows(2) {
            assert!(w[1].eta_i < w[0].eta_i);
            assert!(w[1].n_alive < w[0].n_alive);
        }
    }
}
