//! Error type for the algorithm crate.

use std::fmt;

/// Errors surfaced by the seed-minimization algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// `η` must lie in `[1, n]` (Definition 2.1).
    EtaOutOfRange { eta: usize, n: usize },
    /// `ε` must lie strictly inside `(0, 1)`.
    InvalidEps(f64),
    /// Batch size must be at least 1.
    InvalidBatch(usize),
    /// The LT model requires incoming probabilities to sum to at most 1.
    InvalidLtInstance { node: u32, mass: f64 },
    /// The graph has no nodes.
    EmptyGraph,
    /// A reusable session was sized for a different graph.
    SessionMismatch { session_n: usize, graph_n: usize },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::EtaOutOfRange { eta, n } => {
                write!(f, "threshold η = {eta} outside [1, n = {n}]")
            }
            AsmError::InvalidEps(e) => write!(f, "ε = {e} outside (0, 1)"),
            AsmError::InvalidBatch(b) => write!(f, "batch size {b} must be ≥ 1"),
            AsmError::InvalidLtInstance { node, mass } => {
                write!(
                    f,
                    "node {node} has incoming probability mass {mass} > 1 under LT"
                )
            }
            AsmError::EmptyGraph => write!(f, "graph has no nodes"),
            AsmError::SessionMismatch { session_n, graph_n } => {
                write!(
                    f,
                    "session sized for {session_n} nodes used with a {graph_n}-node graph"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}
