//! Exact adaptive greedy — the Golovin–Krause oracle policy (§2.4) realized
//! by exhaustive enumeration.
//!
//! The `(ln η + 1)²` analysis assumes an oracle that returns the *exact*
//! maximizer of `Δ(v | S_{i−1})` each round. Computing expected spread is
//! #P-hard in general, but on tiny graphs we can enumerate the realization
//! space and recover the oracle exactly. This module is the ground truth the
//! integration tests compare TRIM against.

use crate::error::AsmError;
use rand::Rng;
use smin_diffusion::exact::{for_each_ic_realization, for_each_lt_realization};
use smin_diffusion::{ForwardSim, InfluenceOracle, Model};
use smin_graph::cast::u32_of;
use smin_graph::{Graph, NodeId};

/// Exact `Δ(v | S_{i−1})` for every alive node: expected *marginal truncated*
/// spread on the residual graph given the `active` mask and shortfall
/// `eta_i`. O(2^m · n) — tiny graphs only.
pub fn exact_marginal_truncated_spreads(
    g: &Graph,
    model: Model,
    active: &[bool],
    eta_i: usize,
) -> Vec<f64> {
    let n = g.n();
    let mut sim = ForwardSim::new(n);
    let mut delta = vec![0.0f64; n];
    let mut visit = |phi: &smin_diffusion::Realization, p: f64| {
        for v in 0..u32_of(n) {
            if active[v as usize] {
                continue;
            }
            let spread = sim.spread_restricted(g, phi, &[v], Some(active));
            delta[v as usize] += p * spread.min(eta_i) as f64;
        }
    };
    match model {
        Model::IC => for_each_ic_realization(g, &mut visit),
        Model::LT => for_each_lt_realization(g, &mut visit),
    }
    delta
}

/// One exact greedy step: the alive node maximizing `Δ(v | S_{i−1})`.
/// Returns `None` when every node is active.
pub fn exact_greedy_step(
    g: &Graph,
    model: Model,
    active: &[bool],
    eta_i: usize,
) -> Option<(NodeId, f64)> {
    let delta = exact_marginal_truncated_spreads(g, model, active, eta_i);
    let mut best: Option<(NodeId, f64)> = None;
    for (v, &d) in delta.iter().enumerate() {
        if !active[v] && best.is_none_or(|(_, bd)| d > bd) {
            best = Some((v as NodeId, d));
        }
    }
    best
}

/// The full oracle policy of Golovin–Krause: exact greedy each round until
/// `eta` nodes are active. The returned vector lists the seeds in selection
/// order.
pub fn exact_greedy_policy(
    g: &Graph,
    model: Model,
    eta: usize,
    oracle: &mut impl InfluenceOracle,
    _rng: &mut impl Rng,
) -> Result<Vec<NodeId>, AsmError> {
    let n = g.n();
    if n == 0 {
        return Err(AsmError::EmptyGraph);
    }
    if eta == 0 || eta > n {
        return Err(AsmError::EtaOutOfRange { eta, n });
    }
    let mut seeds = Vec::new();
    while oracle.num_active() < eta {
        let eta_i = eta - oracle.num_active();
        let Some((v, _)) = exact_greedy_step(g, model, oracle.active_mask(), eta_i) else {
            break;
        };
        oracle.observe(&[v]);
        seeds.push(v);
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::{Realization, RealizationOracle};
    use smin_graph::GraphBuilder;

    fn figure2() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.5).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_example_2_3_values() {
        let g = figure2();
        let active = vec![false; 4];
        let delta = exact_marginal_truncated_spreads(&g, Model::IC, &active, 2);
        assert!((delta[0] - 1.75).abs() < 1e-12);
        assert!((delta[1] - 2.0).abs() < 1e-12);
        assert!((delta[2] - 2.0).abs() < 1e-12);
        assert!((delta[3] - 1.0).abs() < 1e-12);
        let (best, val) = exact_greedy_step(&g, Model::IC, &active, 2).unwrap();
        assert!(best == 1 || best == 2);
        assert!((val - 2.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_account_for_active_nodes() {
        let g = figure2();
        // v2 active: v1's marginal truncated spread at η_i = 2 loses the
        // v2 branch.
        let mut active = vec![false; 4];
        active[1] = true;
        let delta = exact_marginal_truncated_spreads(&g, Model::IC, &active, 2);
        assert!(delta[0] < 1.75);
        assert_eq!(delta[1], 0.0, "active nodes have zero marginal");
    }

    #[test]
    fn policy_terminates_and_reaches_eta() {
        let g = figure2();
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let seeds = exact_greedy_policy(&g, Model::IC, 2, &mut oracle, &mut rng).unwrap();
            assert!(oracle.num_active() >= 2);
            assert!(!seeds.is_empty());
            // first seed is never the trap node v1
            assert!(seeds[0] == 1 || seeds[0] == 2, "first = {}", seeds[0]);
        }
    }

    #[test]
    fn oracle_policy_uses_one_seed_when_first_suffices() {
        let g = figure2();
        // Under every realization v2 activates itself + v4 (p = 1 edge), so
        // a single seed always suffices for η = 2.
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let seeds = exact_greedy_policy(&g, Model::IC, 2, &mut oracle, &mut rng).unwrap();
            assert_eq!(seeds.len(), 1);
        }
    }
}
