//! Run reports: what an adaptive policy did, round by round.

use smin_graph::NodeId;
use std::time::Duration;

/// One adaptive round (Lines 3–7 of Algorithm 1).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Seeds selected this round (1 for TRIM, ≤ b for TRIM-B).
    pub seeds: Vec<NodeId>,
    /// Nodes newly activated when the seeds were observed (seeds included).
    pub newly_activated: usize,
    /// Shortfall `η_i` at the start of the round.
    pub eta_i: usize,
    /// Alive nodes `n_i` at the start of the round.
    pub n_alive: usize,
    /// (m)RR sets generated this round.
    pub sets_generated: usize,
    /// Estimated truncated marginal spread of the selection.
    pub est_truncated_spread: f64,
    /// Wall-clock time of the selection step (excludes the observe step,
    /// which in a real deployment is the campaign itself).
    pub select_time: Duration,
}

/// Full adaptive run.
#[derive(Clone, Debug)]
pub struct AstiReport {
    /// All seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Per-round details.
    pub rounds: Vec<RoundReport>,
    /// Total nodes active at termination.
    pub total_activated: usize,
    /// The requested threshold `η`.
    pub eta: usize,
    /// Whether `η` was reached (always true unless the graph ran out of
    /// nodes first, which can only happen when `η > n`—rejected up front—or
    /// the oracle double-counts).
    pub reached: bool,
    /// Total selection wall-clock time.
    pub total_select_time: Duration,
    /// Total (m)RR sets across rounds.
    pub total_sets: usize,
}

impl AstiReport {
    /// Number of seeds selected.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Realized marginal spread per seed index (Figure 10's series): for
    /// batched runs the batch's activation count is attributed to the batch.
    pub fn marginal_spreads(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.newly_activated).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let report = AstiReport {
            seeds: vec![3, 1, 4],
            rounds: vec![
                RoundReport {
                    seeds: vec![3],
                    newly_activated: 10,
                    eta_i: 20,
                    n_alive: 100,
                    sets_generated: 64,
                    est_truncated_spread: 9.5,
                    select_time: Duration::from_millis(5),
                },
                RoundReport {
                    seeds: vec![1, 4],
                    newly_activated: 12,
                    eta_i: 10,
                    n_alive: 90,
                    sets_generated: 32,
                    est_truncated_spread: 8.0,
                    select_time: Duration::from_millis(3),
                },
            ],
            total_activated: 22,
            eta: 20,
            reached: true,
            total_select_time: Duration::from_millis(8),
            total_sets: 96,
        };
        assert_eq!(report.num_seeds(), 3);
        assert_eq!(report.num_rounds(), 2);
        assert_eq!(report.marginal_spreads(), vec![10, 12]);
    }
}
