//! TRIM-B — batched truncated influence maximization (Algorithm 3).
//!
//! Selects a size-`b` seed set per round via greedy maximum coverage over
//! mRR sets, with approximation `ρ_b (1 − 1/e)(1 − ε)` where
//! `ρ_b = 1 − (1 − 1/b)^b` (Lemma 4.1). Differences from TRIM (§4.1):
//!
//! * `θ_max` and `θ◦` are generalized with `ρ_b`, `b` and `ln C(n_i, b)`;
//! * the upper bound on the optimum's coverage divides the greedy coverage
//!   by `ρ_b` (Line 10);
//! * the stopping ratio becomes `ρ_b (1 − ε̂)` (Line 11).

use crate::error::AsmError;
use crate::params::TrimParams;
use crate::trim::{schedule, TrimScratch};
use rand::Rng;
use smin_diffusion::{Model, ResidualState};
use smin_graph::{Graph, NodeId};
use smin_sampling::bounds::{coverage_lower_bound, coverage_upper_bound};
use smin_sampling::coverage::rho_b;
use smin_sampling::{resolve_threads, SketchJob};

/// Outcome of one TRIM-B round.
#[derive(Clone, Debug)]
pub struct TrimBOutput {
    /// The selected batch `S_b` (size ≤ b; smaller only when the residual
    /// graph has fewer alive nodes).
    pub seeds: Vec<NodeId>,
    /// `Λ_R(S_b)` at termination.
    pub coverage: u32,
    /// `|R|` at termination.
    pub sets_generated: usize,
    /// Doubling iterations used.
    pub iterations: usize,
    /// Estimate `η_i · Λ_R(S_b)/|R|` of `E[Γ̃(S_b | S_{i−1})]`.
    pub est_truncated_spread: f64,
    /// `Λˡ(S_b)/Λᵘ(S_b◦)` at termination (target `ρ_b(1 − ε̂)`).
    pub certificate: f64,
    /// Total edges examined while sampling.
    pub edges_examined: usize,
}

/// `ln C(n, b)` computed stably as a sum of logs (b is small: 2–8 in the
/// paper's experiments).
pub(crate) fn ln_binomial(n: usize, b: usize) -> f64 {
    assert!(b <= n, "C({n}, {b}) undefined");
    let mut acc = 0.0f64;
    for i in 0..b {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Runs one round of TRIM-B on the residual graph, selecting up to `b`
/// seeds. Sketch generation shares TRIM's deterministic parallel path: an
/// immutable residual snapshot plus counter-derived per-set RNG streams, so
/// the selected batch is identical for every thread count.
#[allow(clippy::too_many_arguments)]
pub fn trim_b(
    g: &Graph,
    model: Model,
    residual: &ResidualState,
    eta_i: usize,
    b: usize,
    params: &TrimParams,
    scratch: &mut TrimScratch,
    rng: &mut impl Rng,
) -> Result<TrimBOutput, AsmError> {
    params.validate()?;
    if b == 0 {
        return Err(AsmError::InvalidBatch(0));
    }
    let n_i = residual.n_alive();
    if n_i == 0 {
        return Err(AsmError::EmptyGraph);
    }
    assert!(eta_i >= 1, "TRIM-B requires a positive shortfall");
    let b = b.min(n_i);
    let rho = rho_b(b);

    let sched = schedule(
        n_i,
        eta_i,
        params.eps,
        b,
        rho,
        ln_binomial(n_i, b),
        params.theta_cap,
    );

    let threads = resolve_threads(params.threads);
    let job = SketchJob {
        graph: g,
        model,
        snapshot: residual.snapshot(),
        eta_i,
        dist: params.root_dist,
        base_seed: rng.next_u64(),
    };
    let TrimScratch {
        pool,
        sketch_gen,
        engine,
        stage,
        ..
    } = scratch;
    pool.reset();
    let mut edges_examined = 0usize;

    {
        let _span = smin_obs::Span::enter(&mut stage.sketch);
        edges_examined += sketch_gen
            .generate(&job, sched.theta0, threads, pool)
            .edges_examined;
    }

    let mut iterations = 0;
    loop {
        iterations += 1;
        // CELF lazy greedy (the engine default) — identical selections to
        // eager greedy by the shared tie-breaking, without rescanning nodes
        // whose cached gain submodularity proves still fresh.
        let greedy = {
            let _span = smin_obs::Span::enter(&mut stage.coverage);
            engine.select(pool, b)
        };
        let coverage = greedy.covered;
        let lower = coverage_lower_bound(coverage as f64, sched.a1);
        // Line 10: the greedy coverage divided by ρ_b upper-bounds the
        // optimal batch's coverage.
        let upper = coverage_upper_bound(coverage as f64 / rho, sched.a2);
        let certificate = if upper > 0.0 { lower / upper } else { 0.0 };
        if certificate >= rho * (1.0 - sched.eps_hat)
            || iterations >= sched.t_max
            || pool.len() >= sched.theta_max
        {
            return Ok(TrimBOutput {
                seeds: greedy.seeds,
                coverage,
                sets_generated: pool.len(),
                iterations,
                est_truncated_spread: eta_i as f64 * coverage as f64 / pool.len() as f64,
                certificate,
                edges_examined,
            });
        }
        let target = (pool.len() * 2).min(sched.theta_max);
        let _span = smin_obs::Span::enter(&mut stage.sketch);
        edges_examined += sketch_gen
            .generate(&job, target, threads, pool)
            .edges_examined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    /// Two independent stars: picking both centers is the unique optimal
    /// 2-batch.
    fn two_stars() -> Graph {
        let mut b = GraphBuilder::new(8);
        for leaf in [1u32, 2, 3] {
            b.add_edge_p(0, leaf, 0.9).unwrap();
        }
        for leaf in [5u32, 6, 7] {
            b.add_edge_p(4, leaf, 0.9).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn batch_of_two_picks_both_centers() {
        let g = two_stars();
        let params = TrimParams::with_eps(0.3);
        let mut hits = 0;
        for seed in 0..20u64 {
            let residual = ResidualState::new(8);
            let mut scratch = TrimScratch::new(8);
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = trim_b(
                &g,
                Model::IC,
                &residual,
                6,
                2,
                &params,
                &mut scratch,
                &mut rng,
            )
            .unwrap();
            let mut s = out.seeds.clone();
            s.sort_unstable();
            if s == vec![0, 4] {
                hits += 1;
            }
        }
        assert!(hits >= 18, "centers selected only {hits}/20 times");
    }

    #[test]
    fn degenerates_to_trim_when_b_is_one() {
        let g = two_stars();
        let params = TrimParams::with_eps(0.5);
        let residual = ResidualState::new(8);
        let mut scratch = TrimScratch::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = trim_b(
            &g,
            Model::IC,
            &residual,
            4,
            1,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.seeds.len(), 1);
        assert!(out.seeds[0] == 0 || out.seeds[0] == 4);
    }

    #[test]
    fn batch_clamped_to_alive_nodes() {
        let g = two_stars();
        let params = TrimParams::with_eps(0.5);
        let mut residual = ResidualState::new(8);
        residual.kill_all(&[2, 3, 4, 5, 6, 7]);
        let mut scratch = TrimScratch::new(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = trim_b(
            &g,
            Model::IC,
            &residual,
            2,
            8,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        assert!(out.seeds.len() <= 2);
        assert!(out.seeds.iter().all(|&v| v == 0 || v == 1));
    }

    #[test]
    fn ln_binomial_matches_direct_computation() {
        // C(10, 3) = 120
        assert!((ln_binomial(10, 3) - 120.0f64.ln()).abs() < 1e-9);
        assert_eq!(ln_binomial(5, 0), 0.0);
        assert!((ln_binomial(5, 5) - 0.0).abs() < 1e-9);
        // C(1000, 8): compare against lgamma-style product
        let direct: f64 = (0..8)
            .map(|i| ((1000 - i) as f64).ln() - ((i + 1) as f64).ln())
            .sum();
        assert!((ln_binomial(1000, 8) - direct).abs() < 1e-9);
    }

    #[test]
    fn estimate_bounded_by_eta() {
        let g = two_stars();
        let params = TrimParams::with_eps(0.5);
        let residual = ResidualState::new(8);
        let mut scratch = TrimScratch::new(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let out = trim_b(
            &g,
            Model::IC,
            &residual,
            3,
            4,
            &params,
            &mut scratch,
            &mut rng,
        )
        .unwrap();
        assert!(out.est_truncated_spread <= 3.0 + 1e-9);
        assert!(out.est_truncated_spread > 0.0);
    }

    #[test]
    fn zero_batch_rejected() {
        let g = two_stars();
        let params = TrimParams::default();
        let residual = ResidualState::new(8);
        let mut scratch = TrimScratch::new(8);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            trim_b(
                &g,
                Model::IC,
                &residual,
                2,
                0,
                &params,
                &mut scratch,
                &mut rng
            ),
            Err(AsmError::InvalidBatch(0))
        ));
    }
}
