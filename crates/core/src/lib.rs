//! # smin-core
//!
//! The paper's algorithms:
//!
//! * [`trim()`](trim::trim) — TRIM (Algorithm 2): `(1 − 1/e)(1 − ε)`-approximate truncated
//!   influence maximization via mRR sets with OPIM-C-style doubling;
//! * [`trim_b()`](trim_b::trim_b) — TRIM-B (Algorithm 3): the batched variant selecting `b`
//!   seeds per round via greedy maximum coverage
//!   (`ρ_b (1 − 1/e)(1 − ε)`-approximate);
//! * [`asti()`](asti::asti) — ASTI (Algorithm 1): the adaptive select→observe driver, which
//!   instantiated with TRIM gives the paper's
//!   `(ln η + 1)² / ((1 − 1/e)(1 − ε))` expected approximation for adaptive
//!   seed minimization in `O(η·(m + n)/ε² · ln n)` expected time;
//! * [`adapt_im()`](adapt_im::adapt_im) — the AdaptIM baseline (§6.1): adaptive greedy by *vanilla*
//!   marginal spread with single-root RR sets;
//! * [`ateuc()`](ateuc::ateuc) — the ATEUC baseline (§6.1): non-adaptive seed minimization
//!   with an `|S_u| ≤ 2|S_l|` stopping rule (reimplemented from the
//!   description in Han et al. 2017);
//! * [`greedy_oracle`] — exact adaptive greedy by exhaustive enumeration,
//!   the ground-truth comparator for tiny graphs.

#![forbid(unsafe_code)]

pub mod adapt_im;
pub mod asti;
pub mod ateuc;
pub mod error;
pub mod greedy_oracle;
pub mod nonadaptive;
pub mod params;
pub mod report;
pub mod trim;
pub mod trim_b;

pub use adapt_im::{adapt_im, AdaptImParams};
pub use asti::{asti, asti_in, AstiSession};
pub use ateuc::{ateuc, evaluate_on_realizations, AteucOutput, AteucParams};
pub use error::AsmError;
pub use nonadaptive::{nonadaptive_greedy, NonAdaptiveOutput, NonAdaptiveParams};
pub use params::{AstiParams, TrimParams};
pub use report::{AstiReport, RoundReport};
pub use trim::{trim, StageMicros, TrimOutput};
pub use trim_b::{trim_b, TrimBOutput};
