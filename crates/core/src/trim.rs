//! TRIM — TRuncated Influence Maximization (Algorithm 2).
//!
//! Given the residual graph `G_i` and shortfall `η_i`, TRIM returns a node
//! whose expected marginal truncated spread is a `(1 − 1/e)(1 − ε)`
//! approximation of the best possible (Lemma 3.6), using
//! `O(η_i ln n_i / (ε² OPT_i))` mRR sets in expectation (Lemma 3.9).
//!
//! Structure follows the pseudo-code line by line:
//!
//! ```text
//! 1  δ ← ε/(100(1−1/e)(1−ε)η_i),  ε̂ ← 99ε/(100−ε)
//! 2  θ_max ← 2n_i(√ln(6/δ) + √(ln n_i + ln(6/δ)))² ε̂⁻²
//! 3  θ◦ ← θ_max ε̂²/n_i
//! 4  T ← ⌈log₂(θ_max/θ◦)⌉ + 1
//! 5  a₁ ← ln(3T/δ) + ln n_i,  a₂ ← ln(3T/δ)
//! 6  generate θ◦ mRR sets
//! 7  repeat ≤ T times: take v* = argmax Λ_R, compute Λˡ(v*), Λᵘ(v◦);
//!    stop when Λˡ/Λᵘ ≥ 1 − ε̂ (or t = T), else double |R|
//! ```

use crate::error::AsmError;
use crate::params::TrimParams;
use rand::Rng;
use smin_diffusion::{Model, ResidualState};
use smin_graph::{Graph, NodeId};
use smin_sampling::bounds::{coverage_lower_bound, coverage_upper_bound};
use smin_sampling::{
    resolve_threads, CoverageEngine, MrrSampler, SketchGenPool, SketchJob, SketchPool,
};

/// Outcome of one TRIM round.
#[derive(Clone, Debug)]
pub struct TrimOutput {
    /// The selected seed `v*`.
    pub node: NodeId,
    /// `Λ_R(v*)` at termination.
    pub coverage: u32,
    /// `|R|` at termination.
    pub sets_generated: usize,
    /// Doubling iterations used (`≤ T`).
    pub iterations: usize,
    /// Unbiased-side estimate `η_i · Λ_R(v*)/|R|` of `E[Γ̃(v* | S_{i−1})]`.
    pub est_truncated_spread: f64,
    /// `Λˡ(v*)/Λᵘ(v◦)` at termination — the per-round certificate; ≥ 1 − ε̂
    /// unless the iteration budget (or an explicit cap) exhausted first.
    pub certificate: f64,
    /// Total edges examined while sampling (EPT accounting).
    pub edges_examined: usize,
}

/// Cumulative per-stage wall time, in microseconds, accumulated by TRIM /
/// TRIM-B since the last [`TrimScratch::reset_stage_micros`].
///
/// Observability output only: the values feed `/metrics` histograms,
/// trace-log lines, and `X-Stage-Micros` response headers — never response
/// bodies — so selections stay bit-identical with timing on. The clock
/// reads live inside [`smin_obs::Span`], keeping this crate free of
/// wall-clock calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageMicros {
    /// Time inside sketch-pool growth (`SketchGenPool::generate`).
    pub sketch: u64,
    /// Time inside coverage selection (argmax / greedy over the pool).
    pub coverage: u64,
}

/// Reusable cross-round scratch (sketch pool, single-root sampler for the
/// baselines, the parallel sketch-generation pool, and the shared coverage
/// engine behind argmax / greedy selection).
pub struct TrimScratch {
    pub(crate) pool: SketchPool,
    pub(crate) sampler: MrrSampler,
    pub(crate) sketch_gen: SketchGenPool,
    pub(crate) engine: CoverageEngine,
    pub(crate) stage: StageMicros,
}

impl TrimScratch {
    /// Scratch for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        TrimScratch {
            pool: SketchPool::new(n),
            sampler: MrrSampler::new(n),
            sketch_gen: SketchGenPool::new(n),
            engine: CoverageEngine::new(),
            stage: StageMicros::default(),
        }
    }

    /// The sketch pool as of the last round (tests inspect it to pin the
    /// cross-thread determinism contract).
    pub fn pool(&self) -> &SketchPool {
        &self.pool
    }

    /// The shared coverage engine as of the last round (tests inspect its
    /// instrumentation counters — scan compaction, CELF heap traffic).
    pub fn engine(&self) -> &CoverageEngine {
        &self.engine
    }

    /// Per-stage timings accumulated since the last reset.
    pub fn stage_micros(&self) -> StageMicros {
        self.stage
    }

    /// Zeroes the stage accumulators (called at the start of each run).
    pub fn reset_stage_micros(&mut self) {
        self.stage = StageMicros::default();
    }
}

/// Derived schedule shared by TRIM and TRIM-B.
pub(crate) struct Schedule {
    pub theta_max: usize,
    pub theta0: usize,
    pub t_max: usize,
    pub a1: f64,
    pub a2: f64,
    pub eps_hat: f64,
}

pub(crate) fn one_minus_inv_e() -> f64 {
    1.0 - 1.0 / std::f64::consts::E
}

/// Lines 1–5 of Algorithm 2 (with `ln_choose = ln n_i`, `b = 1`, `ρ_b = 1`)
/// and of Algorithm 3 (general values).
pub(crate) fn schedule(
    n_i: usize,
    eta_i: usize,
    eps: f64,
    b: usize,
    rho_b: f64,
    ln_choose: f64,
    theta_cap: Option<usize>,
) -> Schedule {
    let n_f = n_i as f64;
    let delta = eps / (100.0 * one_minus_inv_e() * (1.0 - eps) * eta_i as f64);
    let eps_hat = 99.0 * eps / (100.0 - eps);
    let ln6d = (6.0 / delta).ln();
    let theta_max = 2.0 * n_f * ((ln6d).sqrt() + ((ln_choose + ln6d) / rho_b).sqrt()).powi(2)
        / (b as f64 * eps_hat * eps_hat);
    let theta0 = theta_max * (b as f64) * eps_hat * eps_hat / n_f;

    let mut theta_max = theta_max.ceil() as usize;
    let mut theta0 = (theta0.ceil() as usize).max(1);
    if let Some(cap) = theta_cap {
        theta_max = theta_max.min(cap.max(1));
        theta0 = theta0.min(theta_max);
    }
    let t_max = ((theta_max as f64 / theta0 as f64).log2().ceil() as usize) + 1;
    let t_f = t_max as f64;
    Schedule {
        theta_max,
        theta0,
        t_max,
        a1: (3.0 * t_f / delta).ln() + ln_choose,
        a2: (3.0 * t_f / delta).ln(),
        eps_hat,
    }
}

/// Runs one round of TRIM on the residual graph.
///
/// The residual graph is borrowed immutably: sketch generation works off a
/// [`ResidualState::snapshot`] shared by every worker thread, and root
/// sampling draws indices instead of permuting the alive list. The caller's
/// `rng` is consumed exactly once — for the round's base seed — and each
/// sketch derives its own counter-based RNG stream, so the generated pool
/// (and hence the selection) is bit-identical for every thread count.
pub fn trim(
    g: &Graph,
    model: Model,
    residual: &ResidualState,
    eta_i: usize,
    params: &TrimParams,
    scratch: &mut TrimScratch,
    rng: &mut impl Rng,
) -> Result<TrimOutput, AsmError> {
    params.validate()?;
    let n_i = residual.n_alive();
    if n_i == 0 {
        return Err(AsmError::EmptyGraph);
    }
    assert!(eta_i >= 1, "TRIM requires a positive shortfall");

    let sched = schedule(
        n_i,
        eta_i,
        params.eps,
        1,
        1.0,
        (n_i as f64).ln(),
        params.theta_cap,
    );

    let threads = resolve_threads(params.threads);
    let job = SketchJob {
        graph: g,
        model,
        snapshot: residual.snapshot(),
        eta_i,
        dist: params.root_dist,
        base_seed: rng.next_u64(),
    };
    let TrimScratch {
        pool,
        sketch_gen,
        engine,
        stage,
        ..
    } = scratch;
    pool.reset();
    let mut edges_examined = 0usize;

    {
        let _span = smin_obs::Span::enter(&mut stage.sketch);
        edges_examined += sketch_gen
            .generate(&job, sched.theta0, threads, pool)
            .edges_examined;
    }

    let mut iterations = 0;
    loop {
        iterations += 1;
        let (node, coverage) = {
            let _span = smin_obs::Span::enter(&mut stage.coverage);
            engine
                .argmax(pool)
                .expect("pool has non-empty sets: roots are alive")
        };
        let lower = coverage_lower_bound(coverage as f64, sched.a1);
        let upper = coverage_upper_bound(coverage as f64, sched.a2);
        let certificate = if upper > 0.0 { lower / upper } else { 0.0 };
        if certificate >= 1.0 - sched.eps_hat
            || iterations >= sched.t_max
            || pool.len() >= sched.theta_max
        {
            return Ok(TrimOutput {
                node,
                coverage,
                sets_generated: pool.len(),
                iterations,
                est_truncated_spread: eta_i as f64 * coverage as f64 / pool.len() as f64,
                certificate,
                edges_examined,
            });
        }
        let target = (pool.len() * 2).min(sched.theta_max);
        let _span = smin_obs::Span::enter(&mut stage.sketch);
        edges_examined += sketch_gen
            .generate(&job, target, threads, pool)
            .edges_examined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    /// Figure 2 graph of Example 2.3 (v1=0, v2=1, v3=2, v4=3).
    fn figure2() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.5).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    /// A "truncation trap": node 3 has the largest vanilla spread
    /// (E[I] = 11.1) but a tiny truncated one (E[Γ] = 1.2 at η = 3), while
    /// node 0 deterministically activates exactly η = 3 nodes. The truncated
    /// gap (3 vs 1.2) exceeds the estimator's 1 − 1/e slack, so TRIM *must*
    /// pick node 0 — whereas a vanilla-spread greedy (AdaptIM) picks node 3.
    fn trap_graph() -> Graph {
        let n = 105;
        let mut b = GraphBuilder::new(n);
        b.add_edge_p(0, 1, 1.0).unwrap();
        b.add_edge_p(0, 2, 1.0).unwrap();
        b.add_edge_p(3, 4, 0.1).unwrap();
        for leaf in 5..n as u32 {
            b.add_edge_p(4, leaf, 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn picks_truncated_optimal_not_vanilla_optimal() {
        // Exact values at η = 3: Δ(0) = Δ(4) = 3 (both activate ≥ 2 others
        // deterministically), Δ(3) = 1.2 < (1−1/e)(1−ε)·3 ≈ 1.33. TRIM must
        // return one of the truncated optima and never the trap.
        let g = trap_graph();
        let params = TrimParams::with_eps(0.3);
        for seed in 0..20u64 {
            let residual = ResidualState::new(g.n());
            let mut scratch = TrimScratch::new(g.n());
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = trim(&g, Model::IC, &residual, 3, &params, &mut scratch, &mut rng).unwrap();
            assert_ne!(out.node, 3, "seed {seed}: TRIM fell into the vanilla trap");
            assert!(
                out.node == 0 || out.node == 4,
                "seed {seed}: picked {} which is not a truncated optimum",
                out.node
            );
        }
    }

    #[test]
    fn figure2_selection_is_within_guarantee() {
        // On the Figure 2 example the mRR estimator may legitimately return
        // v1 (E[Γ̃(v1)] = 1.75 ≥ E[Γ̃(v2)] = 5/3 — both within Theorem 3.3's
        // band). The guarantee says Δ(v*) ≥ (1−1/e)(1−ε)·Δ(v◦): check it.
        let g = figure2();
        let eps = 0.3;
        let params = TrimParams::with_eps(eps);
        let exact = [1.75, 2.0, 2.0, 1.0]; // E[Γ(v | ∅)] at η = 2
        for seed in 0..30u64 {
            let residual = ResidualState::new(4);
            let mut scratch = TrimScratch::new(4);
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = trim(&g, Model::IC, &residual, 2, &params, &mut scratch, &mut rng).unwrap();
            let guarantee = (1.0 - 1.0 / std::f64::consts::E) * (1.0 - eps) * 2.0;
            assert!(
                exact[out.node as usize] >= guarantee,
                "seed {seed}: Δ({}) = {} below guarantee {guarantee}",
                out.node,
                exact[out.node as usize]
            );
        }
    }

    #[test]
    fn certificate_meets_target_without_cap() {
        let g = figure2();
        let params = TrimParams::with_eps(0.5);
        let residual = ResidualState::new(4);
        let mut scratch = TrimScratch::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = trim(&g, Model::IC, &residual, 2, &params, &mut scratch, &mut rng).unwrap();
        let eps_hat = 99.0 * 0.5 / 99.5;
        assert!(
            out.certificate >= 1.0 - eps_hat || out.sets_generated >= 1,
            "certificate {} too weak",
            out.certificate
        );
        assert!(out.est_truncated_spread > 0.0);
        assert!(out.est_truncated_spread <= 2.0 + 1e-9);
    }

    #[test]
    fn estimate_close_to_exact_truncated_spread() {
        let g = figure2();
        let params = TrimParams::with_eps(0.1);
        let residual = ResidualState::new(4);
        let mut scratch = TrimScratch::new(4);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = trim(&g, Model::IC, &residual, 2, &params, &mut scratch, &mut rng).unwrap();
        // E[Γ̃(v2)] ∈ [(1−1/e)·2, 2]; the empirical estimate must land near
        // that interval.
        assert!(
            out.est_truncated_spread > 1.1 && out.est_truncated_spread < 2.1,
            "estimate = {}",
            out.est_truncated_spread
        );
    }

    #[test]
    fn respects_residual_mask() {
        // Kill v2 and v3: only v1 (spread {v1}) and v4 remain; either is
        // acceptable but dead nodes must never be returned.
        let g = figure2();
        let params = TrimParams::with_eps(0.5);
        for seed in 0..10u64 {
            let mut residual = ResidualState::new(4);
            residual.kill_all(&[1, 2]);
            let mut scratch = TrimScratch::new(4);
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = trim(&g, Model::IC, &residual, 1, &params, &mut scratch, &mut rng).unwrap();
            assert!(out.node == 0 || out.node == 3);
        }
    }

    #[test]
    fn theta_cap_bounds_work() {
        let g = figure2();
        let mut params = TrimParams::with_eps(0.05);
        params.theta_cap = Some(100);
        let residual = ResidualState::new(4);
        let mut scratch = TrimScratch::new(4);
        let mut rng = SmallRng::seed_from_u64(3);
        let out = trim(&g, Model::IC, &residual, 2, &params, &mut scratch, &mut rng).unwrap();
        assert!(out.sets_generated <= 100);
    }

    #[test]
    fn empty_residual_errors() {
        let g = figure2();
        let params = TrimParams::default();
        let mut residual = ResidualState::new(4);
        residual.kill_all(&[0, 1, 2, 3]);
        let mut scratch = TrimScratch::new(4);
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(matches!(
            trim(&g, Model::IC, &residual, 1, &params, &mut scratch, &mut rng),
            Err(AsmError::EmptyGraph)
        ));
    }

    #[test]
    fn schedule_matches_paper_formulas() {
        let s = schedule(1000, 100, 0.5, 1, 1.0, (1000.0f64).ln(), None);
        let delta = 0.5 / (100.0 * one_minus_inv_e() * 0.5 * 100.0);
        let eps_hat = 99.0 * 0.5 / 99.5;
        let ln6d = (6.0 / delta).ln();
        let expected_theta_max =
            2.0 * 1000.0 * (ln6d.sqrt() + ((1000.0f64).ln() + ln6d).sqrt()).powi(2)
                / (eps_hat * eps_hat);
        assert_eq!(s.theta_max, expected_theta_max.ceil() as usize);
        assert!((s.eps_hat - eps_hat).abs() < 1e-12);
        let expected_theta0 = expected_theta_max * eps_hat * eps_hat / 1000.0;
        assert_eq!(s.theta0, expected_theta0.ceil() as usize);
        assert!(s.a1 > s.a2);
    }

    #[test]
    fn works_under_lt() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 0.9).unwrap();
        b.add_edge_p(1, 2, 0.9).unwrap();
        let g = b.build().unwrap();
        let params = TrimParams::with_eps(0.5);
        let residual = ResidualState::new(3);
        let mut scratch = TrimScratch::new(3);
        let mut rng = SmallRng::seed_from_u64(5);
        let out = trim(&g, Model::LT, &residual, 2, &params, &mut scratch, &mut rng).unwrap();
        assert_eq!(out.node, 0, "source of the chain dominates");
    }
}
