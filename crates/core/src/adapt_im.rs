//! AdaptIM — the adaptive influence-maximization baseline (§6.1).
//!
//! Reimplemented from the paper's description of the modified AdaptIM-1 of
//! Han et al. (PVLDB'18): each round runs an OPIM-C-style non-adaptive IM
//! selection (`k = 1`) on the residual graph using *single-root* RR sets,
//! i.e. it greedily maximizes the expected marginal **vanilla** spread
//! instead of the truncated spread. Consequences reproduced here:
//!
//! * effectiveness is close to ASTI in practice (Figure 4) but carries no
//!   seed-minimization guarantee (§2.4's counterexample);
//! * the per-round sample count is `Θ(n_i ln n_i / (ε² OPT'_i))` versus
//!   TRIM's `Θ(η_i ln n_i / (ε² OPT_i))`; in late rounds
//!   `OPT'_i ≈ OPT_i ≈ η_i ≪ n_i`, which is why AdaptIM runs 10–20× slower
//!   (Figure 5, §6.2).

use crate::error::AsmError;
use crate::report::{AstiReport, RoundReport};
use crate::trim::{schedule, TrimScratch};
use rand::Rng;
use smin_diffusion::{InfluenceOracle, Model, ResidualState};
use smin_graph::cast::u32_of;
use smin_graph::{Graph, NodeId};
use smin_sampling::bounds::{coverage_lower_bound, coverage_upper_bound};

/// Parameters for AdaptIM (ε plus an optional per-round sample cap).
#[derive(Clone, Copy, Debug)]
pub struct AdaptImParams {
    /// Approximation slack for the per-round IM selection.
    pub eps: f64,
    /// Optional hard cap on RR sets per round.
    pub theta_cap: Option<usize>,
}

impl AdaptImParams {
    /// Defaults matching the paper's experiments (ε = 0.5).
    pub fn with_eps(eps: f64) -> Self {
        AdaptImParams {
            eps,
            theta_cap: None,
        }
    }
}

impl Default for AdaptImParams {
    fn default() -> Self {
        AdaptImParams::with_eps(0.5)
    }
}

/// Runs the AdaptIM baseline until `eta` nodes are active.
pub fn adapt_im(
    g: &Graph,
    model: Model,
    eta: usize,
    params: &AdaptImParams,
    oracle: &mut impl InfluenceOracle,
    rng: &mut impl Rng,
) -> Result<AstiReport, AsmError> {
    if !(params.eps > 0.0 && params.eps < 1.0) {
        return Err(AsmError::InvalidEps(params.eps));
    }
    let n = g.n();
    if n == 0 {
        return Err(AsmError::EmptyGraph);
    }
    if eta == 0 || eta > n {
        return Err(AsmError::EtaOutOfRange { eta, n });
    }

    let mut residual = ResidualState::new(n);
    for (u, &active) in oracle.active_mask().iter().enumerate() {
        if active {
            residual.kill(u32_of(u));
        }
    }

    let mut scratch = TrimScratch::new(n);
    let mut report = AstiReport {
        seeds: Vec::new(),
        rounds: Vec::new(),
        total_activated: oracle.num_active(),
        eta,
        reached: oracle.num_active() >= eta,
        total_select_time: std::time::Duration::ZERO,
        total_sets: 0,
    };

    while oracle.num_active() < eta && residual.n_alive() > 0 {
        let eta_i = eta - oracle.num_active();
        let n_alive = residual.n_alive();
        // smin-lint: allow(no-wall-clock) -- reported only, never branched on; selection stays bit-identical
        let started = std::time::Instant::now();
        let (node, sets_generated, est) =
            select_max_spread(g, model, &mut residual, params, &mut scratch, rng);
        let select_time = started.elapsed();

        let newly = oracle.observe(&[node]);
        residual.kill_all(&newly);
        residual.kill(node); // termination guard against degenerate oracles

        report.seeds.push(node);
        report.total_select_time += select_time;
        report.total_sets += sets_generated;
        report.rounds.push(RoundReport {
            seeds: vec![node],
            newly_activated: newly.len(),
            eta_i,
            n_alive,
            sets_generated,
            est_truncated_spread: est,
            select_time,
        });
    }

    report.total_activated = oracle.num_active();
    report.reached = report.total_activated >= eta;
    Ok(report)
}

/// One OPIM-C-style selection of the max expected *vanilla* marginal spread
/// on the residual graph, with single-root RR sets. Returns
/// `(node, |R|, estimated spread)`.
fn select_max_spread(
    g: &Graph,
    model: Model,
    residual: &mut ResidualState,
    params: &AdaptImParams,
    scratch: &mut TrimScratch,
    rng: &mut impl Rng,
) -> (NodeId, usize, f64) {
    let n_i = residual.n_alive();
    // The schedule's η_i slot is the estimator scale; for vanilla RR sets the
    // scale is n_i (E[I(v)] = n_i · Pr[v ∈ R]), hence δ is computed against
    // n_i — this is exactly the OPIM-C (k = 1) parameterization and the
    // source of AdaptIM's extra sampling cost.
    let sched = schedule(
        n_i,
        n_i,
        params.eps,
        1,
        1.0,
        (n_i as f64).ln(),
        params.theta_cap,
    );

    let TrimScratch {
        pool,
        sampler,
        engine,
        ..
    } = scratch;
    pool.reset();

    // A named generic fn (not a `&mut dyn RngCore` closure) keeps the RR
    // sampling loop fully monomorphized over the caller's RNG type.
    #[allow(clippy::too_many_arguments)]
    fn grow_to<R: Rng>(
        target: usize,
        g: &Graph,
        model: Model,
        pool: &mut smin_sampling::SketchPool,
        sampler: &mut smin_sampling::MrrSampler,
        residual: &mut ResidualState,
        root_buf: &mut Vec<NodeId>,
        set_buf: &mut Vec<NodeId>,
        rng: &mut R,
    ) {
        while pool.len() < target {
            // single-root RR set: k = 1 uniform alive root
            residual.sample_k_distinct(1, rng, root_buf);
            sampler.reverse_sample_into(g, model, residual.alive_mask(), root_buf, rng, set_buf);
            pool.add_set(set_buf);
        }
    }

    let mut set_buf: Vec<NodeId> = Vec::new();
    let mut root_buf: Vec<NodeId> = Vec::new();
    grow_to(
        sched.theta0,
        g,
        model,
        pool,
        sampler,
        residual,
        &mut root_buf,
        &mut set_buf,
        rng,
    );

    let mut iterations = 0;
    loop {
        iterations += 1;
        let (node, coverage) = engine
            .argmax(pool)
            .expect("roots are alive; sets are non-empty");
        let lower = coverage_lower_bound(coverage as f64, sched.a1);
        let upper = coverage_upper_bound(coverage as f64, sched.a2);
        let certificate = if upper > 0.0 { lower / upper } else { 0.0 };
        if certificate >= 1.0 - sched.eps_hat
            || iterations >= sched.t_max
            || pool.len() >= sched.theta_max
        {
            let est = n_i as f64 * coverage as f64 / pool.len() as f64;
            return (node, pool.len(), est);
        }
        let target = (pool.len() * 2).min(sched.theta_max);
        grow_to(
            target,
            g,
            model,
            pool,
            sampler,
            residual,
            &mut root_buf,
            &mut set_buf,
            rng,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::{Realization, RealizationOracle};
    use smin_graph::GraphBuilder;

    /// Figure 2 graph: AdaptIM must fall into the vanilla-spread trap and
    /// pick v1 first (E[I(v1)] = 2.75 beats 2.0), unlike TRIM.
    fn figure2() -> smin_graph::Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.5).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn picks_vanilla_optimum_first() {
        let g = figure2();
        let params = AdaptImParams::with_eps(0.2);
        let mut firsts = [0usize; 4];
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let report = adapt_im(&g, Model::IC, 2, &params, &mut oracle, &mut rng).unwrap();
            firsts[report.seeds[0] as usize] += 1;
            assert!(report.reached);
        }
        assert!(
            firsts[0] >= 18,
            "AdaptIM should chase E[I(v1)] = 2.75: {firsts:?}"
        );
    }

    #[test]
    fn reaches_threshold_adaptively() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs = smin_graph::generators::erdos_renyi(50, 120, &mut rng);
        let g = smin_graph::generators::assemble(
            50,
            &pairs,
            true,
            smin_graph::WeightModel::WeightedCascade,
            &mut rng,
        )
        .unwrap();
        let params = AdaptImParams::with_eps(0.5);
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let phi = Realization::sample(&g, Model::IC, &mut rng);
            let mut oracle = RealizationOracle::new(&g, phi);
            let report = adapt_im(&g, Model::IC, 25, &params, &mut oracle, &mut rng).unwrap();
            assert!(report.reached);
            assert!(report.total_activated >= 25);
        }
    }

    #[test]
    fn uses_more_samples_than_trim_for_small_eta() {
        // Late-round behavior: with η_i ≪ n_i TRIM needs far fewer sets.
        let mut rng = SmallRng::seed_from_u64(4);
        let pairs = smin_graph::generators::chung_lu_directed(400, 1600, 2.1, &mut rng);
        let g = smin_graph::generators::assemble(
            400,
            &pairs,
            true,
            smin_graph::WeightModel::WeightedCascade,
            &mut rng,
        )
        .unwrap();
        let eta = 8; // small relative to n = 400
        let mut rng = SmallRng::seed_from_u64(5);
        let phi = Realization::sample(&g, Model::IC, &mut rng);

        let mut o1 = RealizationOracle::new(&g, phi.clone());
        let trim_report = crate::asti(
            &g,
            Model::IC,
            eta,
            &crate::AstiParams::with_eps(0.5),
            &mut o1,
            &mut rng,
        )
        .unwrap();
        let mut o2 = RealizationOracle::new(&g, phi);
        let adapt_report = adapt_im(
            &g,
            Model::IC,
            eta,
            &AdaptImParams::with_eps(0.5),
            &mut o2,
            &mut rng,
        )
        .unwrap();
        assert!(
            adapt_report.total_sets > trim_report.total_sets,
            "AdaptIM sets = {}, ASTI sets = {}",
            adapt_report.total_sets,
            trim_report.total_sets
        );
    }

    #[test]
    fn parameter_validation() {
        let g = figure2();
        let mut rng = SmallRng::seed_from_u64(6);
        let phi = Realization::sample(&g, Model::IC, &mut rng);
        let mut oracle = RealizationOracle::new(&g, phi);
        assert!(matches!(
            adapt_im(
                &g,
                Model::IC,
                2,
                &AdaptImParams::with_eps(0.0),
                &mut oracle,
                &mut rng
            ),
            Err(AsmError::InvalidEps(_))
        ));
        assert!(matches!(
            adapt_im(
                &g,
                Model::IC,
                99,
                &AdaptImParams::default(),
                &mut oracle,
                &mut rng
            ),
            Err(AsmError::EtaOutOfRange { .. })
        ));
    }
}
