//! Plain non-adaptive greedy seed minimization — the bi-criteria baseline
//! family of Goyal et al. (ref.\[19\], §5 related work).
//!
//! Greedily grows a seed set over single-root RR sets until the *point
//! estimate* of `E[I(S)]` reaches `(1 − slack)·η`. Unlike ATEUC there is no
//! upper/lower-candidate machinery: this is the simplest sensible
//! non-adaptive algorithm, included as the reference point ATEUC improves
//! on, and as a fast heuristic when no certification is needed (the
//! bi-criteria guarantee is on the estimate, not a confidence bound).

use crate::error::AsmError;
use rand::Rng;
use smin_diffusion::{Model, ResidualState};
use smin_graph::{Graph, NodeId};
use smin_sampling::{CoverageEngine, MrrSampler, SketchPool};

/// Parameters for the bi-criteria greedy.
#[derive(Clone, Copy, Debug)]
pub struct NonAdaptiveParams {
    /// Accept an estimated spread of `(1 − slack)·η` (bi-criteria slack).
    pub slack: f64,
    /// Number of RR sets (fixed, no doubling; callers pick via
    /// [`suggested_theta`]).
    pub theta: usize,
}

impl Default for NonAdaptiveParams {
    fn default() -> Self {
        NonAdaptiveParams {
            slack: 0.05,
            theta: 16_384,
        }
    }
}

/// A rough `θ` recommendation: `c·n·ln(n)/η` single-root RR sets keep the
/// relative error of spread estimates near the η scale bounded.
pub fn suggested_theta(n: usize, eta: usize, c: f64) -> usize {
    let n_f = n.max(2) as f64;
    ((c * n_f * n_f.ln() / eta.max(1) as f64).ceil() as usize).clamp(1_024, 4_000_000)
}

/// Result of the bi-criteria greedy.
#[derive(Clone, Debug)]
pub struct NonAdaptiveOutput {
    /// Selected seeds in greedy order.
    pub seeds: Vec<NodeId>,
    /// Estimated `E[I(S)]` at termination (`n·Λ(S)/θ`).
    pub est_spread: f64,
    /// Whether the `(1 − slack)·η` target was met before coverage ran out.
    pub target_met: bool,
}

/// Greedy non-adaptive seed minimization: smallest greedy set whose
/// estimated spread reaches `(1 − slack)·η`.
pub fn nonadaptive_greedy(
    g: &Graph,
    model: Model,
    eta: usize,
    params: &NonAdaptiveParams,
    rng: &mut impl Rng,
) -> Result<NonAdaptiveOutput, AsmError> {
    let n = g.n();
    if n == 0 {
        return Err(AsmError::EmptyGraph);
    }
    if eta == 0 || eta > n {
        return Err(AsmError::EtaOutOfRange { eta, n });
    }
    if !(params.slack >= 0.0 && params.slack < 1.0) {
        return Err(AsmError::InvalidEps(params.slack));
    }

    let mut residual = ResidualState::new(n);
    let mut sampler = MrrSampler::new(n);
    let mut pool = SketchPool::new(n);
    let mut set_buf = Vec::new();
    let mut root_buf = Vec::new();
    for _ in 0..params.theta.max(1) {
        residual.sample_k_distinct(1, rng, &mut root_buf);
        sampler.reverse_sample_into(
            g,
            model,
            residual.alive_mask(),
            &root_buf,
            rng,
            &mut set_buf,
        );
        pool.add_set(&set_buf);
    }

    let theta = pool.len() as f64;
    let target_cov = (1.0 - params.slack) * eta as f64 * theta / n as f64;

    // Point-estimate stopping rule = identity bound on the covered count.
    let (cover, target_met) = CoverageEngine::new().select_until(&pool, target_cov, |c| c);

    Ok(NonAdaptiveOutput {
        seeds: cover.seeds,
        est_spread: n as f64 * cover.covered as f64 / theta,
        target_met,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::{generators, GraphBuilder, WeightModel};

    #[test]
    fn star_needs_one_seed() {
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6u32 {
            b.add_edge_p(0, leaf, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let out =
            nonadaptive_greedy(&g, Model::IC, 5, &NonAdaptiveParams::default(), &mut rng).unwrap();
        assert!(out.target_met);
        assert_eq!(out.seeds, vec![0]);
        assert!(out.est_spread >= 5.0);
    }

    #[test]
    fn estimated_spread_tracks_monte_carlo() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pairs = generators::chung_lu_directed(400, 1600, 2.1, &mut rng);
        let g = generators::assemble(400, &pairs, true, WeightModel::WeightedCascade, &mut rng)
            .unwrap();
        let eta = 80;
        let out = nonadaptive_greedy(&g, Model::IC, eta, &NonAdaptiveParams::default(), &mut rng)
            .unwrap();
        assert!(out.target_met);
        let mc =
            smin_diffusion::spread::mc_expected_spread(&g, Model::IC, &out.seeds, 4_000, &mut rng);
        assert!(
            (mc - out.est_spread).abs() / out.est_spread < 0.25,
            "estimate {} vs MC {mc}",
            out.est_spread
        );
        assert!(mc >= 0.7 * eta as f64);
    }

    #[test]
    fn uses_fewer_or_equal_seeds_with_more_slack() {
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs = generators::chung_lu_directed(300, 1200, 2.1, &mut rng);
        let g = generators::assemble(300, &pairs, true, WeightModel::WeightedCascade, &mut rng)
            .unwrap();
        let tight = nonadaptive_greedy(
            &g,
            Model::IC,
            90,
            &NonAdaptiveParams {
                slack: 0.0,
                theta: 8_192,
            },
            &mut SmallRng::seed_from_u64(7),
        )
        .unwrap();
        let loose = nonadaptive_greedy(
            &g,
            Model::IC,
            90,
            &NonAdaptiveParams {
                slack: 0.3,
                theta: 8_192,
            },
            &mut SmallRng::seed_from_u64(7),
        )
        .unwrap();
        assert!(loose.seeds.len() <= tight.seeds.len());
    }

    #[test]
    fn isolated_graph_exhausts_without_target() {
        // 4 isolated nodes, η = 4, slack 0: each RR set is a singleton so
        // the greedy covers everything with 4 seeds; estimate = n·1 = 4 = η.
        let g = GraphBuilder::new(4).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let out = nonadaptive_greedy(
            &g,
            Model::IC,
            4,
            &NonAdaptiveParams {
                slack: 0.0,
                theta: 4_096,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.seeds.len(), 4);
        assert!(out.target_met);
    }

    #[test]
    fn suggested_theta_scales() {
        assert!(suggested_theta(10_000, 100, 10.0) > suggested_theta(10_000, 1_000, 10.0));
        assert!(suggested_theta(2, 1, 1.0) >= 1_024);
        assert!(suggested_theta(100_000_000, 1, 100.0) <= 4_000_000);
    }

    #[test]
    fn validation() {
        let g = GraphBuilder::new(3).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(
            nonadaptive_greedy(&g, Model::IC, 0, &NonAdaptiveParams::default(), &mut rng).is_err()
        );
        assert!(nonadaptive_greedy(
            &g,
            Model::IC,
            2,
            &NonAdaptiveParams {
                slack: 1.5,
                theta: 64
            },
            &mut rng
        )
        .is_err());
    }
}
