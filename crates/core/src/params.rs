//! Tunable parameters for TRIM / TRIM-B / ASTI.

use crate::error::AsmError;
use smin_sampling::RootCountDist;

/// Parameters of one TRIM (or TRIM-B) invocation.
#[derive(Clone, Copy, Debug)]
pub struct TrimParams {
    /// Approximation slack `ε ∈ (0, 1)`; the paper's experiments use 0.5.
    pub eps: f64,
    /// Root-count distribution for mRR sets (the randomized rounding of
    /// §3.3 by default; fixed variants exist for the ablation bench).
    pub root_dist: RootCountDist,
    /// Optional hard cap on the number of mRR sets per round. `None` uses
    /// the theoretical `θ_max`; tests and interactive examples may cap to
    /// bound worst-case latency (forfeiting the formal guarantee for that
    /// round).
    pub theta_cap: Option<usize>,
    /// Worker threads for sketch generation. `None` resolves via the
    /// `SMIN_THREADS` environment variable, then the machine's available
    /// parallelism. Sketch pools — and therefore seed selections — are
    /// bit-identical for every thread count (per-set counter-derived RNG
    /// streams), so this is purely a performance knob.
    pub threads: Option<usize>,
}

impl TrimParams {
    /// Paper defaults with the given `ε`.
    pub fn with_eps(eps: f64) -> Self {
        TrimParams {
            eps,
            root_dist: RootCountDist::Randomized,
            theta_cap: None,
            threads: None,
        }
    }

    /// Sets an explicit sketch-generation thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Validates `ε`.
    pub fn validate(&self) -> Result<(), AsmError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(AsmError::InvalidEps(self.eps));
        }
        Ok(())
    }
}

impl Default for TrimParams {
    fn default() -> Self {
        TrimParams::with_eps(0.5)
    }
}

/// Parameters of an ASTI run.
#[derive(Clone, Copy, Debug)]
pub struct AstiParams {
    /// Per-round TRIM parameters.
    pub trim: TrimParams,
    /// Seeds per round: 1 instantiates TRIM, `b > 1` instantiates TRIM-B
    /// (ASTI-b in the experiments).
    pub batch: usize,
}

impl AstiParams {
    /// Sequential ASTI (batch 1) with the given `ε`.
    pub fn with_eps(eps: f64) -> Self {
        AstiParams {
            trim: TrimParams::with_eps(eps),
            batch: 1,
        }
    }

    /// Batched ASTI-b.
    pub fn batched(eps: f64, batch: usize) -> Self {
        AstiParams {
            trim: TrimParams::with_eps(eps),
            batch,
        }
    }

    /// Validates all fields.
    pub fn validate(&self) -> Result<(), AsmError> {
        self.trim.validate()?;
        if self.batch == 0 {
            return Err(AsmError::InvalidBatch(0));
        }
        Ok(())
    }
}

impl Default for AstiParams {
    fn default() -> Self {
        AstiParams::with_eps(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = AstiParams::default();
        assert_eq!(p.trim.eps, 0.5);
        assert_eq!(p.batch, 1);
        assert_eq!(p.trim.root_dist, RootCountDist::Randomized);
        assert_eq!(
            p.trim.threads, None,
            "thread count auto-resolves by default"
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn with_threads_sets_explicit_count() {
        let p = TrimParams::with_eps(0.5).with_threads(4);
        assert_eq!(p.threads, Some(4));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_eps() {
        assert!(TrimParams::with_eps(0.0).validate().is_err());
        assert!(TrimParams::with_eps(1.0).validate().is_err());
        assert!(TrimParams::with_eps(-0.5).validate().is_err());
        assert!(TrimParams::with_eps(f64::NAN).validate().is_err());
        assert!(TrimParams::with_eps(0.99).validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_batch() {
        let p = AstiParams {
            batch: 0,
            ..Default::default()
        };
        assert!(matches!(p.validate(), Err(AsmError::InvalidBatch(0))));
    }
}
