//! `asm` — command-line front end for the seedmin stack.
//!
//! ```text
//! asm generate --kind chung-lu --n 10000 --m 50000 --out g.bin
//! asm stats g.bin
//! asm run --graph g.bin --algo asti --eta-frac 0.05 --model ic --worlds 5
//! asm convert g.txt g.bin
//! ```

#![forbid(unsafe_code)]

mod bench_check;
mod commands;
mod flags;

use std::process::ExitCode;

const USAGE: &str = "\
asm — adaptive seed minimization toolkit

USAGE:
  asm generate --kind <chung-lu|ba|er|ws> --n <N> [--m <M>] [--gamma F]
               [--weights <wc|uniform:P|tri>] [--seed N] --out <FILE>
  asm stats <GRAPH>
  asm run --graph <GRAPH> --algo <asti|adaptim|ateuc> [--batch B]
          (--eta N | --eta-frac F) [--model ic|lt] [--eps F] [--seed N]
          [--worlds K] [--threads T] [--audit FILE]
  asm serve [--addr HOST:PORT] [--graphs-dir DIR] [--state-dir DIR]
            [--threads T] [--cache N] [--transport auto|epoll|threaded]
            [--max-pending N]
  asm lint [--root DIR] [--format human|json] [--baseline FILE]
           [--no-baseline] [--write-baseline]
  asm bench-check --baseline FILE --current FILE [--tol F]
  asm pack <GRAPH> <OUT.smg>        # encode as a binary CSR snapshot
  asm inspect <FILE.smg>            # dump a snapshot header
  asm convert <IN> <OUT>            # re-encode by output extension

GRAPH inputs are content-sniffed: '.smg' CSR snapshots, the legacy binary
dump, and text edge lists (`u v [p]` per line, '#'/'%' comments, SNAP
`# Nodes: N Edges: M` size headers honored) all load regardless of
extension. Outputs choose their format by extension: '.smg' snapshot,
'.bin' legacy binary, anything else text.

pack writes the deterministic `.smg` snapshot (64-byte header + checksummed
offset/target/probability columns): the same graph always produces the same
bytes, and loading is read_exact + validation — orders of magnitude faster
than re-parsing text. inspect prints the header (version, n, m, per-section
CRCs, content checksum) without decoding the columns.

--threads controls the sketch-generation worker pool for asti (default:
SMIN_THREADS env var, then all available cores). Seed selections are
bit-identical for every thread count.

--audit FILE records the adaptive select->observe history (one 'S ... | A
...' line per round; world K > 1 goes to FILE.wK). The file replays through
ReplayOracle to reproduce the campaign without the original world.

serve starts the long-running seed-selection service: graphs register once
(POST /v1/graphs, loaded from --graphs-dir or generated) and stay cached in
memory with warm sketch-pool sessions; POST /v1/select runs TRIM / TRIM-B /
ASTI with per-request eta, model, eps, batch, seed, and POST
/v1/select-batch runs many items against one graph resolution and one warm
session. Same request body => byte-identical response, for every thread
count and both transports. --transport picks the service core: 'epoll' is
the readiness event loop (one poll thread multiplexing every connection,
--threads dispatch workers), 'threaded' the portable worker-per-connection
fallback, 'auto' (default) probes the kernel. --max-pending is the
admission high-water mark: queued + running requests beyond it get a
deterministic 429 (default 1024). Requests may carry X-Deadline-Millis; a
request whose budget expires before dispatch gets a structured 504.
--threads sets the worker count (default SMIN_THREADS, then all cores);
--cache bounds the memoized-response count (default 1024, 0 disables). --state-dir
makes the registry durable: every registered graph is snapshotted to
DIR/graphs/<id>.smg and indexed in DIR/manifest.json, and a restarted
server reloads all of them — same ids, same checksum-derived tokens — with
no re-registration.

bench-check gates the recorded performance trajectory: every \"median\"
leaf in the committed --baseline artifact (BENCH_coverage.json,
BENCH_select.json, BENCH_graph_load.json, BENCH_svc_load.json) must exist
at the same path in the --current run and stay within --tol fractional
headroom (default 0.25 = +25%). Missing medians fail structurally;
improvements and extra current-only metrics never fail.

lint runs the workspace determinism/robustness static analysis (smin-analyze)
over every crate: no HashMap iteration or wall-clock reads in deterministic
crates, no ambient RNG, no panics in the service request path, SAFETY
comments on unsafe, checked index narrowing. Findings listed in
<root>/lint-baseline.json are grandfathered; the exit code is non-zero only
for NEW findings. Suppress a justified finding in code with
`// smin-lint: allow(<rule>) -- <why>`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(rest),
        "stats" => commands::stats(rest),
        "run" => commands::run(rest),
        "serve" => commands::serve(rest),
        "lint" => commands::lint(rest),
        "bench-check" => bench_check::bench_check(rest),
        "pack" => commands::pack(rest),
        "inspect" => commands::inspect(rest),
        "convert" => commands::convert(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
