//! Tiny flag parser shared by the subcommands.

use std::collections::HashMap;

/// Parsed `--key value` flags plus positional arguments.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    pub positional: Vec<String>,
}

impl Flags {
    /// Parses `args`; every `--key` consumes the following token as value.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut out = Flags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                if out.values.insert(key.to_string(), v.clone()).is_some() {
                    return Err(format!("flag --{key} given twice"));
                }
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Optional parsed value.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("bad value for --{key}: {e}")),
        }
    }

    /// Parsed value with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.get_parsed(key)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Flags, String> {
        Flags::parse(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_and_positionals() {
        let f = parse(&["--n", "100", "input.txt", "--seed", "7"]).unwrap();
        assert_eq!(f.get("n"), Some("100"));
        assert_eq!(f.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(f.positional, vec!["input.txt"]);
        assert_eq!(f.get_or::<usize>("missing", 5).unwrap(), 5);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&["--n"]).is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(parse(&["--n", "1", "--n", "2"]).is_err());
    }

    #[test]
    fn bad_parse_reports_flag() {
        let f = parse(&["--n", "xyz"]).unwrap();
        let err = f.get_parsed::<usize>("n").unwrap_err();
        assert!(err.contains("--n"));
    }

    #[test]
    fn require_reports_missing() {
        let f = parse(&[]).unwrap();
        assert!(f.require("out").unwrap_err().contains("--out"));
    }
}
