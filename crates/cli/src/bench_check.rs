//! `asm bench-check` — the perf-trajectory regression gate.
//!
//! Compares a current benchmark artifact (`perf`, `graph_load`, `svc_load`
//! output) against a committed baseline: every `"median"` leaf present in
//! the baseline must exist at the same path in the current run and must not
//! exceed `baseline · (1 + tol)`. Structure is matched positionally, so
//! both runs must sweep the same pool sizes — the harnesses pin their
//! sweeps for exactly this reason. Improvements are reported but never
//! fail; other leaves (`min`, `max`, counters) are informational only.

use serde_json::Value;

/// One `"median"` leaf: dotted path (array elements labeled by their
/// `"sets"` field when present) and value in the baseline / current run.
struct MedianPair {
    path: String,
    baseline: f64,
    current: Option<f64>,
}

/// Walks `baseline` and `current` in lockstep, collecting every numeric
/// `"median"` leaf of the baseline together with the value at the same
/// path in the current run (`None` when the path is missing or non-numeric
/// there — a structural regression).
fn collect(path: &str, baseline: &Value, current: Option<&Value>, out: &mut Vec<MedianPair>) {
    match baseline {
        Value::Object(fields) => {
            for (key, bval) in fields {
                let cval = match current {
                    Some(Value::Object(cfields)) => {
                        cfields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                    }
                    _ => None,
                };
                if key == "median" {
                    if let Value::Number(b) = bval {
                        out.push(MedianPair {
                            path: path.to_string(),
                            baseline: *b,
                            current: match cval {
                                Some(Value::Number(c)) => Some(*c),
                                _ => None,
                            },
                        });
                        continue;
                    }
                }
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                collect(&child, bval, cval, out);
            }
        }
        Value::Array(items) => {
            for (i, bval) in items.iter().enumerate() {
                let label = match bval {
                    Value::Object(fields) => {
                        fields
                            .iter()
                            .find(|(k, _)| k == "sets")
                            .and_then(|(_, v)| match v {
                                Value::Number(n) => Some(format!("{path}[sets={n}]")),
                                _ => None,
                            })
                    }
                    _ => None,
                };
                let child = label.unwrap_or_else(|| format!("{path}[{i}]"));
                let cval = match current {
                    Some(Value::Array(citems)) => citems.get(i),
                    _ => None,
                };
                collect(&child, bval, cval, out);
            }
        }
        _ => {}
    }
}

/// Outcome of one baseline/current comparison.
pub struct CheckReport {
    /// Human-readable per-median lines.
    pub lines: Vec<String>,
    /// Regressions: paths whose current median exceeds tolerance (or is
    /// missing entirely).
    pub failures: Vec<String>,
    /// Medians compared.
    pub checked: usize,
}

/// Compares every baseline `"median"` leaf against the current run.
/// `tol` is fractional headroom: `0.25` fails only when a current median
/// exceeds its baseline by more than 25 %.
pub fn compare(baseline: &Value, current: &Value, tol: f64) -> CheckReport {
    let mut pairs = Vec::new();
    collect("", baseline, Some(current), &mut pairs);
    let mut report = CheckReport {
        lines: Vec::new(),
        failures: Vec::new(),
        checked: pairs.len(),
    };
    for p in &pairs {
        match p.current {
            None => {
                report
                    .lines
                    .push(format!("  {}: {:.3} -> MISSING", p.path, p.baseline));
                report
                    .failures
                    .push(format!("{}: missing from current run", p.path));
            }
            Some(c) => {
                // A zero baseline carries no resolvable signal; only a
                // strictly positive current median can regress against it.
                let limit = p.baseline * (1.0 + tol);
                let ratio = if p.baseline > 0.0 {
                    c / p.baseline
                } else {
                    1.0
                };
                let ok = c <= limit || (p.baseline == 0.0 && c == 0.0);
                report.lines.push(format!(
                    "  {}: {:.3} -> {:.3}  (x{:.2}{})",
                    p.path,
                    p.baseline,
                    c,
                    ratio,
                    if ok { "" } else { "  REGRESSION" },
                ));
                if !ok {
                    report.failures.push(format!(
                        "{}: {:.3} -> {:.3} exceeds tolerance {:.0}%",
                        p.path,
                        p.baseline,
                        c,
                        tol * 100.0
                    ));
                }
            }
        }
    }
    report
}

/// `asm bench-check --baseline FILE --current FILE [--tol F]`
pub fn bench_check(args: &[String]) -> Result<(), String> {
    let f = crate::flags::Flags::parse(args)?;
    let baseline_path = f.require("baseline")?;
    let current_path = f.require("current")?;
    let tol: f64 = f.get_or("tol", 0.25)?;
    if !(0.0..=100.0).contains(&tol) {
        return Err(format!("--tol {tol}: expected a fraction >= 0"));
    }

    let read = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e:?}"))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;

    let report = compare(&baseline, &current, tol);
    println!(
        "bench-check {baseline_path} vs {current_path} (tol {:.0}%)",
        tol * 100.0
    );
    for line in &report.lines {
        println!("{line}");
    }
    if report.checked == 0 {
        return Err(format!("{baseline_path}: no \"median\" leaves to compare"));
    }
    if report.failures.is_empty() {
        println!("ok: {} median(s) within tolerance", report.checked);
        Ok(())
    } else {
        Err(format!(
            "{} of {} median(s) regressed:\n  {}",
            report.failures.len(),
            report.checked,
            report.failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        serde_json::from_str(s).expect("valid test JSON")
    }

    #[test]
    fn within_tolerance_passes() {
        let base = v(r#"{"pools": [{"sets": 1024, "t": {"median": 100.0, "min": 90.0}}]}"#);
        let cur = v(r#"{"pools": [{"sets": 1024, "t": {"median": 110.0, "min": 80.0}}]}"#);
        let r = compare(&base, &cur, 0.25);
        assert_eq!(r.checked, 1);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = v(r#"{"t": {"median": 100.0}}"#);
        let cur = v(r#"{"t": {"median": 126.0}}"#);
        let r = compare(&base, &cur, 0.25);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("t:"), "{}", r.failures[0]);
    }

    #[test]
    fn missing_median_fails_structurally() {
        let base = v(r#"{"pools": [{"a": {"median": 1.0}}, {"b": {"median": 2.0}}]}"#);
        let cur = v(r#"{"pools": [{"a": {"median": 1.0}}]}"#);
        let r = compare(&base, &cur, 0.25);
        assert_eq!(r.checked, 2);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("missing"));
    }

    #[test]
    fn extra_current_medians_are_ignored() {
        // Only the baseline's leaves gate: a current run may add metrics.
        let base = v(r#"{"a": {"median": 1.0}}"#);
        let cur = v(r#"{"a": {"median": 1.0}, "b": {"median": 999.0}}"#);
        let r = compare(&base, &cur, 0.0);
        assert_eq!(r.checked, 1);
        assert!(r.failures.is_empty());
    }

    #[test]
    fn pool_rows_labeled_by_sets() {
        let base = v(r#"{"pools": [{"sets": 4096, "t": {"median": 1.0}}]}"#);
        let cur = v(r#"{"pools": [{"sets": 4096, "t": {"median": 5.0}}]}"#);
        let r = compare(&base, &cur, 0.25);
        assert!(
            r.failures[0].contains("pools[sets=4096].t"),
            "{}",
            r.failures[0]
        );
    }

    #[test]
    fn improvements_never_fail_at_zero_tol() {
        let base = v(r#"{"t": {"median": 100.0}}"#);
        let cur = v(r#"{"t": {"median": 50.0}}"#);
        let r = compare(&base, &cur, 0.0);
        assert!(r.failures.is_empty());
    }
}
