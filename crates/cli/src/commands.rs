//! Subcommand implementations.

use crate::flags::Flags;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_core::{adapt_im, asti, ateuc, AdaptImParams, AstiParams, AteucParams};
use smin_diffusion::{InfluenceOracle, LoggingOracle, Model, Realization, RealizationOracle};
use smin_graph::components::weakly_connected_components;
use smin_graph::degree::{degree_distribution, log_log_slope, DegreeKind};
use smin_graph::generators::{
    assemble, barabasi_albert, chung_lu_directed, erdos_renyi, watts_strogatz,
};
use smin_graph::{io, store, Graph, WeightModel};

/// Loads a graph of any supported format. Dispatch is by content sniffing
/// (`io::load_auto`), so `.smg` snapshots, legacy binaries, and text edge
/// lists all load regardless of what the file is named.
fn load_graph(path: &str) -> Result<Graph, String> {
    io::load_auto(path, 1.0).map_err(|e| format!("{path}: {e}"))
}

/// Saves a graph by extension: `.smg` = CSR snapshot, `.bin` = legacy
/// binary, anything else = text edge list.
fn save_graph(g: &Graph, path: &str) -> Result<(), String> {
    if path.ends_with(".smg") {
        store::write_smg_path(g, path).map_err(|e| format!("{path}: {e}"))
    } else if path.ends_with(".bin") {
        io::write_binary_path(g, path).map_err(|e| format!("{path}: {e}"))
    } else {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        io::write_edge_list(g, std::io::BufWriter::new(file)).map_err(|e| format!("{path}: {e}"))
    }
}

fn parse_weights(spec: &str) -> Result<WeightModel, String> {
    match spec {
        "wc" => Ok(WeightModel::WeightedCascade),
        "tri" => Ok(WeightModel::Trivalency),
        other => {
            if let Some(p) = other.strip_prefix("uniform:") {
                let p: f64 = p
                    .parse()
                    .map_err(|e| format!("bad uniform probability: {e}"))?;
                Ok(WeightModel::Uniform(p))
            } else {
                Err(format!(
                    "unknown weight model '{other}' (wc | uniform:P | tri)"
                ))
            }
        }
    }
}

/// `asm generate`
pub fn generate(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let kind = f.require("kind")?;
    let n: usize = f.get_parsed("n")?.ok_or("missing required --n")?;
    let seed: u64 = f.get_or("seed", 42)?;
    let out = f.require("out")?;
    let weights = parse_weights(f.get("weights").unwrap_or("wc"))?;
    let mut rng = SmallRng::seed_from_u64(seed);

    let (pairs, directed) = match kind {
        "chung-lu" => {
            let m: usize = f.get_or("m", n * 5)?;
            let gamma: f64 = f.get_or("gamma", 2.1)?;
            (chung_lu_directed(n, m, gamma, &mut rng), true)
        }
        "er" => {
            let m: usize = f.get_or("m", n * 5)?;
            (erdos_renyi(n, m, &mut rng), true)
        }
        "ba" => {
            let attach: usize = f.get_or("attach", 4)?;
            (barabasi_albert(n, attach, &mut rng), false)
        }
        "ws" => {
            let k: usize = f.get_or("k", 6)?;
            let beta: f64 = f.get_or("beta", 0.1)?;
            (watts_strogatz(n, k, beta, &mut rng), false)
        }
        other => {
            return Err(format!(
                "unknown generator '{other}' (chung-lu | ba | er | ws)"
            ))
        }
    };
    let g = assemble(n, &pairs, directed, weights, &mut rng).map_err(|e| e.to_string())?;
    save_graph(&g, out)?;
    println!("wrote {out}: {} nodes, {} directed edges", g.n(), g.m());
    Ok(())
}

/// `asm stats`
pub fn stats(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let path = f.positional.first().ok_or("usage: asm stats <GRAPH>")?;
    let g = load_graph(path)?;
    let wcc = weakly_connected_components(&g);
    let dist = degree_distribution(&g, DegreeKind::Total);
    let max_deg = dist.last().map(|&(d, _)| d).unwrap_or(0);
    println!("nodes:            {}", g.n());
    println!("directed edges:   {}", g.m());
    println!(
        "avg out-degree:   {:.3}",
        g.m() as f64 / g.n().max(1) as f64
    );
    println!("max total degree: {max_deg}");
    println!("wcc count:        {}", wcc.count);
    println!(
        "largest wcc:      {} ({:.1}% of nodes)",
        wcc.largest,
        100.0 * wcc.largest as f64 / g.n().max(1) as f64
    );
    if let Some(slope) = log_log_slope(&dist) {
        println!("log-log slope:    {slope:.2}");
    }
    println!("valid LT:         {}", g.is_valid_lt());
    println!(
        "memory:           {:.1} MiB",
        g.memory_bytes() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// `asm run`
pub fn run(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let g = load_graph(f.require("graph")?)?;
    let algo = f.require("algo")?;
    let model: Model = f
        .get("model")
        .unwrap_or("ic")
        .parse()
        .map_err(|e: String| e)?;
    let eps: f64 = f.get_or("eps", 0.5)?;
    let seed: u64 = f.get_or("seed", 42)?;
    let worlds: usize = f.get_or("worlds", 1)?;
    // Sketch-generation worker threads; selections are identical for every
    // value, so this only changes wall-clock time. Default: SMIN_THREADS
    // env var, then available parallelism.
    let threads: Option<usize> = f.get_parsed("threads")?;
    if threads == Some(0) {
        return Err("--threads must be at least 1".into());
    }
    if threads.is_some() && algo != "asti" {
        return Err(format!(
            "--threads only applies to --algo asti ({algo} runs its own single-threaded sampler)"
        ));
    }
    // Observation audit trail: record every select→observe interaction in
    // diffusion::log's line format. One file per world (`PATH` for world 1,
    // `PATH.wK` for world K > 1), replayable through `ReplayOracle`.
    let audit: Option<&str> = f.get("audit");
    if audit.is_some() && algo == "ateuc" {
        return Err("--audit records adaptive campaigns (asti | adaptim), not ateuc".into());
    }
    let eta = match (
        f.get_parsed::<usize>("eta")?,
        f.get_parsed::<f64>("eta-frac")?,
    ) {
        (Some(e), None) => e,
        (None, Some(frac)) => ((g.n() as f64) * frac).round().max(1.0) as usize,
        (Some(_), Some(_)) => return Err("give --eta or --eta-frac, not both".into()),
        (None, None) => return Err("missing --eta or --eta-frac".into()),
    };
    println!(
        "graph: n = {}, m = {}; target η = {eta}; model {model}; {worlds} world(s)",
        g.n(),
        g.m()
    );

    match algo {
        "asti" | "adaptim" => {
            let batch: usize = f.get_or("batch", 1)?;
            let mut total_seeds = 0usize;
            let mut total_time = 0.0f64;
            for w in 0..worlds {
                let mut world_rng = SmallRng::seed_from_u64(seed.wrapping_add(1000 + w as u64));
                let phi = Realization::sample(&g, model, &mut world_rng);
                let mut oracle = LoggingOracle::new(RealizationOracle::new(&g, phi), g.n());
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(w as u64));
                let started = std::time::Instant::now();
                let report = if algo == "asti" {
                    let mut params = AstiParams::batched(eps, batch);
                    params.trim.threads = threads;
                    asti(&g, model, eta, &params, &mut oracle, &mut rng)
                } else {
                    adapt_im(
                        &g,
                        model,
                        eta,
                        &AdaptImParams::with_eps(eps),
                        &mut oracle,
                        &mut rng,
                    )
                }
                .map_err(|e| e.to_string())?;
                let secs = started.elapsed().as_secs_f64();
                if let Some(path) = audit {
                    let path = if w == 0 {
                        path.to_string()
                    } else {
                        format!("{path}.w{}", w + 1)
                    };
                    std::fs::write(&path, oracle.log().to_text())
                        .map_err(|e| format!("{path}: {e}"))?;
                    println!("audit log -> {path} ({} steps)", oracle.log().steps.len());
                }
                println!(
                    "world {:>2}: {} seeds, {} rounds, spread {}, {:.3}s{}",
                    w + 1,
                    report.num_seeds(),
                    report.num_rounds(),
                    report.total_activated,
                    secs,
                    if report.reached {
                        ""
                    } else {
                        "  [DID NOT REACH η]"
                    }
                );
                total_seeds += report.num_seeds();
                total_time += secs;
            }
            println!(
                "mean: {:.1} seeds, {:.3}s",
                total_seeds as f64 / worlds as f64,
                total_time / worlds as f64
            );
        }
        "ateuc" => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let started = std::time::Instant::now();
            let out = ateuc(&g, model, eta, &AteucParams::default(), &mut rng)
                .map_err(|e| e.to_string())?;
            let secs = started.elapsed().as_secs_f64();
            println!(
                "selected |S| = {} in {:.3}s (certified E[I(S)] ≥ η: {})",
                out.seeds.len(),
                secs,
                out.certified
            );
            // evaluate on sampled worlds
            let mut misses = 0usize;
            for w in 0..worlds {
                let mut world_rng = SmallRng::seed_from_u64(seed.wrapping_add(1000 + w as u64));
                let phi = Realization::sample(&g, model, &mut world_rng);
                let mut oracle = RealizationOracle::new(&g, phi);
                oracle.observe(&out.seeds);
                let spread = oracle.num_active();
                if spread < eta {
                    misses += 1;
                }
                println!(
                    "world {:>2}: spread {spread}{}",
                    w + 1,
                    if spread < eta { "  [MISS]" } else { "" }
                );
            }
            println!("missed η on {misses}/{worlds} worlds");
        }
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (asti | adaptim | ateuc)"
            ))
        }
    }
    Ok(())
}

/// `asm serve` — the long-running seed-selection service (see
/// `smin-service`). Blocks forever; graphs are registered and selections
/// requested over the HTTP API.
pub fn serve(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let addr = f.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let workers: usize = match f.get_parsed("threads")? {
        Some(0) => return Err("--threads must be at least 1".into()),
        Some(t) => t,
        None => smin_sampling::resolve_threads(None),
    };
    let graphs_dir = match f.get("graphs-dir") {
        Some(dir) => {
            let path = std::path::PathBuf::from(dir);
            if !path.is_dir() {
                return Err(format!("--graphs-dir {dir}: not a directory"));
            }
            Some(path)
        }
        None => None,
    };
    let cache_capacity: usize = f.get_or("cache", 1024)?;
    // Durable registry root: created on first use, restored on every boot.
    let state_dir = f.get("state-dir").map(std::path::PathBuf::from);
    let transport = smin_service::Transport::parse(f.get("transport").unwrap_or("auto"))?;
    let max_pending: usize = f.get_or("max-pending", 1024)?;
    // Structured observability: one JSON line per request, written off the
    // request path by a dedicated log thread.
    let trace_log = f.get("trace-log").map(std::path::PathBuf::from);

    let config = smin_service::ServerConfig {
        addr,
        workers,
        graphs_dir: graphs_dir.clone(),
        state_dir: state_dir.clone(),
        cache_capacity,
        transport,
        max_pending,
        trace_log: trace_log.clone(),
        ..smin_service::ServerConfig::default()
    };
    let server =
        smin_service::Server::bind(&config).map_err(|e| format!("{}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "asm serve: listening on http://{addr} ({workers} workers, transport: {:?}, graphs dir: {}, state dir: {}, cache: {cache_capacity}, max pending: {max_pending}, trace log: {})",
        server.resolved_transport(),
        graphs_dir
            .as_deref()
            .map_or("disabled".to_string(), |p| p.display().to_string()),
        state_dir
            .as_deref()
            .map_or("none".to_string(), |p| p.display().to_string()),
        trace_log
            .as_deref()
            .map_or("off".to_string(), |p| p.display().to_string()),
    );
    println!("endpoints: GET /healthz · GET /metrics · GET/POST /v1/graphs · DELETE /v1/graphs/{{id}} · POST /v1/select · POST /v1/select-batch");
    static NEVER_STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    server.run(&NEVER_STOP).map_err(|e| e.to_string())
}

/// `asm lint` — the workspace determinism/robustness static-analysis pass
/// (see `smin-analyze`). Exit is non-zero exactly when *new* (non-baseline)
/// findings exist, so CI gates on regressions while grandfathered debt is
/// paid down incrementally.
pub fn lint(args: &[String]) -> Result<(), String> {
    // Valueless switches, split off before the `--key value` parser runs.
    let mut no_baseline = false;
    let mut write_baseline = false;
    let rest: Vec<String> = args
        .iter()
        .filter(|a| match a.as_str() {
            "--no-baseline" => {
                no_baseline = true;
                false
            }
            "--write-baseline" => {
                write_baseline = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let f = Flags::parse(&rest)?;
    let root = std::path::PathBuf::from(f.get("root").unwrap_or("."));
    if !root.is_dir() {
        return Err(format!("--root {}: not a directory", root.display()));
    }
    let format = f.get("format").unwrap_or("human");
    if !matches!(format, "human" | "json") {
        return Err(format!("--format {format}: expected 'human' or 'json'"));
    }
    let baseline_path = match f.get("baseline") {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join("lint-baseline.json"),
    };
    // Explicit --baseline must exist; the default location is optional.
    let baseline_text = if no_baseline {
        None
    } else if baseline_path.is_file() {
        Some(
            std::fs::read_to_string(&baseline_path)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        )
    } else if f.get("baseline").is_some() {
        return Err(format!("--baseline {}: not found", baseline_path.display()));
    } else {
        None
    };

    let outcome = smin_analyze::run(&root, baseline_text.as_deref())?;

    if write_baseline {
        let findings: Vec<smin_analyze::Finding> =
            outcome.reported.iter().map(|r| r.finding.clone()).collect();
        let text = smin_analyze::baseline::write(&findings);
        std::fs::write(&baseline_path, text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} ({} grandfathered finding(s))",
            baseline_path.display(),
            outcome.total()
        );
        return Ok(());
    }

    match format {
        "json" => print!("{}", outcome.json()),
        _ => print!("{}", outcome.human()),
    }
    if outcome.new_count() > 0 {
        return Err(format!(
            "{} new lint finding(s); fix them, annotate with `// smin-lint: allow(<rule>) -- <why>`, or regenerate the baseline",
            outcome.new_count()
        ));
    }
    Ok(())
}

/// `asm pack` — encode any loadable graph as a `.smg` CSR snapshot.
pub fn pack(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err("usage: asm pack <GRAPH> <OUT.smg>".into());
    };
    let g = load_graph(input)?;
    store::write_smg_path(&g, output).map_err(|e| format!("{output}: {e}"))?;
    let checksum = store::content_checksum(&g);
    println!(
        "packed {input} -> {output}: {} nodes, {} edges, checksum {checksum:016x}",
        g.n(),
        g.m()
    );
    Ok(())
}

/// `asm inspect` — dump a `.smg` snapshot header without decoding columns.
pub fn inspect(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let [path] = f.positional.as_slice() else {
        return Err("usage: asm inspect <FILE.smg>".into());
    };
    let h = store::read_smg_header_path(path).map_err(|e| format!("{path}: {e}"))?;
    let actual = std::fs::metadata(path).map(|m| m.len()).ok();
    println!("{path}: smg snapshot");
    println!("  version:    {}", h.version);
    println!("  flags:      {:#010x}", h.flags);
    println!("  nodes:      {}", h.n);
    println!("  edges:      {}", h.m);
    println!("  crc off:    {:#010x}", h.crc_off);
    println!("  crc dst:    {:#010x}", h.crc_dst);
    println!("  crc prob:   {:#010x}", h.crc_prob);
    println!("  crc header: {:#010x}", h.crc_header);
    println!("  checksum:   {:016x}", h.content_checksum());
    match actual {
        Some(len) if len == h.file_len() => println!("  file size:  {len} bytes (matches header)"),
        Some(len) => println!(
            "  file size:  {len} bytes (HEADER SAYS {} — truncated or padded!)",
            h.file_len()
        ),
        None => println!("  file size:  unknown"),
    }
    Ok(())
}

/// `asm convert`
pub fn convert(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let [input, output] = f.positional.as_slice() else {
        return Err("usage: asm convert <IN> <OUT>".into());
    };
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    println!(
        "converted {input} -> {output} ({} nodes, {} edges)",
        g.n(),
        g.m()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_model_parsing() {
        assert_eq!(parse_weights("wc").unwrap(), WeightModel::WeightedCascade);
        assert_eq!(
            parse_weights("uniform:0.1").unwrap(),
            WeightModel::Uniform(0.1)
        );
        assert_eq!(parse_weights("tri").unwrap(), WeightModel::Trivalency);
        assert!(parse_weights("bogus").is_err());
        assert!(parse_weights("uniform:x").is_err());
    }

    #[test]
    fn generate_stats_run_roundtrip() {
        let dir = std::env::temp_dir().join("smin_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let path = path.to_str().unwrap().to_string();

        let args: Vec<String> = [
            "--kind", "chung-lu", "--n", "400", "--m", "1600", "--seed", "3", "--out", &path,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        generate(&args).unwrap();

        stats(std::slice::from_ref(&path)).unwrap();

        let run_args: Vec<String> = [
            "--graph",
            &path,
            "--algo",
            "asti",
            "--eta",
            "40",
            "--worlds",
            "2",
            "--seed",
            "1",
            "--threads",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&run_args).unwrap();

        let txt = dir.join("g.txt");
        let txt = txt.to_str().unwrap().to_string();
        convert(&[path.clone(), txt.clone()]).unwrap();
        let g1 = load_graph(&path).unwrap();
        let g2 = load_graph(&txt).unwrap();
        assert_eq!(g1.m(), g2.m());
    }

    #[test]
    fn run_audit_writes_replayable_logs() {
        let dir = std::env::temp_dir().join("smin_cli_audit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let path = path.to_str().unwrap().to_string();
        let args: Vec<String> = ["--kind", "er", "--n", "80", "--m", "240", "--out", &path]
            .iter()
            .map(|s| s.to_string())
            .collect();
        generate(&args).unwrap();

        let audit = dir.join("campaign.log");
        let audit = audit.to_str().unwrap().to_string();
        let run_args: Vec<String> = [
            "--graph", &path, "--algo", "asti", "--eta", "20", "--worlds", "2", "--seed", "5",
            "--audit", &audit,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&run_args).unwrap();

        // world 1 at the given path, world 2 with the .w2 suffix — both must
        // parse back through the diffusion::log line format.
        for p in [audit.clone(), format!("{audit}.w2")] {
            let text = std::fs::read_to_string(&p).unwrap();
            let log = smin_diffusion::ObservationLog::from_text(&text).unwrap();
            assert_eq!(log.n, 80, "{p}: wrong node count header");
            assert!(!log.steps.is_empty(), "{p}: no steps recorded");
            assert!(log.total_activated() >= 20, "{p}: campaign did not reach η");
            assert_eq!(log.to_text(), text, "{p}: round-trip not identity");
        }

        // --audit is meaningless for the non-adaptive baseline
        let bad: Vec<String> = [
            "--graph", &path, "--algo", "ateuc", "--eta", "20", "--audit", &audit,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&bad).unwrap_err().contains("--audit"));
    }

    #[test]
    fn pack_and_inspect_roundtrip() {
        let dir = std::env::temp_dir().join("smin_cli_pack");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt");
        std::fs::write(&txt, "0 1 0.5\n1 2 0.25\n2 0 1.0\n").unwrap();
        let txt = txt.to_str().unwrap().to_string();
        let smg = dir.join("g.smg");
        let smg = smg.to_str().unwrap().to_string();

        pack(&[txt.clone(), smg.clone()]).unwrap();
        inspect(std::slice::from_ref(&smg)).unwrap();

        // Packing twice produces byte-identical snapshots.
        let again = dir.join("g2.smg");
        let again = again.to_str().unwrap().to_string();
        pack(&[txt.clone(), again.clone()]).unwrap();
        assert_eq!(
            std::fs::read(&smg).unwrap(),
            std::fs::read(&again).unwrap(),
            "pack must be deterministic"
        );

        // The snapshot loads back bit-equal through the content sniffer.
        let g1 = load_graph(&txt).unwrap();
        let g2 = load_graph(&smg).unwrap();
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );

        // inspect rejects non-snapshots with a useful error.
        let err = inspect(std::slice::from_ref(&txt)).unwrap_err();
        assert!(err.contains("magic"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_usage_errors() {
        assert!(pack(&[]).unwrap_err().contains("usage"));
        assert!(inspect(&[]).unwrap_err().contains("usage"));
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let to_args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        let err = serve(&to_args(&["--threads", "0"])).unwrap_err();
        assert!(err.contains("--threads"), "got: {err}");
        let err = serve(&to_args(&["--graphs-dir", "/no/such/dir/xyz"])).unwrap_err();
        assert!(err.contains("--graphs-dir"), "got: {err}");
        let err = serve(&to_args(&["--addr", "definitely:not:an:addr"])).unwrap_err();
        assert!(err.contains("definitely"), "got: {err}");
        let err = serve(&to_args(&["--transport", "uring"])).unwrap_err();
        assert!(err.contains("uring"), "got: {err}");
        let err = serve(&to_args(&[
            "--addr",
            "127.0.0.1:0",
            "--trace-log",
            "/no/such/dir/xyz/trace.jsonl",
        ]))
        .unwrap_err();
        assert!(err.contains("trace log"), "got: {err}");
    }

    #[test]
    fn run_rejects_zero_threads() {
        let dir = std::env::temp_dir().join("smin_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g3.bin");
        let path = path.to_str().unwrap().to_string();
        let args: Vec<String> = ["--kind", "er", "--n", "50", "--m", "100", "--out", &path]
            .iter()
            .map(|s| s.to_string())
            .collect();
        generate(&args).unwrap();
        let bad: Vec<String> = [
            "--graph",
            &path,
            "--algo",
            "asti",
            "--eta",
            "5",
            "--threads",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = run(&bad).unwrap_err();
        assert!(err.contains("--threads"), "got: {err}");
    }

    #[test]
    fn run_rejects_conflicting_eta() {
        let dir = std::env::temp_dir().join("smin_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g2.bin");
        let path = path.to_str().unwrap().to_string();
        let args: Vec<String> = ["--kind", "er", "--n", "50", "--m", "100", "--out", &path]
            .iter()
            .map(|s| s.to_string())
            .collect();
        generate(&args).unwrap();
        let bad: Vec<String> = [
            "--graph",
            &path,
            "--algo",
            "asti",
            "--eta",
            "5",
            "--eta-frac",
            "0.1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run(&bad).is_err());
    }
}
