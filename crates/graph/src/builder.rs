//! Mutable edge accumulator producing immutable [`Graph`]s.

use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// What to do when the same directed edge `⟨u, v⟩` is added more than once.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Combine duplicate probabilities with a noisy-or: `1 − Π(1 − p_i)`.
    /// This is the natural semantics for independent-cascade edges and the
    /// default.
    #[default]
    NoisyOr,
    /// Keep the first occurrence, drop the rest.
    KeepFirst,
    /// Keep the occurrence with the largest probability.
    KeepMax,
    /// Fail with [`GraphError::DuplicateEdge`].
    Error,
}

/// Accumulates edges and produces a CSR [`Graph`].
///
/// ```
/// use smin_graph::{GraphBuilder, DedupPolicy};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge_p(0, 1, 0.5).unwrap();
/// b.add_edge_p(1, 2, 0.9).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
    dedup: DedupPolicy,
    skipped_self_loops: usize,
}

impl GraphBuilder {
    /// A builder for a graph over nodes `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            dedup: DedupPolicy::default(),
            skipped_self_loops: 0,
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            dedup: DedupPolicy::default(),
            skipped_self_loops: 0,
        }
    }

    /// Sets the duplicate-edge policy (default: [`DedupPolicy::NoisyOr`]).
    pub fn dedup_policy(mut self, policy: DedupPolicy) -> Self {
        self.dedup = policy;
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges accumulated so far (pre-dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Self loops silently skipped so far (they carry no influence).
    pub fn skipped_self_loops(&self) -> usize {
        self.skipped_self_loops
    }

    /// Adds `⟨u, v⟩` with placeholder probability 1.0 (reweight later via
    /// [`weights`](crate::weights)). Self loops are skipped and counted.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.add_edge_p(u, v, 1.0)
    }

    /// Adds `⟨u, v⟩` with probability `p ∈ (0, 1]`.
    pub fn add_edge_p(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<(), GraphError> {
        if u as usize >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v as usize >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(GraphError::InvalidProbability { u, v, p });
        }
        if u == v {
            self.skipped_self_loops += 1;
            return Ok(());
        }
        self.edges.push((u, v, p));
        Ok(())
    }

    /// Adds both `⟨u, v⟩` and `⟨v, u⟩` (undirected input, §6.1: "an
    /// undirected edge is transformed into two directed edges").
    pub fn add_undirected_p(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<(), GraphError> {
        self.add_edge_p(u, v, p)?;
        self.add_edge_p(v, u, p)
    }

    /// Sorts, deduplicates, and freezes into a CSR [`Graph`].
    pub fn build(mut self) -> Result<Graph, GraphError> {
        // Counting sort by source gives O(n + m); then sort each bucket by dst.
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));

        let mut fwd_off = vec![0usize; self.n + 1];
        let mut fwd_dst: Vec<NodeId> = Vec::with_capacity(self.edges.len());
        let mut fwd_prob: Vec<f64> = Vec::with_capacity(self.edges.len());

        let mut i = 0;
        while i < self.edges.len() {
            let (u, v, p) = self.edges[i];
            let mut j = i + 1;
            let mut merged = p;
            while j < self.edges.len() && self.edges[j].0 == u && self.edges[j].1 == v {
                let q = self.edges[j].2;
                match self.dedup {
                    DedupPolicy::NoisyOr => merged = 1.0 - (1.0 - merged) * (1.0 - q),
                    DedupPolicy::KeepFirst => {}
                    DedupPolicy::KeepMax => merged = merged.max(q),
                    DedupPolicy::Error => return Err(GraphError::DuplicateEdge { u, v }),
                }
                j += 1;
            }
            fwd_dst.push(v);
            fwd_prob.push(merged.min(1.0));
            fwd_off[u as usize + 1] += 1;
            i = j;
        }
        for k in 0..self.n {
            fwd_off[k + 1] += fwd_off[k];
        }

        Ok(Graph::from_csr(self.n, fwd_off, fwd_dst, fwd_prob))
    }
}

/// Builds a graph directly from an iterator of `(u, v)` pairs with uniform
/// probability `p`, mirroring each edge when `directed` is false.
pub fn graph_from_pairs(
    n: usize,
    pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    directed: bool,
    p: f64,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for (u, v) in pairs {
        if directed {
            b.add_edge_p(u, v, p)?;
        } else {
            b.add_undirected_p(u, v, p)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        ));
    }

    #[test]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge_p(0, 1, 0.0).is_err());
        assert!(b.add_edge_p(0, 1, 1.5).is_err());
        assert!(b.add_edge_p(0, 1, f64::NAN).is_err());
        assert!(b.add_edge_p(0, 1, 1.0).is_ok());
    }

    #[test]
    fn skips_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.skipped_self_loops(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn noisy_or_dedup() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.m(), 1);
        let (_, p) = g.out_edges(0).next().unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn keep_first_dedup() {
        let mut b = GraphBuilder::new(2).dedup_policy(DedupPolicy::KeepFirst);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 1, 0.9).unwrap();
        let g = b.build().unwrap();
        let (_, p) = g.out_edges(0).next().unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn keep_max_dedup() {
        let mut b = GraphBuilder::new(2).dedup_policy(DedupPolicy::KeepMax);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 1, 0.9).unwrap();
        let g = b.build().unwrap();
        let (_, p) = g.out_edges(0).next().unwrap();
        assert_eq!(p, 0.9);
    }

    #[test]
    fn error_dedup() {
        let mut b = GraphBuilder::new(2).dedup_policy(DedupPolicy::Error);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 1, 0.9).unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_p(0, 1, 0.3).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(5).build().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.out_degree(4), 0);
    }

    #[test]
    fn graph_from_pairs_undirected() {
        let g = graph_from_pairs(3, vec![(0, 1), (1, 2)], false, 0.5).unwrap();
        assert_eq!(g.m(), 4);
        assert!(g.has_edge(2, 1));
    }
}
