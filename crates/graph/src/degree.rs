//! Degree statistics for Table 2 and Figure 3.

use crate::cast::u32_of;
use crate::csr::Graph;

/// Which degree notion to histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegreeKind {
    /// Outgoing edges only.
    Out,
    /// Incoming edges only.
    In,
    /// In + out (what Figure 3 plots for the undirected datasets).
    Total,
}

/// `(degree, number_of_nodes)` pairs sorted by degree, skipping zero counts.
pub fn degree_distribution(g: &Graph, kind: DegreeKind) -> Vec<(usize, usize)> {
    let n = g.n();
    let mut hist: Vec<usize> = Vec::new();
    for u in 0..u32_of(n) {
        let d = match kind {
            DegreeKind::Out => g.out_degree(u),
            DegreeKind::In => g.in_degree(u),
            DegreeKind::Total => g.out_degree(u) + g.in_degree(u),
        };
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist.into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect()
}

/// Figure 3 series: `(degree, fraction_of_nodes)` on the raw (un-binned)
/// distribution, suitable for log-log plotting.
pub fn degree_fractions(g: &Graph, kind: DegreeKind) -> Vec<(usize, f64)> {
    let n = g.n().max(1) as f64;
    degree_distribution(g, kind)
        .into_iter()
        .map(|(d, c)| (d, c as f64 / n))
        .collect()
}

/// Average degree `m / n` (Table 2's "Avg. deg." column counts each
/// undirected edge once, i.e. directed edges over nodes after mirroring is
/// `2m/n`; we report directed `m/n` and let the harness annotate).
pub fn average_out_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        0.0
    } else {
        g.m() as f64 / g.n() as f64
    }
}

/// Least-squares slope of `log(count)` against `log(degree)` over nodes with
/// degree ≥ 1 — a quick power-law exponent estimate used by tests to confirm
/// the synthetic stand-ins are heavy-tailed like Figure 3.
pub fn log_log_slope(dist: &[(usize, usize)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = dist
        .iter()
        .filter(|&&(d, c)| d >= 1 && c >= 1)
        .map(|&(d, c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        None
    } else {
        Some((n * sxy - sx * sy) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::chung_lu_directed;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn distribution_counts_nodes() {
        let g = chain();
        let out = degree_distribution(&g, DegreeKind::Out);
        // nodes 0,1,2 have out-degree 1; node 3 has 0
        assert_eq!(out, vec![(0, 1), (1, 3)]);
        let total = degree_distribution(&g, DegreeKind::Total);
        // ends have total degree 1, middles 2
        assert_eq!(total, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let g = chain();
        let f = degree_fractions(&g, DegreeKind::In);
        let sum: f64 = f.iter().map(|&(_, x)| x).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_degree() {
        assert!((average_out_degree(&chain()) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chung_lu_slope_is_negative_powerlaw() {
        let mut rng = SmallRng::seed_from_u64(17);
        let pairs = chung_lu_directed(5_000, 25_000, 2.1, &mut rng);
        let g = crate::builder::graph_from_pairs(5_000, pairs, true, 0.1).unwrap();
        let dist = degree_distribution(&g, DegreeKind::Total);
        let slope = log_log_slope(&dist).unwrap();
        assert!(
            slope < -0.8,
            "expected clearly decreasing log-log distribution, slope = {slope}"
        );
    }
}
