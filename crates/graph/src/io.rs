//! SNAP-compatible edge-list I/O.
//!
//! The format is one `u v` (or `u v p`) pair per line, `#`-prefixed comment
//! lines ignored, arbitrary whitespace separators. Node ids are relabelled
//! densely in first-appearance order, so SNAP files with sparse ids load into
//! compact graphs — run the harness binaries against real SNAP downloads to
//! reproduce the paper on the original datasets.

use crate::cast::u32_of;
use crate::csr::{Graph, NodeId};
use crate::error::GraphError;
use crate::{DedupPolicy, GraphBuilder};
// smin-lint: allow(no-hash-iteration) -- relabel map below is lookup-only; ids follow first appearance
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// An edge list with dense node ids plus the mapping back to original labels.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    /// Number of distinct nodes.
    pub n: usize,
    /// Directed pairs (as read; mirroring happens at build time).
    pub edges: Vec<(NodeId, NodeId, Option<f64>)>,
    /// `original_label[i]` is the label node `i` had in the input.
    pub original_label: Vec<u64>,
}

impl EdgeList {
    /// Builds a weighted graph: explicit per-line probabilities win, missing
    /// ones take `default_p`; undirected inputs mirror each pair.
    pub fn into_graph(self, directed: bool, default_p: f64) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::with_capacity(self.n, self.edges.len())
            .dedup_policy(DedupPolicy::KeepFirst);
        for (u, v, p) in self.edges {
            let p = p.unwrap_or(default_p);
            if directed {
                b.add_edge_p(u, v, p)?;
            } else {
                b.add_undirected_p(u, v, p)?;
            }
        }
        b.build()
    }
}

/// Extracts `(nodes, edges)` counts from a SNAP-style size comment such as
/// `# Nodes: 75879 Edges: 508837`. Counts are advisory (used only to pre-size
/// buffers), so anything unparsable yields `None` rather than an error.
fn snap_size_hint(comment: &str) -> Option<(usize, usize)> {
    let mut nodes = None;
    let mut edges = None;
    let mut it = comment.split_whitespace().peekable();
    while let Some(tok) = it.next() {
        let slot = match tok.trim_end_matches(':') {
            "Nodes" => &mut nodes,
            "Edges" => &mut edges,
            _ => continue,
        };
        if let Some(count) = it.peek().and_then(|next| next.parse::<usize>().ok()) {
            *slot = Some(count);
            it.next();
        }
    }
    Some((nodes?, edges?))
}

/// Parses an edge list from any reader.
///
/// SNAP-style size headers (`# Nodes: N Edges: M`) are recognized and used to
/// pre-size the interning map and edge buffer, so multi-million-edge SNAP
/// downloads parse without reallocation churn.
pub fn read_edge_list(reader: impl Read) -> Result<EdgeList, GraphError> {
    let reader = BufReader::new(reader);
    // smin-lint: allow(no-hash-iteration) -- entry-lookup only, never iterated
    let mut relabel: HashMap<u64, NodeId> = HashMap::new();
    let mut original_label: Vec<u64> = Vec::new();
    let mut edges = Vec::new();
    let mut sized = false;

    // smin-lint: allow(no-hash-iteration) -- entry-lookup only, never iterated
    let intern = |raw: u64, relabel: &mut HashMap<u64, NodeId>, labels: &mut Vec<u64>| -> NodeId {
        *relabel.entry(raw).or_insert_with(|| {
            let id: NodeId = u32_of(labels.len());
            labels.push(raw);
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            if !sized {
                if let Some((n_hint, m_hint)) = snap_size_hint(line) {
                    relabel.reserve(n_hint);
                    original_label.reserve(n_hint);
                    edges.reserve(m_hint);
                    sized = true;
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse_u64 = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse_u64(it.next(), "source")?;
        let v = parse_u64(it.next(), "target")?;
        let p = match it.next() {
            Some(tok) => Some(tok.parse::<f64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad probability: {e}"),
            })?),
            None => None,
        };
        let u = intern(u, &mut relabel, &mut original_label);
        let v = intern(v, &mut relabel, &mut original_label);
        edges.push((u, v, p));
    }

    Ok(EdgeList {
        n: original_label.len(),
        edges,
        original_label,
    })
}

/// Reads an edge list from a file path.
pub fn read_edge_list_path(path: impl AsRef<Path>) -> Result<EdgeList, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as a `u v p` edge list (dense ids).
pub fn write_edge_list(g: &Graph, mut writer: impl Write) -> Result<(), GraphError> {
    for (u, v, p) in g.edges() {
        writeln!(writer, "{u} {v} {p}")?;
    }
    Ok(())
}

/// Magic header of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"SMING001";

/// Writes a graph in a compact little-endian binary format (~16 bytes per
/// edge). Loading a multi-million-edge graph from this format is an order of
/// magnitude faster than re-parsing a text edge list.
pub fn write_binary(g: &Graph, mut writer: impl Write) -> Result<(), GraphError> {
    writer.write_all(BINARY_MAGIC)?;
    writer.write_all(&(g.n() as u64).to_le_bytes())?;
    writer.write_all(&(g.m() as u64).to_le_bytes())?;
    for (u, v, p) in g.edges() {
        writer.write_all(&u.to_le_bytes())?;
        writer.write_all(&v.to_le_bytes())?;
        writer.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary(mut reader: impl Read) -> Result<Graph, GraphError> {
    let bad = |msg: &str| GraphError::Parse {
        line: 0,
        message: msg.to_string(),
    };
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("not a seedmin binary graph (bad magic)"));
    }
    let mut word = [0u8; 8];
    reader.read_exact(&mut word)?;
    let n = u64::from_le_bytes(word) as usize;
    reader.read_exact(&mut word)?;
    let m = u64::from_le_bytes(word) as usize;

    let mut b = crate::GraphBuilder::with_capacity(n, m).dedup_policy(DedupPolicy::KeepFirst);
    let mut buf = [0u8; 16];
    for _ in 0..m {
        reader.read_exact(&mut buf)?;
        let u = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        let p = f64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        b.add_edge_p(u, v, p)?;
    }
    b.build()
}

/// Writes the binary format to a file path.
pub fn write_binary_path(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_binary(g, std::io::BufWriter::new(file))
}

/// Reads the binary format from a file path.
pub fn read_binary_path(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_binary(BufReader::new(file))
}

/// Loads a graph from a file of any supported format, sniffing content rather
/// than trusting the extension: `.smg` snapshots (magic `\x89SMG\r\n\x1a\n`),
/// the legacy `SMING001` edge-dump binary, or a text edge list (directed,
/// default probability `default_p` where a line omits one).
pub fn load_auto(path: impl AsRef<Path>, default_p: f64) -> Result<Graph, GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut magic = [0u8; 8];
    let mut got = 0usize;
    while got < magic.len() {
        match file.read(&mut magic[got..]) {
            Ok(0) => break,
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    file.seek(SeekFrom::Start(0))?;
    let head = &magic[..got];
    if head == crate::store::SMG_MAGIC {
        crate::store::read_smg(BufReader::new(file))
    } else if head == BINARY_MAGIC {
        read_binary(BufReader::new(file))
    } else {
        read_edge_list(file)?.into_graph(true, default_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_relabels() {
        let input = "# snap header\n10 20\n20 30\n10 30\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.original_label, vec![10, 20, 30]);
        assert_eq!(el.edges.len(), 3);
        assert_eq!(el.edges[0], (0, 1, None));
    }

    #[test]
    fn parses_crlf_line_endings() {
        // Graphs arriving over the wire (or exported on Windows) terminate
        // lines with \r\n; the parser must treat them exactly like \n.
        let input = "# header\r\n0 1 0.25\r\n\r\n1 2\r\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.edges.len(), 2);
        assert_eq!(el.edges[0], (0, 1, Some(0.25)));
        assert_eq!(el.edges[1], (1, 2, None));
    }

    #[test]
    fn skips_blank_and_whitespace_only_lines() {
        let input = "\n0 1\n   \n\t\n1 2\n\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.edges.len(), 2);
        assert_eq!(el.n, 3);
    }

    #[test]
    fn skips_both_comment_styles_anywhere() {
        // SNAP uses '#', some Konect exports use '%'; comments may be
        // interleaved with data, not just a leading header block.
        let input = "# SNAP header\n% konect header\n0 1\n# mid-file note\n1 2\n% tail\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.edges.len(), 2);
    }

    #[test]
    fn handles_tabs_and_repeated_separators() {
        let input = "0\t1\t0.5\n1   2\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.edges[0], (0, 1, Some(0.5)));
        assert_eq!(el.edges[1], (1, 2, None));
    }

    #[test]
    fn missing_target_reports_line_number_with_crlf_and_comments() {
        // Line numbers must count comment and blank lines, so editors can
        // jump straight to the offending input line.
        let input = "# header\r\n0 1\r\n\r\n7\r\n";
        match read_edge_list(input.as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("target"), "got: {message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_probability_reports_line() {
        let input = "0 1 0.5\n1 2 banana\n";
        match read_edge_list(input.as_bytes()) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("probability"), "got: {message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn negative_node_id_is_rejected() {
        let input = "-1 2\n";
        match read_edge_list(input.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comment_only_input_yields_empty_list() {
        let input = "# nothing but comments\r\n\r\n% and blanks\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 0);
        assert!(el.edges.is_empty());
    }

    #[test]
    fn parses_probabilities() {
        let input = "0 1 0.25\n1 2 0.5\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.edges[0].2, Some(0.25));
        let g = el.into_graph(true, 0.1).unwrap();
        let (_, p) = g.out_edges(0).next().unwrap();
        assert_eq!(p, 0.25);
    }

    #[test]
    fn default_probability_fills_gaps() {
        let input = "0 1\n";
        let g = read_edge_list(input.as_bytes())
            .unwrap()
            .into_graph(true, 0.33)
            .unwrap();
        let (_, p) = g.out_edges(0).next().unwrap();
        assert_eq!(p, 0.33);
    }

    #[test]
    fn undirected_mirrors() {
        let input = "0 1\n";
        let g = read_edge_list(input.as_bytes())
            .unwrap()
            .into_graph(false, 1.0)
            .unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn bad_line_reports_position() {
        let input = "0 1\nnot numbers\n";
        match read_edge_list(input.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn snap_size_header_is_parsed_and_harmless() {
        // The canonical SNAP banner; counts only pre-size buffers, so a file
        // whose header over- or under-counts must still parse correctly.
        let input = "# Directed graph (each unordered pair of nodes is saved once)\n\
                     # Nodes: 4 Edges: 3\n10 20\n20 30\n10 30\n";
        let el = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.edges.len(), 3);
    }

    #[test]
    fn snap_size_hint_variants() {
        assert_eq!(
            snap_size_hint("# Nodes: 75879 Edges: 508837"),
            Some((75879, 508837))
        );
        assert_eq!(snap_size_hint("# Nodes: 5"), None);
        assert_eq!(snap_size_hint("# Edges: 5"), None);
        assert_eq!(snap_size_hint("# Nodes: banana Edges: 3"), None);
        assert_eq!(snap_size_hint("# FromNodeId ToNodeId"), None);
    }

    #[test]
    fn load_auto_sniffs_all_three_formats() {
        let g = read_edge_list("0 1 0.5\n1 2 0.25\n".as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        let dir = std::env::temp_dir().join("smin_io_load_auto");
        std::fs::create_dir_all(&dir).unwrap();

        // Deliberately misleading extensions: content sniffing must win.
        let text = dir.join("graph.smg");
        std::fs::write(&text, "0 1 0.5\n1 2 0.25\n").unwrap();
        let legacy = dir.join("graph.txt");
        write_binary_path(&g, &legacy).unwrap();
        let smg = dir.join("graph.bin");
        crate::store::write_smg_path(&g, &smg).unwrap();

        let want: Vec<_> = g.edges().collect();
        for path in [&text, &legacy, &smg] {
            let loaded = load_auto(path, 1.0).unwrap();
            assert_eq!(loaded.edges().collect::<Vec<_>>(), want, "path {path:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_auto_short_file_falls_back_to_text() {
        // A file shorter than any magic must be treated as a text edge list.
        let dir = std::env::temp_dir().join("smin_io_load_auto_short");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::write(&path, "0 1\n").unwrap();
        let g = load_auto(&path, 0.5).unwrap();
        assert_eq!(g.m(), 1);
        let (_, p) = g.out_edges(0).next().unwrap();
        assert_eq!(p, 0.5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let input = "0 1 0.5\n1 2 0.25\n2 0 1.0\n";
        let g = read_edge_list(input.as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        let mut bytes = Vec::new();
        write_binary(&g, &mut bytes).unwrap();
        assert_eq!(bytes.len(), 8 + 16 + 3 * 16);
        let g2 = read_binary(bytes.as_slice()).unwrap();
        assert_eq!(g.n(), g2.n());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let bytes = b"NOTMAGIC________".to_vec();
        assert!(matches!(
            read_binary(bytes.as_slice()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn binary_rejects_truncated_input() {
        let input = "0 1 0.5\n";
        let g = read_edge_list(input.as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        let mut bytes = Vec::new();
        write_binary(&g, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 4);
        assert!(read_binary(bytes.as_slice()).is_err());
    }

    #[test]
    fn roundtrip() {
        let input = "0 1 0.5\n1 2 0.25\n";
        let g = read_edge_list(input.as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }
}
