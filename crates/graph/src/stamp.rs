//! Generation-stamped membership scratch.
//!
//! Several hot paths need a transient "have I seen index `i` in *this*
//! query?" set that is consulted thousands of times per adaptive round
//! (distinct-root draws, coverage-union queries). Allocating
//! `vec![false; n]` per query is exactly the kind of hidden O(n) cost that
//! dominates small queries, and clearing the buffer afterwards costs O(n)
//! again. [`GenStamp`] amortizes both: membership is "stamp equals the
//! current generation", so starting a new query is a single counter bump,
//! and the buffer is reused (and lazily grown) forever.

/// A reusable membership set over indices `0..len`, reset in O(1) by
/// bumping a generation counter.
#[derive(Clone, Debug, Default)]
pub struct GenStamp {
    stamp: Vec<u32>,
    gen: u32,
}

impl GenStamp {
    /// Fresh scratch; the buffer is sized lazily by [`GenStamp::begin`].
    pub fn new() -> Self {
        GenStamp::default()
    }

    /// Starts a new query over indices `0..len`: grows the buffer if
    /// needed and invalidates all previous marks. On the (u32) generation
    /// wraparound the buffer is cleared eagerly so stale stamps from ~4
    /// billion queries ago can never read as current.
    pub fn begin(&mut self, len: usize) {
        if self.stamp.len() < len {
            self.stamp.resize(len, 0);
        }
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Whether `i` has been marked since the last [`GenStamp::begin`].
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.gen
    }

    /// Marks `i`; returns `true` iff it was not already marked.
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_reset_per_generation() {
        let mut s = GenStamp::new();
        s.begin(4);
        assert!(s.mark(2));
        assert!(!s.mark(2), "second mark reports already-present");
        assert!(s.is_marked(2));
        assert!(!s.is_marked(3));
        s.begin(4);
        assert!(!s.is_marked(2), "new generation invalidates old marks");
        assert!(s.mark(2));
    }

    #[test]
    fn grows_lazily_without_stale_marks() {
        let mut s = GenStamp::new();
        s.begin(2);
        s.mark(0);
        s.begin(5);
        for i in 0..5 {
            assert!(!s.is_marked(i));
        }
        s.mark(4);
        assert!(s.is_marked(4));
    }

    #[test]
    fn wraparound_clears_buffer() {
        let mut s = GenStamp::new();
        s.begin(3);
        s.mark(1);
        s.gen = u32::MAX; // simulate ~4 billion queries
        s.begin(3);
        assert_eq!(s.gen, 1);
        for i in 0..3 {
            assert!(!s.is_marked(i), "wraparound must not resurrect marks");
        }
    }
}
