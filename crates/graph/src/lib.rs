//! # smin-graph
//!
//! Directed probabilistic graph substrate for the adaptive seed minimization
//! stack. A [`Graph`] is an immutable compressed-sparse-row structure holding
//! both forward and reverse adjacency, where every edge `⟨u, v⟩` carries a
//! propagation probability `p(u, v) ∈ (0, 1]` (§2.1 of the paper).
//!
//! The crate also provides:
//!
//! * [`GraphBuilder`] — mutable edge accumulator with deduplication policies;
//! * [`weights`] — the paper's weighted-cascade model (`p = 1/indeg`) plus
//!   uniform and trivalency alternatives;
//! * [`generators`] — synthetic social-network generators (directed
//!   Chung–Lu power law, Barabási–Albert, Erdős–Rényi, Watts–Strogatz) used as
//!   stand-ins for the SNAP datasets of the evaluation;
//! * [`io`] — SNAP-compatible edge-list reading/writing plus format-sniffing
//!   [`io::load_auto`];
//! * [`store`] — the versioned `.smg` binary CSR snapshot format (checksummed
//!   sections, deterministic encode, millisecond loads);
//! * [`components`] / [`degree`] — the statistics reported in Table 2 and
//!   Figure 3;
//! * [`stamp`] / [`bitset`] — reusable membership scratch shared by the
//!   sampling hot paths: generation stamps (O(1) reset, sparse queries) and
//!   word-packed bitsets (persistent masks, word-at-a-time clear/union/count).

#![forbid(unsafe_code)]

pub mod bitset;
pub mod builder;
pub mod cast;
pub mod components;
pub mod csr;
pub mod degree;
pub mod error;
pub mod generators;
pub mod io;
pub mod ops;
pub mod stamp;
pub mod store;
pub mod topics;
pub mod weights;

pub use bitset::{FixedBitSet, Ones};
pub use builder::{DedupPolicy, GraphBuilder};
pub use cast::u32_of;
pub use csr::{Graph, NodeId};
pub use error::{GraphError, StoreError};
pub use stamp::GenStamp;
pub use weights::WeightModel;
