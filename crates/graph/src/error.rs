//! Error type shared across the graph crate.

use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange { node: u32, n: usize },
    /// An edge probability fell outside `(0, 1]`.
    InvalidProbability { u: u32, v: u32, p: f64 },
    /// A duplicate edge was found under [`DedupPolicy::Error`](crate::DedupPolicy).
    DuplicateEdge { u: u32, v: u32 },
    /// A self loop `⟨u, u⟩` was submitted.
    SelfLoop { u: u32 },
    /// An input file could not be parsed.
    Parse { line: usize, message: String },
    /// An underlying I/O failure.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::InvalidProbability { u, v, p } => {
                write!(f, "edge ({u}, {v}) has probability {p} outside (0, 1]")
            }
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::SelfLoop { u } => write!(f, "self loop at node {u}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
