//! Error type shared across the graph crate.

use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange { node: u32, n: usize },
    /// An edge probability fell outside `(0, 1]`.
    InvalidProbability { u: u32, v: u32, p: f64 },
    /// A duplicate edge was found under [`DedupPolicy::Error`](crate::DedupPolicy).
    DuplicateEdge { u: u32, v: u32 },
    /// A self loop `⟨u, u⟩` was submitted.
    SelfLoop { u: u32 },
    /// An input file could not be parsed.
    Parse { line: usize, message: String },
    /// A `.smg` snapshot failed to decode. See [`StoreError`].
    Store(StoreError),
    /// An underlying I/O failure.
    Io(String),
}

/// Errors produced while decoding a `.smg` binary CSR snapshot.
///
/// Each corruption class maps to its own variant so callers (and tests) can
/// distinguish "wrong file type" from "damaged file" from "file from a newer
/// tool" without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The first 8 bytes are not the `.smg` magic.
    BadMagic,
    /// The header declares a format version this build cannot read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The file ended before a section was fully read.
    Truncated { section: &'static str },
    /// A section's stored CRC32 does not match the bytes on disk.
    ChecksumMismatch {
        section: &'static str,
        stored: u32,
        computed: u32,
    },
    /// The sections decoded but violate a structural invariant
    /// (non-monotone offsets, out-of-range target, bad probability, …).
    Malformed { message: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a .smg graph snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            StoreError::Truncated { section } => {
                write!(f, "snapshot truncated while reading {section}")
            }
            StoreError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Malformed { message } => write!(f, "malformed snapshot: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for GraphError {
    fn from(e: StoreError) -> Self {
        GraphError::Store(e)
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::InvalidProbability { u, v, p } => {
                write!(f, "edge ({u}, {v}) has probability {p} outside (0, 1]")
            }
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::SelfLoop { u } => write!(f, "self loop at node {u}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Store(e) => write!(f, "snapshot error: {e}"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
