//! Structural graph operations: transpose and induced subgraphs.
//!
//! The residual graphs of the adaptive loop are handled by masks
//! (`smin-diffusion::ResidualState`) without copying; the materializing
//! operations here serve preprocessing pipelines (e.g. extracting the LWCC
//! before an experiment) and tests.

use crate::builder::GraphBuilder;
use crate::cast::u32_of;
use crate::csr::{Graph, NodeId};

/// The transpose graph: every edge `⟨u, v⟩` becomes `⟨v, u⟩` with the same
/// probability.
pub fn transpose(g: &Graph) -> Graph {
    let mut b = GraphBuilder::with_capacity(g.n(), g.m());
    for (u, v, p) in g.edges() {
        b.add_edge_p(v, u, p)
            .expect("edges of a valid graph are valid");
    }
    b.build().expect("transpose preserves validity")
}

/// The subgraph induced by `keep`, with nodes relabelled densely in the
/// order given. Returns the graph and the mapping `new_id -> old_id`.
///
/// # Panics
/// Panics if `keep` contains duplicates or out-of-range ids.
pub fn induced_subgraph(g: &Graph, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut new_id = vec![u32::MAX; g.n()];
    for (i, &old) in keep.iter().enumerate() {
        assert!((old as usize) < g.n(), "node {old} out of range");
        assert_eq!(
            new_id[old as usize],
            u32::MAX,
            "duplicate node {old} in keep list"
        );
        new_id[old as usize] = u32_of(i);
    }
    let mut b = GraphBuilder::new(keep.len());
    for &old in keep {
        for (v, p) in g.out_edges(old) {
            let nv = new_id[v as usize];
            if nv != u32::MAX {
                b.add_edge_p(new_id[old as usize], nv, p)
                    .expect("remapped edges are valid");
            }
        }
    }
    (b.build().expect("induced subgraph is valid"), keep.to_vec())
}

/// Extracts the largest weakly connected component as a standalone graph
/// (what one typically runs experiments on); returns the graph and the
/// original ids of its nodes.
pub fn largest_wcc(g: &Graph) -> (Graph, Vec<NodeId>) {
    let wcc = crate::components::weakly_connected_components(g);
    let mut sizes = vec![0usize; wcc.count];
    for &l in &wcc.labels {
        sizes[l as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(l, _)| u32_of(l))
        .unwrap_or(0);
    let keep: Vec<NodeId> = (0..u32_of(g.n()))
        .filter(|&u| wcc.labels[u as usize] == best)
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.25).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 0.75).unwrap();
        // node 4 isolated
        b.build().unwrap()
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = transpose(&g);
        assert_eq!(t.n(), g.n());
        assert_eq!(t.m(), g.m());
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(3, 2));
        assert!(!t.has_edge(0, 1));
        // probabilities carried over
        let (_, p) = t.out_edges(3).next().unwrap();
        assert_eq!(p, 1.0);
        // double transpose is identity
        let tt = transpose(&t);
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = tt.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(map, vec![0, 1, 3]);
        // edges 0->1 and 1->3 survive (relabelled 0->1, 1->2); 0->2, 2->3 drop
        assert_eq!(sub.m(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
    }

    #[test]
    fn induced_subgraph_preserves_probabilities() {
        let g = diamond();
        let (sub, _) = induced_subgraph(&g, &[0, 2, 3]);
        let probs: Vec<f64> = sub.edges().map(|(_, _, p)| p).collect();
        assert_eq!(probs, vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let _ = induced_subgraph(&diamond(), &[0, 0]);
    }

    #[test]
    fn largest_wcc_drops_isolated_node() {
        let g = diamond();
        let (core, ids) = largest_wcc(&g);
        assert_eq!(core.n(), 4);
        assert_eq!(core.m(), 4);
        assert!(!ids.contains(&4));
    }

    #[test]
    fn largest_wcc_of_connected_graph_is_identity_sized() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(2, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let (core, ids) = largest_wcc(&g);
        assert_eq!(core.n(), 3);
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
