//! Weakly connected components (Table 2 reports the LWCC size per dataset).

use crate::cast::u32_of;
use crate::csr::{Graph, NodeId};

/// Summary of the weakly-connected-component structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WccSummary {
    /// Number of components.
    pub count: usize,
    /// Size of the largest component (LWCC, as in Table 2).
    pub largest: usize,
    /// Component label per node (`0..count`, labels assigned in discovery
    /// order).
    pub labels: Vec<u32>,
}

/// Computes weakly connected components by BFS over the union of forward and
/// reverse adjacency. Runs in `O(n + m)`.
pub fn weakly_connected_components(g: &Graph) -> WccSummary {
    let n = g.n();
    let mut labels = vec![u32::MAX; n];
    let mut queue: Vec<NodeId> = Vec::new();
    let mut count = 0u32;
    let mut largest = 0usize;

    for start in 0..u32_of(n) {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let label = count;
        count += 1;
        labels[start as usize] = label;
        queue.clear();
        queue.push(start);
        let mut size = 0usize;
        while let Some(u) = queue.pop() {
            size += 1;
            for (v, _) in g.out_edges(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = label;
                    queue.push(v);
                }
            }
            for (v, _, _) in g.in_edges(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = label;
                    queue.push(v);
                }
            }
        }
        largest = largest.max(size);
    }

    WccSummary {
        count: count as usize,
        largest,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn two_islands() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(3, 4).unwrap();
        let s = weakly_connected_components(&b.build().unwrap());
        assert_eq!(s.count, 2);
        assert_eq!(s.largest, 3);
        assert_eq!(s.labels[0], s.labels[2]);
        assert_ne!(s.labels[0], s.labels[3]);
    }

    #[test]
    fn direction_ignored() {
        // 0 <- 1 <- 2 is weakly connected even though 0 reaches nothing.
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 0).unwrap();
        b.add_edge(2, 1).unwrap();
        let s = weakly_connected_components(&b.build().unwrap());
        assert_eq!(s.count, 1);
        assert_eq!(s.largest, 3);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let b = GraphBuilder::new(4);
        let s = weakly_connected_components(&b.build().unwrap());
        assert_eq!(s.count, 4);
        assert_eq!(s.largest, 1);
    }

    #[test]
    fn empty_graph() {
        let s = weakly_connected_components(&GraphBuilder::new(0).build().unwrap());
        assert_eq!(s.count, 0);
        assert_eq!(s.largest, 0);
    }
}
