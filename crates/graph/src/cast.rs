//! Checked narrowing onto the `u32` node/edge-id space.
//!
//! The CSR layout, alias tables, and sketch pools all store indices as
//! `u32` to halve memory traffic, while std collections hand back `usize`.
//! Every narrowing conversion in the workspace goes through these helpers
//! so an oversized graph fails loudly at the conversion site instead of
//! silently truncating an id (the `checked-cast` lint forbids bare
//! `as u32` narrowing everywhere else).

/// Narrow a `usize` index to `u32`, panicking with a diagnosable message
/// if the value does not fit. Callers sit behind graph-construction limits
/// (`n`, `m` ≤ `u32::MAX`), so the panic is unreachable in practice; the
/// check costs one well-predicted branch.
#[inline]
pub fn u32_of(i: usize) -> u32 {
    match u32::try_from(i) {
        Ok(v) => v,
        Err(_) => panic!("index {i} exceeds the u32 id space"),
    }
}

#[cfg(test)]
mod tests {
    use super::u32_of;

    #[test]
    fn in_range_roundtrips() {
        assert_eq!(u32_of(0), 0);
        assert_eq!(u32_of(42), 42);
        assert_eq!(u32_of(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "u32 id space")]
    #[cfg(target_pointer_width = "64")]
    fn out_of_range_panics() {
        let _ = u32_of(u32::MAX as usize + 1);
    }
}
