//! Immutable CSR graph with forward and reverse adjacency.
//!
//! Reverse adjacency is first-class because reverse reachable set sampling
//! (the hot path of TRIM) traverses incoming edges. Each reverse slot also
//! records the *forward edge index* of the same edge so that edge-level state
//! (e.g. live/blocked status in an IC realization) can be shared between the
//! two directions.

use crate::cast::u32_of;

/// Node identifier. Graphs are limited to `u32::MAX` nodes, which covers the
/// largest dataset in the paper (LiveJournal, 4.85M nodes) with room to spare
/// while halving index memory compared to `usize`.
pub type NodeId = u32;

/// A directed probabilistic graph in compressed-sparse-row form.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder); the
/// resulting graph is immutable. Edges within a node's adjacency are sorted by
/// neighbor id and deduplicated according to the builder's policy.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    fwd_off: Vec<usize>,
    fwd_dst: Vec<NodeId>,
    fwd_prob: Vec<f64>,
    rev_off: Vec<usize>,
    rev_src: Vec<NodeId>,
    rev_prob: Vec<f64>,
    /// For reverse slot `i`, the forward edge index of the same edge.
    rev_edge_id: Vec<u32>,
}

impl Graph {
    /// Assembles a graph from already-sorted CSR arrays. Used by the builder;
    /// not public because it does not validate invariants.
    pub(crate) fn from_csr(
        n: usize,
        fwd_off: Vec<usize>,
        fwd_dst: Vec<NodeId>,
        fwd_prob: Vec<f64>,
    ) -> Self {
        let m = fwd_dst.len();
        debug_assert_eq!(fwd_off.len(), n + 1);
        debug_assert_eq!(fwd_prob.len(), m);

        // Build the reverse CSR with a counting pass.
        let mut rev_off = vec![0usize; n + 1];
        for &v in &fwd_dst {
            rev_off[v as usize + 1] += 1;
        }
        for i in 0..n {
            rev_off[i + 1] += rev_off[i];
        }
        let mut cursor = rev_off.clone();
        let mut rev_src = vec![0 as NodeId; m];
        let mut rev_prob = vec![0.0f64; m];
        let mut rev_edge_id = vec![0u32; m];
        for u in 0..n {
            for e in fwd_off[u]..fwd_off[u + 1] {
                let v = fwd_dst[e] as usize;
                let slot = cursor[v];
                cursor[v] += 1;
                rev_src[slot] = u as NodeId;
                rev_prob[slot] = fwd_prob[e];
                rev_edge_id[slot] = u32_of(e);
            }
        }

        Graph {
            n,
            fwd_off,
            fwd_dst,
            fwd_prob,
            rev_off,
            rev_src,
            rev_prob,
            rev_edge_id,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.fwd_dst.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.fwd_off[u + 1] - self.fwd_off[u]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.rev_off[v + 1] - self.rev_off[v]
    }

    /// Outgoing neighbors of `u` with propagation probabilities, sorted by id.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let u = u as usize;
        let r = self.fwd_off[u]..self.fwd_off[u + 1];
        self.fwd_dst[r.clone()]
            .iter()
            .copied()
            .zip(self.fwd_prob[r].iter().copied())
    }

    /// Outgoing neighbors of `u` together with the forward edge index.
    #[inline]
    pub fn out_edges_indexed(&self, u: NodeId) -> impl Iterator<Item = (u32, NodeId, f64)> + '_ {
        let u = u as usize;
        let r = self.fwd_off[u]..self.fwd_off[u + 1];
        r.clone()
            .map(u32_of)
            .zip(self.fwd_dst[r.clone()].iter().copied())
            .zip(self.fwd_prob[r].iter().copied())
            .map(|((e, v), p)| (e, v, p))
    }

    /// Incoming neighbors of `v`: `(source, probability, forward edge index)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64, u32)> + '_ {
        let v = v as usize;
        let r = self.rev_off[v]..self.rev_off[v + 1];
        self.rev_src[r.clone()]
            .iter()
            .copied()
            .zip(self.rev_prob[r.clone()].iter().copied())
            .zip(self.rev_edge_id[r].iter().copied())
            .map(|((u, p), e)| (u, p, e))
    }

    /// Probability attached to forward edge index `e`.
    #[inline]
    pub fn edge_prob(&self, e: u32) -> f64 {
        self.fwd_prob[e as usize]
    }

    /// Destination of forward edge index `e`.
    #[inline]
    pub fn edge_dst(&self, e: u32) -> NodeId {
        self.fwd_dst[e as usize]
    }

    /// Iterates every edge as `(u, v, p)` in forward CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_edges(u as NodeId)
                .map(move |(v, p)| (u as NodeId, v, p))
        })
    }

    /// Returns whether the directed edge `⟨u, v⟩` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let r = self.fwd_off[u as usize]..self.fwd_off[u as usize + 1];
        self.fwd_dst[r].binary_search(&v).is_ok()
    }

    /// Sum of incoming probabilities of `v`; the LT model requires this to be
    /// at most 1 for every node.
    pub fn in_prob_sum(&self, v: NodeId) -> f64 {
        self.in_edges(v).map(|(_, p, _)| p).sum()
    }

    /// `true` when every node's incoming probabilities sum to at most
    /// `1 + 1e-9` (tolerance for floating point accumulation), i.e. the graph
    /// is a valid LT instance.
    pub fn is_valid_lt(&self) -> bool {
        (0..self.n).all(|v| self.in_prob_sum(v as NodeId) <= 1.0 + 1e-9)
    }

    /// Replaces every edge probability via `f(u, v, current)` keeping the
    /// structure; used by [`weights`](crate::weights) to apply weight models.
    pub fn map_probabilities(&self, mut f: impl FnMut(NodeId, NodeId, f64) -> f64) -> Graph {
        let mut fwd_prob = Vec::with_capacity(self.m());
        for u in 0..self.n {
            for e in self.fwd_off[u]..self.fwd_off[u + 1] {
                fwd_prob.push(f(u as NodeId, self.fwd_dst[e], self.fwd_prob[e]));
            }
        }
        Graph::from_csr(self.n, self.fwd_off.clone(), self.fwd_dst.clone(), fwd_prob)
    }

    /// Memory footprint of the CSR arrays in bytes (diagnostics).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.fwd_off.len() * size_of::<usize>() * 2
            + self.fwd_dst.len()
                * (size_of::<NodeId>() * 2 + size_of::<f64>() * 2 + size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.25).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 0.75).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn adjacency_sorted_and_probs_attached() {
        let g = diamond();
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 0.5), (2, 0.25)]);
        let in3: Vec<_> = g.in_edges(3).map(|(u, p, _)| (u, p)).collect();
        assert_eq!(in3, vec![(1, 1.0), (2, 0.75)]);
    }

    #[test]
    fn rev_edge_ids_point_back_to_forward_edges() {
        let g = diamond();
        for v in 0..4u32 {
            for (u, p, e) in g.in_edges(v) {
                assert_eq!(g.edge_dst(e), v);
                assert_eq!(g.edge_prob(e), p);
                // edge e must appear in u's forward range
                let found = g.out_edges_indexed(u).any(|(fe, fv, _)| fe == e && fv == v);
                assert!(
                    found,
                    "edge ({u},{v}) id {e} missing from forward adjacency"
                );
            }
        }
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = diamond();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&(0, 1, 0.5)));
        assert!(all.contains(&(2, 3, 0.75)));
    }

    #[test]
    fn map_probabilities_keeps_structure() {
        let g = diamond();
        let g2 = g.map_probabilities(|_, _, p| p / 2.0);
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        let out0: Vec<_> = g2.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 0.25), (2, 0.125)]);
    }

    #[test]
    fn lt_validity_check() {
        let g = diamond();
        // node 3 receives 1.0 + 0.75 > 1 -> invalid LT instance
        assert!(!g.is_valid_lt());
        let g2 = g.map_probabilities(|_, v, p| if v == 3 { p / 2.0 } else { p });
        assert!(g2.is_valid_lt());
    }
}
