//! Immutable CSR graph with forward and reverse adjacency.
//!
//! Reverse adjacency is first-class because reverse reachable set sampling
//! (the hot path of TRIM) traverses incoming edges. Each reverse slot also
//! records the *forward edge index* of the same edge so that edge-level state
//! (e.g. live/blocked status in an IC realization) can be shared between the
//! two directions.

use crate::cast::u32_of;

/// Node identifier. Graphs are limited to `u32::MAX` nodes, which covers the
/// largest dataset in the paper (LiveJournal, 4.85M nodes) with room to spare
/// while halving index memory compared to `usize`.
pub type NodeId = u32;

/// Edge count below which CSR construction and snapshot decoding run inline:
/// thread spawn overhead outweighs the parallelism. Purely a performance
/// knob — the output is bit-identical either way.
pub(crate) const MIN_PARALLEL_EDGES: usize = 1 << 18;

/// Worker count for parallel graph construction/decoding: the `SMIN_THREADS`
/// override first, then [`std::thread::available_parallelism`], capped at 8
/// (the work is memory-bandwidth bound beyond that). Every result is
/// bit-identical for every worker count; this only sets the wall-clock.
pub(crate) fn build_workers(m: usize) -> usize {
    if m < MIN_PARALLEL_EDGES {
        return 1;
    }
    let t = std::env::var("SMIN_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |t| t.get()));
    t.min(8)
}

/// Reverse adjacency of a [`Graph`], stored interleaved: one
/// `(source, forward edge id, probability)` record per reverse slot, so a
/// reverse traversal touches a single cache line per edge.
#[derive(Clone, Debug)]
struct RevCsr {
    off: Vec<usize>,
    adj: Vec<(NodeId, u32, f64)>,
}

/// A directed probabilistic graph in compressed-sparse-row form.
///
/// Construction goes through [`GraphBuilder`](crate::GraphBuilder); the
/// resulting graph is immutable. Edges within a node's adjacency are sorted by
/// neighbor id and deduplicated according to the builder's policy.
///
/// The reverse CSR is materialized lazily on the first reverse traversal:
/// loading a snapshot, registering a graph, or restarting a server never pays
/// the O(n + m) transpose, only the first RR-sampling query does — once per
/// graph, with a result that is bit-identical no matter when or from how many
/// threads it is first demanded.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    fwd_off: Vec<usize>,
    fwd_dst: Vec<NodeId>,
    fwd_prob: Vec<f64>,
    rev: std::sync::OnceLock<RevCsr>,
}

impl Graph {
    /// Assembles a graph from already-sorted CSR arrays. Used by the builder;
    /// not public because it does not validate invariants.
    pub(crate) fn from_csr(
        n: usize,
        fwd_off: Vec<usize>,
        fwd_dst: Vec<NodeId>,
        fwd_prob: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(fwd_off.len(), n + 1);
        debug_assert_eq!(fwd_prob.len(), fwd_dst.len());
        Graph {
            n,
            fwd_off,
            fwd_dst,
            fwd_prob,
            rev: std::sync::OnceLock::new(),
        }
    }

    /// The reverse CSR, built on first use.
    #[inline]
    fn rev(&self) -> &RevCsr {
        self.rev
            .get_or_init(|| build_reverse(self.n, &self.fwd_off, &self.fwd_dst, &self.fwd_prob))
    }

    /// Raw forward-CSR columns `(offsets, targets, probabilities)` for the
    /// snapshot encoder. Crate-private: the slices expose internal layout.
    pub(crate) fn csr_columns(&self) -> (&[usize], &[NodeId], &[f64]) {
        (&self.fwd_off, &self.fwd_dst, &self.fwd_prob)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.fwd_dst.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.fwd_off[u + 1] - self.fwd_off[u]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        let rev = self.rev();
        rev.off[v + 1] - rev.off[v]
    }

    /// Outgoing neighbors of `u` with propagation probabilities, sorted by id.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let u = u as usize;
        let r = self.fwd_off[u]..self.fwd_off[u + 1];
        self.fwd_dst[r.clone()]
            .iter()
            .copied()
            .zip(self.fwd_prob[r].iter().copied())
    }

    /// Outgoing neighbors of `u` together with the forward edge index.
    #[inline]
    pub fn out_edges_indexed(&self, u: NodeId) -> impl Iterator<Item = (u32, NodeId, f64)> + '_ {
        let u = u as usize;
        let r = self.fwd_off[u]..self.fwd_off[u + 1];
        r.clone()
            .map(u32_of)
            .zip(self.fwd_dst[r.clone()].iter().copied())
            .zip(self.fwd_prob[r].iter().copied())
            .map(|((e, v), p)| (e, v, p))
    }

    /// Incoming neighbors of `v`: `(source, probability, forward edge index)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64, u32)> + '_ {
        let v = v as usize;
        let rev = self.rev();
        rev.adj[rev.off[v]..rev.off[v + 1]]
            .iter()
            .map(|&(u, e, p)| (u, p, e))
    }

    /// Probability attached to forward edge index `e`.
    #[inline]
    pub fn edge_prob(&self, e: u32) -> f64 {
        self.fwd_prob[e as usize]
    }

    /// Destination of forward edge index `e`.
    #[inline]
    pub fn edge_dst(&self, e: u32) -> NodeId {
        self.fwd_dst[e as usize]
    }

    /// Iterates every edge as `(u, v, p)` in forward CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_edges(u as NodeId)
                .map(move |(v, p)| (u as NodeId, v, p))
        })
    }

    /// Returns whether the directed edge `⟨u, v⟩` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let r = self.fwd_off[u as usize]..self.fwd_off[u as usize + 1];
        self.fwd_dst[r].binary_search(&v).is_ok()
    }

    /// Sum of incoming probabilities of `v`; the LT model requires this to be
    /// at most 1 for every node.
    pub fn in_prob_sum(&self, v: NodeId) -> f64 {
        self.in_edges(v).map(|(_, p, _)| p).sum()
    }

    /// `true` when every node's incoming probabilities sum to at most
    /// `1 + 1e-9` (tolerance for floating point accumulation), i.e. the graph
    /// is a valid LT instance.
    pub fn is_valid_lt(&self) -> bool {
        (0..self.n).all(|v| self.in_prob_sum(v as NodeId) <= 1.0 + 1e-9)
    }

    /// Replaces every edge probability via `f(u, v, current)` keeping the
    /// structure; used by [`weights`](crate::weights) to apply weight models.
    pub fn map_probabilities(&self, mut f: impl FnMut(NodeId, NodeId, f64) -> f64) -> Graph {
        let mut fwd_prob = Vec::with_capacity(self.m());
        for u in 0..self.n {
            for e in self.fwd_off[u]..self.fwd_off[u + 1] {
                fwd_prob.push(f(u as NodeId, self.fwd_dst[e], self.fwd_prob[e]));
            }
        }
        Graph::from_csr(self.n, self.fwd_off.clone(), self.fwd_dst.clone(), fwd_prob)
    }

    /// Memory footprint of the CSR arrays in bytes (diagnostics). Counts the
    /// reverse CSR as if materialized — its size is implied by `n` and `m` —
    /// so the figure is deterministic regardless of whether a reverse
    /// traversal has happened yet.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.fwd_off.len() * size_of::<usize>() * 2
            + self.fwd_dst.len()
                * (size_of::<NodeId>() * 2 + size_of::<f64>() * 2 + size_of::<u32>())
    }
}

/// Builds the reverse CSR from forward columns: a counting pass, a prefix
/// sum, then the scatter. Above [`MIN_PARALLEL_EDGES`] the target-id space is
/// split into contiguous ranges of roughly equal in-edge mass and each worker
/// scatters only its own range into its own disjoint slice of the record
/// array — slot positions are a pure function of the input, so the result is
/// bit-identical for every worker count.
fn build_reverse(n: usize, fwd_off: &[usize], fwd_dst: &[NodeId], fwd_prob: &[f64]) -> RevCsr {
    let m = fwd_dst.len();
    let mut off = vec![0usize; n + 1];
    for &v in fwd_dst {
        off[v as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut adj: Vec<(NodeId, u32, f64)> = vec![(0, 0, 0.0); m];
    let workers = build_workers(m);
    if workers <= 1 {
        scatter_reverse(0, n, fwd_off, fwd_dst, fwd_prob, &off, &mut adj);
    } else {
        let bounds = balance_bounds(&off, workers);
        std::thread::scope(|scope| {
            let mut rest: &mut [(NodeId, u32, f64)] = &mut adj;
            for w in 0..workers {
                let (vlo, vhi) = (bounds[w], bounds[w + 1]);
                let (mine, tail) = rest.split_at_mut(off[vhi] - off[vlo]);
                rest = tail;
                let off = &off;
                scope.spawn(move || {
                    scatter_reverse(vlo, vhi, fwd_off, fwd_dst, fwd_prob, off, mine);
                });
            }
        });
    }
    RevCsr { off, adj }
}

/// Scatters every forward edge whose target falls in `[vlo, vhi)` into `out`,
/// which covers reverse slots `[rev_off[vlo], rev_off[vhi])`. Slot positions
/// depend only on the input arrays (forward order within each target), so
/// concurrent workers on disjoint ranges reproduce the sequential result.
fn scatter_reverse(
    vlo: usize,
    vhi: usize,
    fwd_off: &[usize],
    fwd_dst: &[NodeId],
    fwd_prob: &[f64],
    rev_off: &[usize],
    out: &mut [(NodeId, u32, f64)],
) {
    let base = rev_off[vlo];
    let mut cursor: Vec<usize> = rev_off[vlo..vhi].to_vec();
    let n = fwd_off.len() - 1;
    for u in 0..n {
        for e in fwd_off[u]..fwd_off[u + 1] {
            let v = fwd_dst[e] as usize;
            if (vlo..vhi).contains(&v) {
                let slot = cursor[v - vlo];
                cursor[v - vlo] += 1;
                out[slot - base] = (u as NodeId, u32_of(e), fwd_prob[e]);
            }
        }
    }
}

/// Splits the target-id space `[0, n)` into `workers` contiguous ranges of
/// roughly equal in-edge mass, returning the `workers + 1` boundary ids.
fn balance_bounds(rev_off: &[usize], workers: usize) -> Vec<usize> {
    let n = rev_off.len() - 1;
    let m = rev_off[n];
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0usize);
    for w in 1..workers {
        let target = m * w / workers;
        let v = rev_off.partition_point(|&o| o < target).min(n);
        bounds.push(v.max(bounds[w - 1]));
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.25).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 0.75).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn adjacency_sorted_and_probs_attached() {
        let g = diamond();
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 0.5), (2, 0.25)]);
        let in3: Vec<_> = g.in_edges(3).map(|(u, p, _)| (u, p)).collect();
        assert_eq!(in3, vec![(1, 1.0), (2, 0.75)]);
    }

    #[test]
    fn rev_edge_ids_point_back_to_forward_edges() {
        let g = diamond();
        for v in 0..4u32 {
            for (u, p, e) in g.in_edges(v) {
                assert_eq!(g.edge_dst(e), v);
                assert_eq!(g.edge_prob(e), p);
                // edge e must appear in u's forward range
                let found = g.out_edges_indexed(u).any(|(fe, fv, _)| fe == e && fv == v);
                assert!(
                    found,
                    "edge ({u},{v}) id {e} missing from forward adjacency"
                );
            }
        }
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = diamond();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&(0, 1, 0.5)));
        assert!(all.contains(&(2, 3, 0.75)));
    }

    #[test]
    fn map_probabilities_keeps_structure() {
        let g = diamond();
        let g2 = g.map_probabilities(|_, _, p| p / 2.0);
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        let out0: Vec<_> = g2.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 0.25), (2, 0.125)]);
    }

    #[test]
    fn lt_validity_check() {
        let g = diamond();
        // node 3 receives 1.0 + 0.75 > 1 -> invalid LT instance
        assert!(!g.is_valid_lt());
        let g2 = g.map_probabilities(|_, v, p| if v == 3 { p / 2.0 } else { p });
        assert!(g2.is_valid_lt());
    }
}
