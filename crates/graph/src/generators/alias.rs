//! Walker alias method for O(1) weighted sampling.
//!
//! Used by the Chung–Lu generator, which must draw millions of endpoints from
//! a fixed power-law weight vector; the alias table turns each draw into one
//! uniform and one comparison.

use crate::cast::u32_of;
use rand::Rng;

/// Precomputed alias table over `weights.len()` outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (at least one must be
    /// positive).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must be finite and sum to a positive value"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "negative or non-finite weight");
        }

        let k = weights.len();
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; k];

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(u32_of(i));
            } else {
                large.push(u32_of(i));
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical residue: anything left is effectively probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table has no outcomes (never constructible).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index proportionally to the original weights.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            u32_of(i)
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn respects_weights_statistically() {
        let weights = [1.0, 2.0, 7.0];
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..3 {
            let expected = weights[i] / total;
            let observed = counts[i] as f64 / draws as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sum to a positive")]
    fn all_zero_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_panics() {
        let _ = AliasTable::new(&[]);
    }
}
