//! Watts–Strogatz small-world rewiring (undirected pair list).

use crate::cast::u32_of;
use crate::csr::NodeId;
use rand::Rng;
// smin-lint: allow(no-hash-iteration) -- dedup set below is insert-only, never iterated
use std::collections::HashSet;

/// Ring lattice over `n` nodes where each node connects to its `k/2` nearest
/// neighbors on each side, then each edge's far endpoint is rewired with
/// probability `beta` to a uniform non-duplicate target. Returns undirected
/// pairs.
///
/// # Panics
/// Panics unless `k` is even, `k ≥ 2`, and `n > k`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and ≥ 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta), "beta must lie in [0, 1]");

    // smin-lint: allow(no-hash-iteration) -- membership test only; edge order follows the ring scan
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(n * k / 2);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    let norm = |u: NodeId, v: NodeId| (u.min(v), u.max(v));

    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = ((u + j) % n) as NodeId;
            let u = u as NodeId;
            let (mut a, mut b) = (u, v);
            if rng.random::<f64>() < beta {
                // rewire the far endpoint
                let mut tries = 0;
                loop {
                    let w = rng.random_range(0..u32_of(n));
                    if w != u && !seen.contains(&norm(u, w)) {
                        a = u;
                        b = w;
                        break;
                    }
                    tries += 1;
                    if tries > 64 {
                        break; // keep the lattice edge; graph nearly full
                    }
                }
            }
            if seen.insert(norm(a, b)) {
                edges.push((a, b));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_beta_is_pure_lattice() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 20;
        let k = 4;
        let edges = watts_strogatz(n, k, 0.0, &mut rng);
        assert_eq!(edges.len(), n * k / 2);
        for &(u, v) in &edges {
            let d = (v as i64 - u as i64).rem_euclid(n as i64);
            let ring = d.min(n as i64 - d);
            assert!(ring as usize <= k / 2, "non-lattice edge ({u},{v})");
        }
    }

    #[test]
    fn rewiring_changes_some_edges() {
        let n = 100;
        let k = 4;
        let lattice = watts_strogatz(n, k, 0.0, &mut SmallRng::seed_from_u64(5));
        let rewired = watts_strogatz(n, k, 0.5, &mut SmallRng::seed_from_u64(5));
        let l: HashSet<_> = lattice.iter().collect();
        let moved = rewired.iter().filter(|e| !l.contains(e)).count();
        assert!(moved > 0, "beta = 0.5 should rewire something");
    }

    #[test]
    fn no_duplicates_or_loops() {
        let edges = watts_strogatz(60, 6, 0.3, &mut SmallRng::seed_from_u64(9));
        let mut set = HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v);
            assert!(set.insert((u.min(v), u.max(v))));
        }
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_panics() {
        let _ = watts_strogatz(10, 3, 0.1, &mut SmallRng::seed_from_u64(1));
    }
}
