//! R-MAT / Kronecker-style recursive matrix generator (Chakrabarti et al.
//! 2004) — the other standard synthetic model in the influence-maximization
//! literature. Produces self-similar graphs with heavy-tailed degrees and
//! pronounced community structure (unlike Chung–Lu, whose edges are
//! independent given the weights).

use crate::csr::NodeId;
use rand::Rng;
// smin-lint: allow(no-hash-iteration) -- dedup set below is insert-only, never iterated
use std::collections::HashSet;

/// R-MAT quadrant probabilities. Must be positive and sum to 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left (both endpoints in the "dense" half).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl Default for RmatParams {
    /// The canonical social-graph setting (a = 0.57, b = c = 0.19,
    /// d = 0.05), as used by the Graph500 benchmark.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT quadrant probabilities must sum to 1 (got {sum})"
        );
        assert!(
            self.a > 0.0 && self.b > 0.0 && self.c > 0.0 && self.d > 0.0,
            "R-MAT quadrant probabilities must be positive"
        );
    }
}

/// Generates `m` distinct directed edges over `n = 2^scale` nodes by
/// recursive quadrant descent, rejecting self loops and duplicates.
pub fn rmat(scale: u32, m: usize, params: RmatParams, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    params.validate();
    assert!((1..=30).contains(&scale), "scale must be in [1, 30]");
    let n: u64 = 1 << scale;
    assert!(
        (m as u128) <= (n as u128) * (n as u128 - 1),
        "cannot place {m} distinct directed edges on {n} nodes"
    );

    // smin-lint: allow(no-hash-iteration) -- membership test only; edge order comes from the RNG stream
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    let ab = params.a + params.b;
    while edges.len() < m {
        let mut u = 0u64;
        let mut v = 0u64;
        for _ in 0..scale {
            let row = rng.random::<f64>() < ab; // stay in the top half?
            let col = if row {
                rng.random::<f64>() < params.a / ab
            } else {
                rng.random::<f64>() < params.c / (params.c + params.d)
            };
            u = (u << 1) | u64::from(!row);
            v = (v << 1) | u64::from(!col);
        }
        if u == v {
            continue;
        }
        if seen.insert(u << 32 | v) {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn produces_exact_count_distinct() {
        let mut rng = SmallRng::seed_from_u64(1);
        let edges = rmat(8, 1_000, RmatParams::default(), &mut rng);
        assert_eq!(edges.len(), 1_000);
        let set: HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 1_000);
        for &(u, v) in &edges {
            assert_ne!(u, v);
            assert!(u < 256 && v < 256);
        }
    }

    #[test]
    fn skewed_quadrants_make_hubs() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 1usize << 11;
        let edges = rmat(11, 10_000, RmatParams::default(), &mut rng);
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = 2.0 * edges.len() as f64 / n as f64;
        assert!(
            max as f64 > 10.0 * avg,
            "R-MAT must produce hubs: max {max}, avg {avg:.1}"
        );
    }

    #[test]
    fn uniform_quadrants_reduce_to_er_like() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 1usize << 10;
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let edges = rmat(10, 8_000, params, &mut rng);
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap() as f64;
        let avg = 2.0 * edges.len() as f64 / n as f64;
        assert!(
            max < 4.0 * avg,
            "uniform R-MAT should have no hubs: max {max}, avg {avg}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = rmat(
            6,
            100,
            RmatParams::default(),
            &mut SmallRng::seed_from_u64(5),
        );
        let b = rmat(
            6,
            100,
            RmatParams::default(),
            &mut SmallRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_panic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rmat(
            4,
            10,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            &mut rng,
        );
    }

    #[test]
    fn integrates_with_assemble_and_asm() {
        use crate::generators::assemble;
        use crate::weights::WeightModel;
        let mut rng = SmallRng::seed_from_u64(9);
        let pairs = rmat(9, 3_000, RmatParams::default(), &mut rng);
        let g = assemble(512, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
        assert_eq!(g.n(), 512);
        assert_eq!(g.m(), 3_000);
        assert!(g.is_valid_lt());
    }
}
