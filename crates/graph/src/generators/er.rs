//! Erdős–Rényi G(n, m) with distinct directed edges.

use crate::cast::u32_of;
use crate::csr::NodeId;
use rand::Rng;
// smin-lint: allow(no-hash-iteration) -- dedup set below is insert-only, never iterated
use std::collections::HashSet;

/// Samples exactly `m` distinct directed edges uniformly at random (no self
/// loops). Useful as a no-hubs control against the power-law families.
pub fn erdos_renyi(n: usize, m: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = (n as u128) * (n as u128 - 1);
    assert!(
        (m as u128) <= max_edges,
        "cannot place {m} distinct directed edges on {n} nodes"
    );

    // Dense regime: shuffle-sample from the full edge universe to avoid
    // rejection stalls.
    if (m as u128) * 3 > max_edges {
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(max_edges as usize);
        for u in 0..u32_of(n) {
            for v in 0..u32_of(n) {
                if u != v {
                    all.push((u, v));
                }
            }
        }
        // partial Fisher–Yates for the first m slots
        for i in 0..m {
            let j = rng.random_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(m);
        return all;
    }

    // smin-lint: allow(no-hash-iteration) -- membership test only; edge order comes from the RNG stream
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..u32_of(n));
        let v = rng.random_range(0..u32_of(n));
        if u == v {
            continue;
        }
        if seen.insert((u as u64) << 32 | v as u64) {
            edges.push((u, v));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_count_distinct() {
        let mut rng = SmallRng::seed_from_u64(3);
        let edges = erdos_renyi(100, 500, &mut rng);
        assert_eq!(edges.len(), 500);
        let set: HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 500);
        assert!(edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn dense_regime_works() {
        let mut rng = SmallRng::seed_from_u64(3);
        // 5 nodes -> 20 possible edges; ask for 18 (> 2/3 dense).
        let edges = erdos_renyi(5, 18, &mut rng);
        assert_eq!(edges.len(), 18);
        let set: HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 18);
    }

    #[test]
    fn full_graph() {
        let mut rng = SmallRng::seed_from_u64(3);
        let edges = erdos_renyi(4, 12, &mut rng);
        assert_eq!(edges.len(), 12);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn over_full_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = erdos_renyi(4, 13, &mut rng);
    }
}
