//! Barabási–Albert preferential attachment (undirected pair list).

use crate::csr::NodeId;
use rand::Rng;

/// Classic BA model: start from a clique of `m_attach + 1` nodes, then each
/// new node attaches to `m_attach` distinct existing nodes chosen with
/// probability proportional to their current degree (implemented with the
/// repeated-endpoint urn). Returns undirected pairs `(u, v)` with `u < v`
/// implied by construction order; mirror them for a directed graph.
pub fn barabasi_albert(n: usize, m_attach: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    assert!(m_attach >= 1, "attachment count must be at least 1");
    assert!(
        n > m_attach,
        "need more nodes ({n}) than attachments per node ({m_attach})"
    );

    let seed = m_attach + 1;
    let mut edges: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(seed * (seed - 1) / 2 + (n - seed) * m_attach);
    // Urn of endpoints: a node appears once per incident edge.
    let mut urn: Vec<NodeId> = Vec::with_capacity(2 * edges.capacity());

    for u in 0..seed {
        for v in (u + 1)..seed {
            edges.push((u as NodeId, v as NodeId));
            urn.push(u as NodeId);
            urn.push(v as NodeId);
        }
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(m_attach);
    for u in seed..n {
        targets.clear();
        while targets.len() < m_attach {
            let t = urn[rng.random_range(0..urn.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((u as NodeId, t));
            urn.push(u as NodeId);
            urn.push(t);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_matches_formula() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 200;
        let m_attach = 3;
        let edges = barabasi_albert(n, m_attach, &mut rng);
        let seed = m_attach + 1;
        assert_eq!(edges.len(), seed * (seed - 1) / 2 + (n - seed) * m_attach);
    }

    #[test]
    fn no_self_loops_or_duplicate_attachments() {
        let mut rng = SmallRng::seed_from_u64(2);
        let edges = barabasi_albert(300, 2, &mut rng);
        let mut set = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v);
            let key = (u.min(v), u.max(v));
            assert!(set.insert(key), "duplicate undirected edge {key:?}");
        }
    }

    #[test]
    fn rich_get_richer() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 3_000;
        let edges = barabasi_albert(n, 2, &mut rng);
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = 2.0 * edges.len() as f64 / n as f64;
        assert!(
            max as f64 > 10.0 * avg,
            "BA should produce hubs: max {max}, avg {avg}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(4));
        let b = barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
