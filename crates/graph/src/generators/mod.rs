//! Synthetic social-network generators.
//!
//! The paper evaluates on four SNAP datasets (NetHEPT, Epinions, Youtube,
//! LiveJournal). Those files are not redistributable with this repository, so
//! the benchmark harness substitutes structurally-matched synthetic graphs:
//! a directed Chung–Lu model reproduces each dataset's size and power-law
//! degree shape (Figure 3), and the classic Barabási–Albert, Erdős–Rényi and
//! Watts–Strogatz models are provided for ablations and tests.
//!
//! Every generator is deterministic given the `Rng` it is handed.

mod alias;
mod ba;
mod chung_lu;
mod er;
mod rmat;
mod ws;

pub use alias::AliasTable;
pub use ba::barabasi_albert;
pub use chung_lu::{chung_lu_directed, power_law_weights};
pub use er::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;

use crate::csr::NodeId;
use crate::error::GraphError;
use crate::weights::{apply_weights, WeightModel};
use crate::{Graph, GraphBuilder};
use rand::Rng;

/// Turns a generated pair list into a weighted [`Graph`], mirroring edges for
/// undirected families and applying `model` afterwards.
pub fn assemble(
    n: usize,
    pairs: &[(NodeId, NodeId)],
    directed: bool,
    model: WeightModel,
    rng: &mut impl Rng,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::with_capacity(
        n,
        if directed {
            pairs.len()
        } else {
            pairs.len() * 2
        },
    );
    for &(u, v) in pairs {
        if directed {
            b.add_edge(u, v)?;
        } else {
            b.add_undirected_p(u, v, 1.0)?;
        }
    }
    let structural = b.build()?;
    Ok(apply_weights(&structural, model, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn assemble_undirected_mirrors() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = assemble(
            3,
            &[(0, 1), (1, 2)],
            false,
            WeightModel::Uniform(0.2),
            &mut rng,
        )
        .unwrap();
        assert_eq!(g.m(), 4);
        assert!(g.has_edge(2, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn assemble_directed_keeps_orientation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = assemble(3, &[(0, 1)], true, WeightModel::WeightedCascade, &mut rng).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }
}
