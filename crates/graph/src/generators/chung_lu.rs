//! Directed Chung–Lu power-law generator.
//!
//! Draws exactly `m` directed edges whose endpoints are sampled from a
//! power-law weight sequence (sources by out-weight, targets by in-weight),
//! rejecting self loops and duplicates. This reproduces the heavy-tailed
//! in/out degree distributions of the SNAP datasets in Figure 3 while letting
//! us match `n` and `m` exactly — which is what the seed-minimization
//! algorithms are actually sensitive to.

use super::alias::AliasTable;
use crate::cast::u32_of;
use crate::csr::NodeId;
use rand::Rng;
// smin-lint: allow(no-hash-iteration) -- dedup set below is insert-only, never iterated
use std::collections::HashSet;

/// Power-law weights `w_i = (i + i0)^(−1/(γ−1))` for `i = 0..n`, the standard
/// Chung–Lu recipe producing degree exponent `γ`. The offset `i0` caps the
/// maximum expected degree (larger `i0` → flatter head).
pub fn power_law_weights(n: usize, gamma: f64, i0: f64) -> Vec<f64> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(i0 >= 0.0, "offset must be non-negative");
    let alpha = 1.0 / (gamma - 1.0);
    (0..n).map(|i| (i as f64 + i0 + 1.0).powf(-alpha)).collect()
}

/// Generates `m` distinct directed edges over `n` nodes with power-law
/// endpoint bias. `gamma` controls the tail exponent (≈2.1 matches the tested
/// datasets); node identities are shuffled so low ids are not systematically
/// hubs.
///
/// # Panics
/// Panics if `m` exceeds `n·(n−1)` (impossible to place) or if the rejection
/// loop cannot make progress (`m` too close to dense).
pub fn chung_lu_directed(
    n: usize,
    m: usize,
    gamma: f64,
    rng: &mut impl Rng,
) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        (m as u128) <= (n as u128) * (n as u128 - 1),
        "cannot place {m} distinct directed edges on {n} nodes"
    );

    // Independent hub orderings for out- and in-weights, so out-hubs are not
    // automatically in-hubs (matches real social graphs better).
    let mut out_perm: Vec<u32> = (0..u32_of(n)).collect();
    let mut in_perm: Vec<u32> = (0..u32_of(n)).collect();
    shuffle(&mut out_perm, rng);
    shuffle(&mut in_perm, rng);

    let base = power_law_weights(n, gamma, (n as f64).sqrt().min(50.0));
    let mut out_w = vec![0.0f64; n];
    let mut in_w = vec![0.0f64; n];
    for i in 0..n {
        out_w[out_perm[i] as usize] = base[i];
        in_w[in_perm[i] as usize] = base[i];
    }
    let out_table = AliasTable::new(&out_w);
    let in_table = AliasTable::new(&in_w);

    // smin-lint: allow(no-hash-iteration) -- membership test only; edge order comes from the RNG stream
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    let mut stall = 0usize;
    let stall_limit = 100 * m.max(1024);
    while edges.len() < m {
        let u = out_table.sample(rng);
        let v = in_table.sample(rng);
        if u == v {
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            edges.push((u, v));
            stall = 0;
        } else {
            stall += 1;
            assert!(
                stall < stall_limit,
                "chung_lu_directed stalled: graph too dense for rejection sampling"
            );
        }
    }
    edges
}

fn shuffle(v: &mut [u32], rng: &mut impl Rng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count_no_dups_no_loops() {
        let mut rng = SmallRng::seed_from_u64(11);
        let edges = chung_lu_directed(500, 2_000, 2.1, &mut rng);
        assert_eq!(edges.len(), 2_000);
        let mut set = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v);
            assert!(set.insert((u, v)), "duplicate edge ({u},{v})");
            assert!((u as usize) < 500 && (v as usize) < 500);
        }
    }

    #[test]
    fn heavy_tail_present() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 2_000;
        let edges = chung_lu_directed(n, 10_000, 2.1, &mut rng);
        let mut outdeg = vec![0usize; n];
        for &(u, _) in &edges {
            outdeg[u as usize] += 1;
        }
        let max = *outdeg.iter().max().unwrap();
        let avg = 10_000.0 / n as f64;
        // A power-law graph has hubs far above the mean; uniform G(n,m) would
        // concentrate near avg.
        assert!(
            max as f64 > 8.0 * avg,
            "expected hub degree >> average ({max} vs avg {avg})"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = chung_lu_directed(100, 400, 2.2, &mut SmallRng::seed_from_u64(9));
        let b = chung_lu_directed(100, 400, 2.2, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn power_law_weights_decreasing() {
        let w = power_law_weights(100, 2.1, 10.0);
        for i in 1..w.len() {
            assert!(w[i] <= w[i - 1]);
            assert!(w[i] > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_edges_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = chung_lu_directed(3, 7, 2.1, &mut rng);
    }
}
