//! Edge probability (weight) models.
//!
//! The paper's experiments use the *weighted cascade* (WC) convention
//! `p(⟨u, v⟩) = 1 / indeg(v)` (§6.1), which also yields a valid LT instance
//! because incoming probabilities sum to exactly 1. Uniform and trivalency
//! models are provided for completeness — they are the other two standard
//! conventions in the influence maximization literature.

use crate::csr::Graph;
use rand::Rng;

/// The trivalency probability palette of Chen et al. (KDD'10).
pub const TRIVALENCY: [f64; 3] = [0.1, 0.01, 0.001];

/// How to assign propagation probabilities to edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightModel {
    /// `p(⟨u, v⟩) = 1 / indeg(v)` — the paper's setting.
    WeightedCascade,
    /// Every edge gets the same probability.
    Uniform(f64),
    /// Each edge draws uniformly from `{0.1, 0.01, 0.001}`.
    Trivalency,
}

/// Returns a copy of `g` with probabilities reassigned according to `model`.
///
/// `rng` is only consulted by [`WeightModel::Trivalency`]; the other models
/// are deterministic.
pub fn apply_weights(g: &Graph, model: WeightModel, rng: &mut impl Rng) -> Graph {
    match model {
        WeightModel::WeightedCascade => {
            g.map_probabilities(|_, v, _| 1.0 / g.in_degree(v).max(1) as f64)
        }
        WeightModel::Uniform(p) => {
            assert!(p > 0.0 && p <= 1.0, "uniform probability must be in (0, 1]");
            g.map_probabilities(|_, _, _| p)
        }
        WeightModel::Trivalency => {
            g.map_probabilities(|_, _, _| TRIVALENCY[rng.random_range(0..3usize)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn star() -> Graph {
        // 0, 1, 2 all point at 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3).unwrap();
        b.add_edge(1, 3).unwrap();
        b.add_edge(2, 3).unwrap();
        b.add_edge(3, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weighted_cascade_is_one_over_indeg() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(1);
        let wc = apply_weights(&g, WeightModel::WeightedCascade, &mut rng);
        for (u, p, _) in wc.in_edges(3) {
            assert!((p - 1.0 / 3.0).abs() < 1e-12, "edge from {u} has p = {p}");
        }
        let (_, p, _) = wc.in_edges(0).next().unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn weighted_cascade_yields_valid_lt() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(1);
        let wc = apply_weights(&g, WeightModel::WeightedCascade, &mut rng);
        assert!(wc.is_valid_lt());
        for v in 0..4u32 {
            if wc.in_degree(v) > 0 {
                assert!((wc.in_prob_sum(v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uniform_sets_every_edge() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(1);
        let u = apply_weights(&g, WeightModel::Uniform(0.05), &mut rng);
        assert!(u.edges().all(|(_, _, p)| p == 0.05));
    }

    #[test]
    fn trivalency_uses_palette() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(7);
        let t = apply_weights(&g, WeightModel::Trivalency, &mut rng);
        assert!(t.edges().all(|(_, _, p)| TRIVALENCY.contains(&p)));
    }

    #[test]
    #[should_panic(expected = "uniform probability")]
    fn uniform_rejects_zero() {
        let g = star();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = apply_weights(&g, WeightModel::Uniform(0.0), &mut rng);
    }
}
