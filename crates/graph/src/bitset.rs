//! Word-packed fixed-capacity bitset.
//!
//! The sampling hot paths keep several "is index `i` in the current set?"
//! masks alive across millions of queries (reverse-BFS frontiers, covered-set
//! masks in the greedy cover). `Vec<bool>` spends a byte per flag and defeats
//! vectorized clearing; [`FixedBitSet`] packs 64 flags per word so clears,
//! unions and population counts run a word at a time, and a graph-sized mask
//! fits in L2 where the byte vector would not.
//!
//! Complementary to [`GenStamp`](crate::stamp::GenStamp): the stamp wins when
//! a query touches few indices and resets every query; the bitset wins when
//! membership persists across many operations (covered sets accumulate over
//! a whole greedy run) or when whole-set operations (union, count) matter.

/// A set of indices `0..len`, packed 64 per `u64` word.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// An empty set over indices `0..len`.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices the set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the set holds no capacity at all (`len == 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows capacity to at least `len` indices (never shrinks); new indices
    /// start unset. Existing membership is preserved.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Clears every bit in O(words) — one `memset`, not a per-flag loop.
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Inserts `i`; returns `true` iff it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns `true` iff it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// In-place union: `self |= other`. Panics unless both sets have the
    /// same capacity.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place union that also reports how many bits it freshly set — one
    /// `popcnt` per word, no second counting pass. Panics unless both sets
    /// have the same capacity.
    pub fn union_count(&mut self, other: &FixedBitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut fresh = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            fresh += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        fresh
    }

    /// Inserts the whole word-sized batch `mask` into word `wi` (indices
    /// `wi*64 + bit` for each set bit), returning the sub-mask of bits that
    /// were **not** already present. This is the 64-at-a-time form of
    /// [`insert`](FixedBitSet::insert) the coverage kernels batch on.
    #[inline]
    pub fn insert_word(&mut self, wi: usize, mask: u64) -> u64 {
        debug_assert!(wi < self.words.len(), "word index {wi} out of range");
        debug_assert!(
            mask == 0 || (wi << 6) + 63 - (mask.leading_zeros() as usize) < self.len,
            "mask sets bits beyond the capacity"
        );
        let w = &mut self.words[wi];
        let fresh = mask & !*w;
        *w |= mask;
        fresh
    }

    /// Number of set bits, one `popcnt` per word.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits in the index range `lo..hi`, computed a word at a
    /// time: the boundary words are masked, everything between is a plain
    /// `popcnt` — no per-bit probing.
    pub fn count_ones_range(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi <= self.len, "range {lo}..{hi} out of bounds");
        if lo == hi {
            return 0;
        }
        let (wl, wh) = (lo >> 6, (hi - 1) >> 6);
        let lo_mask = !0u64 << (lo & 63);
        // bits strictly above hi-1 are cleared from the last word
        let hi_mask = !0u64 >> (63 - ((hi - 1) & 63));
        if wl == wh {
            return (self.words[wl] & lo_mask & hi_mask).count_ones() as usize;
        }
        let mut total = (self.words[wl] & lo_mask).count_ones() as usize;
        for &w in &self.words[wl + 1..wh] {
            total += w.count_ones() as usize;
        }
        total + (self.words[wh] & hi_mask).count_ones() as usize
    }

    /// The backing words, 64 indices each (`index = word*64 + bit`). Word
    /// granularity is the contract the batched coverage kernels build on.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates set indices in increasing order, skipping empty words: an
    /// all-zero stretch costs one load + compare per 64 indices, and within
    /// a non-empty word each set bit is found by `trailing_zeros` — the
    /// iterator never probes indices bit by bit.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            current: 0,
            wi: 0,
        }
    }

    /// Heap bytes held by the backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

/// Word-skipping iterator over the set indices of a [`FixedBitSet`]
/// (see [`FixedBitSet::ones`]).
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    /// Words not yet fully consumed (`words[0]`'s remaining bits live in
    /// `current`).
    words: &'a [u64],
    /// Unconsumed bits of the word *before* `words` starts.
    current: u64,
    /// Index of the word `current` was taken from.
    wi: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            let (&w, rest) = self.words.split_first()?;
            self.words = rest;
            self.wi += 1;
            self.current = w;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(((self.wi - 1) << 6) | bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let exact = self.current.count_ones() as usize
            + self
                .words
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (exact, Some(exact))
    }
}

impl ExactSizeIterator for Ones<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "double insert reports already-present");
        assert!(s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count_ones(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = FixedBitSet::new(200);
        for i in (0..200).step_by(3) {
            s.insert(i);
        }
        s.clear();
        assert_eq!(s.count_ones(), 0);
        assert!((0..200).all(|i| !s.contains(i)));
    }

    #[test]
    fn grow_preserves_and_extends() {
        let mut s = FixedBitSet::new(10);
        s.insert(7);
        s.grow(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(7));
        assert!(!s.contains(99));
        s.insert(99);
        assert_eq!(s.count_ones(), 2);
        s.grow(5); // never shrinks
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn union_and_ones() {
        let mut a = FixedBitSet::new(70);
        let mut b = FixedBitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(2);
        b.insert(65);
        a.union_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![1, 2, 65]);
        assert_eq!(a.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_requires_equal_capacity() {
        let mut a = FixedBitSet::new(10);
        let b = FixedBitSet::new(20);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_count_requires_equal_capacity() {
        let mut a = FixedBitSet::new(10);
        let b = FixedBitSet::new(20);
        a.union_count(&b);
    }

    #[test]
    fn union_count_reports_fresh_bits() {
        let mut a = FixedBitSet::new(130);
        let mut b = FixedBitSet::new(130);
        for i in [0usize, 5, 64, 129] {
            a.insert(i);
        }
        for i in [5usize, 64, 100, 128] {
            b.insert(i);
        }
        // fresh in b: 100 and 128
        assert_eq!(a.union_count(&b), 2);
        assert_eq!(a.count_ones(), 6);
        // idempotent: nothing fresh the second time
        assert_eq!(a.union_count(&b), 0);
    }

    #[test]
    fn insert_word_returns_fresh_mask() {
        let mut s = FixedBitSet::new(200);
        s.insert(64);
        s.insert(67);
        // word 1 currently holds bits {0, 3}; inserting {0, 1, 3, 5} is
        // fresh only at {1, 5}
        let fresh = s.insert_word(1, 0b101011);
        assert_eq!(fresh, 0b100010);
        assert_eq!(s.count_ones(), 4);
        assert!(s.contains(65) && s.contains(69));
        // whole-word insert into an empty word is all fresh
        assert_eq!(s.insert_word(2, u64::MAX), u64::MAX);
        assert_eq!(s.count_ones(), 4 + 64);
        // empty mask is a no-op
        assert_eq!(s.insert_word(0, 0), 0);
    }

    #[test]
    fn count_ones_range_matches_filtered_ones() {
        let mut s = FixedBitSet::new(300);
        for i in (0..300).step_by(7) {
            s.insert(i);
        }
        for (lo, hi) in [(0, 300), (0, 0), (63, 65), (64, 128), (1, 299), (130, 131)] {
            let expected = s.ones().filter(|&i| lo <= i && i < hi).count();
            assert_eq!(s.count_ones_range(lo, hi), expected, "range {lo}..{hi}");
        }
        assert_eq!(s.count_ones_range(0, 300), s.count_ones());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn count_ones_range_rejects_bad_range() {
        FixedBitSet::new(10).count_ones_range(0, 11);
    }

    #[test]
    fn ones_skips_empty_words_and_stays_exact() {
        // set bits only in the first and last of 8 words: the iterator must
        // report exactly those, in order, with an exact size_hint.
        let mut s = FixedBitSet::new(512);
        for i in [3usize, 17, 448, 511] {
            s.insert(i);
        }
        let it = s.ones();
        assert_eq!(it.len(), 4, "exact-size iterator");
        assert_eq!(it.collect::<Vec<_>>(), vec![3, 17, 448, 511]);
        // empty set yields nothing
        assert_eq!(FixedBitSet::new(512).ones().count(), 0);
    }
}
