//! Word-packed fixed-capacity bitset.
//!
//! The sampling hot paths keep several "is index `i` in the current set?"
//! masks alive across millions of queries (reverse-BFS frontiers, covered-set
//! masks in the greedy cover). `Vec<bool>` spends a byte per flag and defeats
//! vectorized clearing; [`FixedBitSet`] packs 64 flags per word so clears,
//! unions and population counts run a word at a time, and a graph-sized mask
//! fits in L2 where the byte vector would not.
//!
//! Complementary to [`GenStamp`](crate::stamp::GenStamp): the stamp wins when
//! a query touches few indices and resets every query; the bitset wins when
//! membership persists across many operations (covered sets accumulate over
//! a whole greedy run) or when whole-set operations (union, count) matter.

/// A set of indices `0..len`, packed 64 per `u64` word.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixedBitSet {
    words: Vec<u64>,
    len: usize,
}

impl FixedBitSet {
    /// An empty set over indices `0..len`.
    pub fn new(len: usize) -> Self {
        FixedBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of indices the set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the set holds no capacity at all (`len == 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows capacity to at least `len` indices (never shrinks); new indices
    /// start unset. Existing membership is preserved.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }

    /// Clears every bit in O(words) — one `memset`, not a per-flag loop.
    #[inline]
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Inserts `i`; returns `true` iff it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns `true` iff it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// In-place union: `self |= other`. Panics unless both sets have the
    /// same capacity.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of set bits, one `popcnt` per word.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates set indices in increasing order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | bit)
            })
        })
    }

    /// Heap bytes held by the backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "double insert reports already-present");
        assert!(s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count_ones(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = FixedBitSet::new(200);
        for i in (0..200).step_by(3) {
            s.insert(i);
        }
        s.clear();
        assert_eq!(s.count_ones(), 0);
        assert!((0..200).all(|i| !s.contains(i)));
    }

    #[test]
    fn grow_preserves_and_extends() {
        let mut s = FixedBitSet::new(10);
        s.insert(7);
        s.grow(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(7));
        assert!(!s.contains(99));
        s.insert(99);
        assert_eq!(s.count_ones(), 2);
        s.grow(5); // never shrinks
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn union_and_ones() {
        let mut a = FixedBitSet::new(70);
        let mut b = FixedBitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(2);
        b.insert(65);
        a.union_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![1, 2, 65]);
        assert_eq!(a.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_requires_equal_capacity() {
        let mut a = FixedBitSet::new(10);
        let b = FixedBitSet::new(20);
        a.union_with(&b);
    }
}
