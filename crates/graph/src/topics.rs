//! Topic-aware influence probabilities (the TIC model of Barbieri et al.,
//! referenced in §2 of the paper).
//!
//! In the topic-aware independent cascade model every edge carries a
//! probability *per topic*; a concrete campaign (an "item") is a mixture
//! over topics, and the effective edge probability is the mixture-weighted
//! combination. Because the ASM algorithms only see a [`Graph`] with scalar
//! probabilities, topic-awareness reduces to *materializing the mixture*:
//! build a [`TopicGraph`] once, then derive a plain [`Graph`] per campaign
//! with [`TopicGraph::for_mixture`] and run ASTI on it unchanged — exactly
//! the extension path the paper describes.

use crate::cast::u32_of;
use crate::csr::Graph;
use crate::error::GraphError;
use rand::Rng;

/// A graph whose edges carry one probability per topic.
#[derive(Clone, Debug)]
pub struct TopicGraph {
    /// Structural graph; its scalar probabilities are ignored.
    structure: Graph,
    /// Number of topics `Z`.
    num_topics: usize,
    /// `probs[e * Z + z]` = probability of forward edge `e` under topic `z`.
    probs: Vec<f64>,
}

impl TopicGraph {
    /// Wraps a structural graph with per-topic edge probabilities.
    /// `probs[e][z]` must match the graph's forward edge order (the order of
    /// [`Graph::edges`]) and lie in `(0, 1]`.
    pub fn new(structure: Graph, num_topics: usize, probs: Vec<f64>) -> Result<Self, GraphError> {
        assert!(num_topics > 0, "need at least one topic");
        assert_eq!(
            probs.len(),
            structure.m() * num_topics,
            "need one probability per edge per topic"
        );
        for (i, &p) in probs.iter().enumerate() {
            if !(p > 0.0 && p <= 1.0) {
                let e = u32_of(i / num_topics);
                return Err(GraphError::InvalidProbability {
                    u: u32::MAX,
                    v: structure.edge_dst(e),
                    p,
                });
            }
        }
        Ok(TopicGraph {
            structure,
            num_topics,
            probs,
        })
    }

    /// Random topic probabilities: each edge's per-topic probability is its
    /// base probability scaled by an independent uniform `[0, 1]` affinity.
    /// A convenient synthetic TIC instance generator.
    pub fn random_affinities(structure: Graph, num_topics: usize, rng: &mut impl Rng) -> Self {
        let m = structure.m();
        let base: Vec<f64> = structure.edges().map(|(_, _, p)| p).collect();
        let mut probs = Vec::with_capacity(m * num_topics);
        for &b in &base {
            for _ in 0..num_topics {
                // keep within (0, 1]: affinity in (0.05, 1.0]
                let affinity = 0.05 + 0.95 * rng.random::<f64>();
                probs.push((b * affinity).clamp(f64::MIN_POSITIVE, 1.0));
            }
        }
        TopicGraph {
            structure,
            num_topics,
            probs,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// The structural graph.
    pub fn structure(&self) -> &Graph {
        &self.structure
    }

    /// Probability of forward edge `e` under topic `z`.
    pub fn edge_topic_prob(&self, e: u32, z: usize) -> f64 {
        self.probs[e as usize * self.num_topics + z]
    }

    /// Materializes the scalar graph for a campaign described by a topic
    /// mixture `γ` (non-negative, summing to 1 within tolerance):
    /// `p(e) = Σ_z γ_z · p_z(e)`.
    pub fn for_mixture(&self, mixture: &[f64]) -> Result<Graph, GraphError> {
        assert_eq!(mixture.len(), self.num_topics, "mixture arity mismatch");
        let total: f64 = mixture.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6 && mixture.iter().all(|&w| w >= 0.0),
            "mixture must be a probability distribution (sum = {total})"
        );
        let z = self.num_topics;
        let probs = &self.probs;
        let mut e = 0usize;
        Ok(self.structure.map_probabilities(|_, _, _| {
            let row = &probs[e * z..(e + 1) * z];
            e += 1;
            let p: f64 = row.iter().zip(mixture).map(|(p, w)| p * w).sum();
            p.clamp(f64::MIN_POSITIVE, 1.0)
        }))
    }

    /// Single-topic convenience: the graph under pure topic `z`.
    pub fn for_topic(&self, z: usize) -> Graph {
        assert!(z < self.num_topics);
        let mut mixture = vec![0.0; self.num_topics];
        mixture[z] = 1.0;
        self.for_mixture(&mixture).expect("pure mixture is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn base() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(1, 2, 0.8).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pure_topic_selects_column() {
        let g = base();
        // edge 0: topics (0.2, 0.6); edge 1: topics (0.9, 0.1)
        let tg = TopicGraph::new(g, 2, vec![0.2, 0.6, 0.9, 0.1]).unwrap();
        let g0 = tg.for_topic(0);
        let probs0: Vec<f64> = g0.edges().map(|(_, _, p)| p).collect();
        assert_eq!(probs0, vec![0.2, 0.9]);
        let g1 = tg.for_topic(1);
        let probs1: Vec<f64> = g1.edges().map(|(_, _, p)| p).collect();
        assert_eq!(probs1, vec![0.6, 0.1]);
    }

    #[test]
    fn mixture_is_weighted_average() {
        let tg = TopicGraph::new(base(), 2, vec![0.2, 0.6, 0.9, 0.1]).unwrap();
        let g = tg.for_mixture(&[0.25, 0.75]).unwrap();
        let probs: Vec<f64> = g.edges().map(|(_, _, p)| p).collect();
        assert!((probs[0] - (0.25 * 0.2 + 0.75 * 0.6)).abs() < 1e-12);
        assert!((probs[1] - (0.25 * 0.9 + 0.75 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn structure_preserved() {
        let tg = TopicGraph::new(base(), 2, vec![0.2, 0.6, 0.9, 0.1]).unwrap();
        let g = tg.for_mixture(&[0.5, 0.5]).unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(TopicGraph::new(base(), 2, vec![0.2, 0.6, 0.9, 1.5]).is_err());
        assert!(TopicGraph::new(base(), 2, vec![0.0, 0.6, 0.9, 0.1]).is_err());
    }

    #[test]
    #[should_panic(expected = "one probability per edge per topic")]
    fn rejects_wrong_arity() {
        let _ = TopicGraph::new(base(), 2, vec![0.2, 0.6, 0.9]);
    }

    #[test]
    #[should_panic(expected = "probability distribution")]
    fn rejects_bad_mixture() {
        let tg = TopicGraph::new(base(), 2, vec![0.2, 0.6, 0.9, 0.1]).unwrap();
        let _ = tg.for_mixture(&[0.7, 0.7]);
    }

    #[test]
    fn random_affinities_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let tg = TopicGraph::random_affinities(base(), 4, &mut rng);
        assert_eq!(tg.num_topics(), 4);
        for e in 0..2u32 {
            let base_p = tg.structure().edge_prob(e);
            for z in 0..4 {
                let p = tg.edge_topic_prob(e, z);
                assert!(p > 0.0 && p <= base_p + 1e-12, "edge {e} topic {z}: {p}");
            }
        }
        // mixtures remain valid graphs
        let g = tg.for_mixture(&[0.25; 4]).unwrap();
        assert!(g.edges().all(|(_, _, p)| p > 0.0 && p <= 1.0));
    }
}
