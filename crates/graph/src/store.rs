//! Versioned binary CSR snapshot format (`.smg`).
//!
//! A snapshot is one checksummed artifact that can be copied between machines
//! and opened in milliseconds: the forward CSR columns are written verbatim so
//! loading is `read_exact` + validation instead of text parsing, relabelling,
//! and sorting. The layout (all integers little-endian):
//!
//! ```text
//! offset  size        field
//! ------  ----        -----
//!      0     8        magic  89 'S' 'M' 'G' 0D 0A 1A 0A
//!      8     4        format version (currently 1)
//!     12     4        flags (must be 0 in version 1)
//!     16     8        n  (node count)
//!     24     8        m  (edge count)
//!     32     4        CRC32 of the offsets section
//!     36     4        CRC32 of the targets section
//!     40     4        CRC32 of the probabilities section
//!     44     4        CRC32 of header bytes [0, 44)
//!     48    16        reserved (zero)
//!     64  (n+1)*8     offsets:       fwd_off as u64
//!      …   m*4 (+pad) targets:       fwd_dst as u32, zero-padded to 8 bytes
//!      …   m*8        probabilities: fwd_prob as f64
//! ```
//!
//! The PNG-style magic (high bit set, embedded CR LF, ^Z, LF) catches text-mode
//! transfers and truncation-by-EOF corruption at byte 0. Every section carries
//! its own CRC32 (IEEE polynomial) so damage is attributed to a section, and
//! the targets column is padded to an 8-byte boundary so all three columns are
//! naturally aligned — a future mmap path on real hardware can reinterpret the
//! file in place without a repack.
//!
//! Encoding is deterministic: the same graph always produces byte-identical
//! snapshots, so `.smg` files can be compared with `cmp` and content-addressed
//! by [`content_checksum`].

use crate::csr::{Graph, NodeId};
use crate::error::{GraphError, StoreError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First 8 bytes of every `.smg` file.
pub const SMG_MAGIC: [u8; 8] = [0x89, b'S', b'M', b'G', 0x0D, 0x0A, 0x1A, 0x0A];

/// Format version written by this build (and the newest it can read).
pub const SMG_VERSION: u32 = 1;

/// Fixed header size in bytes; the offsets section starts here.
pub const SMG_HEADER_LEN: usize = 64;

/// Slicing-by-16 lookup tables. `tables[0]` is the classic byte-at-a-time
/// table; `tables[j]` advances a byte through `j` extra zero bytes, letting
/// [`Crc32::update`] fold 16 input bytes per iteration (roughly an order of
/// magnitude over the byte loop, which is what makes
/// checksum-on-every-load affordable on multi-million-edge snapshots).
const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        // smin-lint: allow(checked-cast) -- i < 256 always fits; const fn cannot call u32_of
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1usize;
    while j < 16 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        j += 1;
    }
    tables
}

const CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

/// Streaming CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant).
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Crc32 { state: !0 }
    }

    fn update(&mut self, bytes: &[u8]) {
        let t = &CRC_TABLES;
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(16);
        for ch in &mut chunks {
            let w0 = c ^ u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
            let w1 = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            let w2 = u32::from_le_bytes([ch[8], ch[9], ch[10], ch[11]]);
            let w3 = u32::from_le_bytes([ch[12], ch[13], ch[14], ch[15]]);
            c = t[15][(w0 & 0xFF) as usize]
                ^ t[14][((w0 >> 8) & 0xFF) as usize]
                ^ t[13][((w0 >> 16) & 0xFF) as usize]
                ^ t[12][((w0 >> 24) & 0xFF) as usize]
                ^ t[11][(w1 & 0xFF) as usize]
                ^ t[10][((w1 >> 8) & 0xFF) as usize]
                ^ t[9][((w1 >> 16) & 0xFF) as usize]
                ^ t[8][((w1 >> 24) & 0xFF) as usize]
                ^ t[7][(w2 & 0xFF) as usize]
                ^ t[6][((w2 >> 8) & 0xFF) as usize]
                ^ t[5][((w2 >> 16) & 0xFF) as usize]
                ^ t[4][((w2 >> 24) & 0xFF) as usize]
                ^ t[3][(w3 & 0xFF) as usize]
                ^ t[2][((w3 >> 8) & 0xFF) as usize]
                ^ t[1][((w3 >> 16) & 0xFF) as usize]
                ^ t[0][((w3 >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC32 of a byte slice (IEEE polynomial). Exposed for tests and tools that
/// need to recompute section checksums.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Decoded `.smg` header. Obtainable without reading the column sections via
/// [`read_smg_header`], which is what `asm inspect` prints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmgHeader {
    /// Format version of the file.
    pub version: u32,
    /// Feature flags (must be 0 in version 1).
    pub flags: u32,
    /// Node count.
    pub n: u64,
    /// Edge count.
    pub m: u64,
    /// CRC32 of the offsets section.
    pub crc_off: u32,
    /// CRC32 of the targets section (including alignment padding).
    pub crc_dst: u32,
    /// CRC32 of the probabilities section.
    pub crc_prob: u32,
    /// CRC32 of header bytes `[0, 44)`.
    pub crc_header: u32,
}

impl SmgHeader {
    /// Content checksum of the snapshot, derivable from the header alone:
    /// FNV-1a over `(n, m, crc_off, crc_dst, crc_prob)`. Equal to
    /// [`content_checksum`] of the decoded graph, so a registry can verify a
    /// snapshot's identity from its first 64 bytes.
    pub fn content_checksum(&self) -> u64 {
        fnv1a_fold(self.n, self.m, self.crc_off, self.crc_dst, self.crc_prob)
    }

    /// Total file size implied by the header, in bytes.
    pub fn file_len(&self) -> u64 {
        let dst = self.m * 4;
        let pad = dst_padding_u64(self.m);
        SMG_HEADER_LEN as u64 + (self.n + 1) * 8 + dst + pad + self.m * 8
    }
}

fn fnv1a_fold(n: u64, m: u64, crc_off: u32, crc_dst: u32, crc_prob: u32) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&n.to_le_bytes());
    eat(&m.to_le_bytes());
    eat(&crc_off.to_le_bytes());
    eat(&crc_dst.to_le_bytes());
    eat(&crc_prob.to_le_bytes());
    h
}

/// Zero bytes appended to the targets section so the probabilities column
/// starts on an 8-byte boundary.
fn dst_padding(m: usize) -> usize {
    (8 - (m * 4) % 8) % 8
}

fn dst_padding_u64(m: u64) -> u64 {
    (8 - (m * 4) % 8) % 8
}

/// Content checksum of a graph: FNV-1a over `(n, m)` and the three section
/// CRCs of its canonical snapshot encoding. Two graphs have equal checksums
/// iff their `.smg` encodings are byte-identical, and the same value can be
/// recovered from a snapshot header without decoding the columns.
pub fn content_checksum(g: &Graph) -> u64 {
    let (crc_off, crc_dst, crc_prob) = section_crcs(g);
    fnv1a_fold(g.n() as u64, g.m() as u64, crc_off, crc_dst, crc_prob)
}

/// Computes the three section CRCs by streaming the encode passes without
/// materializing the file.
fn section_crcs(g: &Graph) -> (u32, u32, u32) {
    let (off, dst, prob) = g.csr_columns();

    let mut c = Crc32::new();
    for &o in off {
        c.update(&(o as u64).to_le_bytes());
    }
    let crc_off = c.finish();

    let mut c = Crc32::new();
    for &d in dst {
        c.update(&d.to_le_bytes());
    }
    c.update(&[0u8; 8][..dst_padding(dst.len())]);
    let crc_dst = c.finish();

    let mut c = Crc32::new();
    for &p in prob {
        c.update(&p.to_le_bytes());
    }
    let crc_prob = c.finish();

    (crc_off, crc_dst, crc_prob)
}

/// Writes a graph as a `.smg` snapshot. The encoding is deterministic: equal
/// graphs produce byte-identical output.
pub fn write_smg(g: &Graph, mut writer: impl Write) -> Result<(), GraphError> {
    let (off, dst, prob) = g.csr_columns();
    let (crc_off, crc_dst, crc_prob) = section_crcs(g);

    let mut header = [0u8; SMG_HEADER_LEN];
    header[0..8].copy_from_slice(&SMG_MAGIC);
    header[8..12].copy_from_slice(&SMG_VERSION.to_le_bytes());
    // flags [12..16) stay zero in version 1
    header[16..24].copy_from_slice(&(g.n() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(g.m() as u64).to_le_bytes());
    header[32..36].copy_from_slice(&crc_off.to_le_bytes());
    header[36..40].copy_from_slice(&crc_dst.to_le_bytes());
    header[40..44].copy_from_slice(&crc_prob.to_le_bytes());
    let crc_header = crc32(&header[0..44]);
    header[44..48].copy_from_slice(&crc_header.to_le_bytes());
    writer.write_all(&header)?;

    for &o in off {
        writer.write_all(&(o as u64).to_le_bytes())?;
    }
    for &d in dst {
        writer.write_all(&d.to_le_bytes())?;
    }
    writer.write_all(&[0u8; 8][..dst_padding(dst.len())])?;
    for &p in prob {
        writer.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

/// Fills `buf` from the reader, attributing an early EOF to `section`.
fn read_section(
    reader: &mut impl Read,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), GraphError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::Store(StoreError::Truncated { section })
        } else {
            GraphError::from(e)
        }
    })
}

/// Parses and validates a raw 64-byte header. Validation order matters:
/// magic first (is this even a `.smg`?), then version (a future version may
/// legitimately have a different header layout, so its CRC must not be
/// checked against version-1 rules), then flags and the header CRC.
fn parse_header(raw: &[u8; SMG_HEADER_LEN]) -> Result<SmgHeader, StoreError> {
    let word4 = |at: usize| -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&raw[at..at + 4]);
        u32::from_le_bytes(b)
    };
    let word8 = |at: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&raw[at..at + 8]);
        u64::from_le_bytes(b)
    };

    if raw[0..8] != SMG_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = word4(8);
    if version != SMG_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: SMG_VERSION,
        });
    }
    let stored = word4(44);
    let computed = crc32(&raw[0..44]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch {
            section: "header",
            stored,
            computed,
        });
    }
    let flags = word4(12);
    if flags != 0 {
        return Err(StoreError::Malformed {
            message: format!("unknown flags {flags:#010x} in version 1 snapshot"),
        });
    }
    if raw[48..64].iter().any(|&b| b != 0) {
        return Err(StoreError::Malformed {
            message: "reserved header bytes are not zero".to_string(),
        });
    }
    Ok(SmgHeader {
        version,
        flags,
        n: word8(16),
        m: word8(24),
        crc_off: word4(32),
        crc_dst: word4(36),
        crc_prob: word4(40),
        crc_header: stored,
    })
}

/// Reads the raw 64-byte header, checking the magic as soon as its 8 bytes
/// arrive so a wrong file type (even one shorter than a header) reports
/// [`StoreError::BadMagic`] rather than a confusing truncation.
fn read_header_raw(reader: &mut impl Read) -> Result<[u8; SMG_HEADER_LEN], GraphError> {
    let mut raw = [0u8; SMG_HEADER_LEN];
    read_section(reader, &mut raw[..8], "header")?;
    if raw[0..8] != SMG_MAGIC {
        return Err(GraphError::Store(StoreError::BadMagic));
    }
    read_section(reader, &mut raw[8..], "header")?;
    Ok(raw)
}

/// Reads and validates only the 64-byte header — what `asm inspect` prints.
pub fn read_smg_header(mut reader: impl Read) -> Result<SmgHeader, GraphError> {
    let raw = read_header_raw(&mut reader)?;
    parse_header(&raw).map_err(GraphError::Store)
}

/// Reads a `.smg` snapshot, verifying every checksum and structural invariant
/// before handing back a [`Graph`]. Streaming wrapper over
/// [`read_smg_bytes`]; prefer [`read_smg_path`] for files (it reads with a
/// size hint and decodes without intermediate copies).
pub fn read_smg(mut reader: impl Read) -> Result<Graph, GraphError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    read_smg_bytes(&bytes)
}

/// Decodes a `.smg` snapshot already in memory. The column sections are
/// CRC-verified and decoded straight out of `bytes` — no per-section buffer
/// allocation or copying — which is what keeps a cold load dominated by the
/// unavoidable O(m) decode rather than bookkeeping.
pub fn read_smg_bytes(bytes: &[u8]) -> Result<Graph, GraphError> {
    let truncated = |section: &'static str| GraphError::Store(StoreError::Truncated { section });
    // Magic is checked as soon as its 8 bytes are available so a wrong file
    // type (even one shorter than a header) reports BadMagic rather than a
    // confusing truncation.
    if bytes.len() < 8 {
        return Err(truncated("header"));
    }
    if bytes[0..8] != SMG_MAGIC {
        return Err(GraphError::Store(StoreError::BadMagic));
    }
    if bytes.len() < SMG_HEADER_LEN {
        return Err(truncated("header"));
    }
    let mut raw = [0u8; SMG_HEADER_LEN];
    raw.copy_from_slice(&bytes[..SMG_HEADER_LEN]);
    let h = parse_header(&raw).map_err(GraphError::Store)?;

    if h.n > u64::from(u32::MAX) || h.m > u64::from(u32::MAX) {
        return Err(GraphError::Store(StoreError::Malformed {
            message: format!("n={} m={} exceed the u32 id space", h.n, h.m),
        }));
    }
    let n = h.n as usize;
    let m = h.m as usize;

    let off_start = SMG_HEADER_LEN;
    let dst_start = off_start + (n + 1) * 8;
    let prob_start = dst_start + m * 4 + dst_padding(m);
    let total = prob_start + m * 8;
    let section = |start: usize, end: usize, name: &'static str| -> Result<&[u8], GraphError> {
        bytes.get(start..end).ok_or(truncated(name))
    };
    let off_bytes = section(off_start, dst_start, "offsets")?;
    let dst_bytes = section(dst_start, prob_start, "targets")?;
    let prob_bytes = section(prob_start, total, "probabilities")?;
    // The snapshot must end exactly at the probabilities section.
    if bytes.len() > total {
        return Err(GraphError::Store(StoreError::Malformed {
            message: "trailing bytes after the probabilities section".to_string(),
        }));
    }

    let verify = |section: &'static str, stored: u32, data: &[u8]| -> Result<(), GraphError> {
        let computed = crc32(data);
        if computed != stored {
            return Err(GraphError::Store(StoreError::ChecksumMismatch {
                section,
                stored,
                computed,
            }));
        }
        Ok(())
    };
    let malformed = |message: String| GraphError::Store(StoreError::Malformed { message });

    // Each section is CRC-verified, decoded, and locally validated by its own
    // task; above MIN_PARALLEL_EDGES the three tasks run on scoped threads
    // (the work is independent per section). Errors surface in the fixed
    // order offsets → targets → probabilities regardless of which task
    // finished first, so failures are deterministic too. CRC failures mean
    // transit damage; the structural checks catch files that were *encoded*
    // wrong.
    let decode_off = || -> Result<Vec<usize>, GraphError> {
        verify("offsets", h.crc_off, off_bytes)?;
        let fwd_off: Vec<usize> = off_bytes
            .chunks_exact(8)
            .map(|ch| u64::from_le_bytes(ch.try_into().expect("8-byte chunk")) as usize)
            .collect();
        if fwd_off.first() != Some(&0) {
            return Err(malformed("offsets do not start at 0".to_string()));
        }
        if fwd_off.last() != Some(&m) {
            return Err(malformed(format!("final offset is not the edge count {m}")));
        }
        // Monotone + ending at m also bounds every offset by m.
        if fwd_off.windows(2).any(|w| w[0] > w[1]) {
            return Err(malformed(
                "offsets are not monotonically increasing".to_string(),
            ));
        }
        Ok(fwd_off)
    };
    let decode_dst = || -> Result<(Vec<NodeId>, usize), GraphError> {
        verify("targets", h.crc_dst, dst_bytes)?;
        let fwd_dst: Vec<NodeId> = dst_bytes[..m * 4]
            .chunks_exact(4)
            .map(|ch| u32::from_le_bytes(ch.try_into().expect("4-byte chunk")))
            .collect();
        if dst_bytes[m * 4..].iter().any(|&b| b != 0) {
            return Err(malformed("alignment padding is not zero".to_string()));
        }
        if let Some(&v) = fwd_dst.iter().find(|&&v| u64::from(v) >= h.n) {
            return Err(malformed(format!("edge target {v} out of range for n={n}")));
        }
        // Descent count for the strictly-sorted check below: how many
        // positions fail to increase over their predecessor. Computed here so
        // it rides the targets task (cache-hot, and off the critical path
        // when the section tasks run on threads).
        let descents = fwd_dst.windows(2).filter(|w| w[0] >= w[1]).count();
        Ok((fwd_dst, descents))
    };
    let decode_prob = || -> Result<Vec<f64>, GraphError> {
        verify("probabilities", h.crc_prob, prob_bytes)?;
        let fwd_prob: Vec<f64> = prob_bytes
            .chunks_exact(8)
            .map(|ch| f64::from_le_bytes(ch.try_into().expect("8-byte chunk")))
            .collect();
        if let Some(&p) = fwd_prob.iter().find(|&&p| !(p > 0.0 && p <= 1.0)) {
            return Err(malformed(format!("probability {p} outside (0, 1]")));
        }
        Ok(fwd_prob)
    };
    let (off_res, dst_res, prob_res) = if crate::csr::build_workers(m) > 1 {
        std::thread::scope(|scope| {
            let dst_task = scope.spawn(decode_dst);
            let prob_task = scope.spawn(decode_prob);
            (
                decode_off(),
                dst_task.join().expect("targets decode task panicked"),
                prob_task
                    .join()
                    .expect("probabilities decode task panicked"),
            )
        })
    } else {
        (decode_off(), decode_dst(), decode_prob())
    };
    let (fwd_off, (fwd_dst, descents), fwd_prob) = (off_res?, dst_res?, prob_res?);

    // Adjacency lists must be sorted strictly (sorted + deduplicated): the
    // sampling layers binary-search and assume no parallel edges. Needs
    // offsets and targets together, so it runs after the section tasks join.
    // Checked as a descent count: the targets task counted every position
    // where the sequence fails to increase, an O(n) walk here counts how
    // many of those are list boundaries (where a descent is legal), and the
    // file is well-formed iff the two counts agree. Only on disagreement does
    // a slow per-edge pass run to name the offending node.
    let mut boundary_descents = 0usize;
    let mut prev_boundary = 0usize;
    for &e in &fwd_off[1..n.max(1)] {
        if e != prev_boundary && e < m && fwd_dst[e - 1] >= fwd_dst[e] {
            boundary_descents += 1;
        }
        prev_boundary = e;
    }
    if descents != boundary_descents {
        let mut u = 0usize;
        for e in 1..m {
            while e >= fwd_off[u + 1] {
                u += 1;
            }
            if e > fwd_off[u] && fwd_dst[e - 1] >= fwd_dst[e] {
                return Err(malformed(format!(
                    "adjacency of node {u} is not strictly sorted"
                )));
            }
        }
    }

    Ok(Graph::from_csr(n, fwd_off, fwd_dst, fwd_prob))
}

/// Writes a `.smg` snapshot to a file path (buffered).
pub fn write_smg_path(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write_smg(g, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a `.smg` snapshot from a file path. The whole file is read in one
/// size-hinted pass and decoded in place via [`read_smg_bytes`].
pub fn read_smg_path(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let bytes = std::fs::read(path)?;
    read_smg_bytes(&bytes)
}

/// Reads only the header of a `.smg` file.
pub fn read_smg_header_path(path: impl AsRef<Path>) -> Result<SmgHeader, GraphError> {
    let file = std::fs::File::open(path)?;
    read_smg_header(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_edge_list;

    fn sample_graph() -> Graph {
        let input = "0 1 0.5\n0 2 0.25\n1 2 0.75\n2 0 1.0\n3 1 0.125\n";
        read_edge_list(input.as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap()
    }

    fn encode(g: &Graph) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_smg(g, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/PNG check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_preserves_structure_and_weights() {
        let g = sample_graph();
        let bytes = encode(&g);
        let g2 = read_smg(bytes.as_slice()).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn encode_is_deterministic() {
        let g = sample_graph();
        assert_eq!(encode(&g), encode(&g));
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        let g = sample_graph();
        let bytes = encode(&g);
        let h = read_smg_header(bytes.as_slice()).unwrap();
        assert_eq!(bytes.len() as u64, h.file_len());
        assert_eq!(bytes.len() % 8, 0);
        // Odd edge count exercises the padding path.
        assert_eq!(g.m() % 2, 1);
    }

    #[test]
    fn header_checksum_matches_graph_checksum() {
        let g = sample_graph();
        let bytes = encode(&g);
        let h = read_smg_header(bytes.as_slice()).unwrap();
        assert_eq!(h.content_checksum(), content_checksum(&g));
        assert_eq!(h.n, g.n() as u64);
        assert_eq!(h.m, g.m() as u64);
    }

    #[test]
    fn different_weights_change_the_checksum() {
        let a = read_edge_list("0 1 0.5\n".as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        let b = read_edge_list("0 1 0.25\n".as_bytes())
            .unwrap()
            .into_graph(true, 1.0)
            .unwrap();
        assert_ne!(content_checksum(&a), content_checksum(&b));
    }

    #[test]
    fn truncated_header_is_detected() {
        let g = sample_graph();
        let bytes = encode(&g);
        let err = read_smg(&bytes[..40]).unwrap_err();
        assert_eq!(
            err,
            GraphError::Store(StoreError::Truncated { section: "header" })
        );
    }

    #[test]
    fn truncation_is_attributed_to_the_right_section() {
        let g = sample_graph();
        let bytes = encode(&g);
        let off_end = SMG_HEADER_LEN + (g.n() + 1) * 8;
        let dst_end = off_end + g.m() * 4 + (8 - (g.m() * 4) % 8) % 8;
        for (cut, section) in [
            (SMG_HEADER_LEN + 3, "offsets"),
            (off_end + 1, "targets"),
            (dst_end + 5, "probabilities"),
        ] {
            let err = read_smg(&bytes[..cut]).unwrap_err();
            assert_eq!(
                err,
                GraphError::Store(StoreError::Truncated { section }),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_is_detected() {
        let g = sample_graph();
        let mut bytes = encode(&g);
        bytes[0] ^= 0xFF;
        assert_eq!(
            read_smg(bytes.as_slice()).unwrap_err(),
            GraphError::Store(StoreError::BadMagic)
        );
    }

    #[test]
    fn version_from_the_future_is_rejected() {
        let g = sample_graph();
        let mut bytes = encode(&g);
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Recompute the header CRC so the *only* problem is the version.
        let crc = crc32(&bytes[0..44]);
        bytes[44..48].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            read_smg(bytes.as_slice()).unwrap_err(),
            GraphError::Store(StoreError::UnsupportedVersion {
                found: 2,
                supported: 1
            })
        );
    }

    #[test]
    fn header_corruption_is_detected() {
        let g = sample_graph();
        let mut bytes = encode(&g);
        bytes[16] ^= 0x01; // flip a bit of n without fixing the header CRC
        match read_smg(bytes.as_slice()).unwrap_err() {
            GraphError::Store(StoreError::ChecksumMismatch { section, .. }) => {
                assert_eq!(section, "header");
            }
            other => panic!("expected header checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn section_corruption_is_detected_per_section() {
        let g = sample_graph();
        let clean = encode(&g);
        let off_start = SMG_HEADER_LEN;
        let dst_start = off_start + (g.n() + 1) * 8;
        let prob_start = dst_start + g.m() * 4 + (8 - (g.m() * 4) % 8) % 8;
        for (at, section) in [
            (off_start + 2, "offsets"),
            (dst_start, "targets"),
            (prob_start + 7, "probabilities"),
        ] {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            match read_smg(bytes.as_slice()).unwrap_err() {
                GraphError::Store(StoreError::ChecksumMismatch { section: s, .. }) => {
                    assert_eq!(s, section, "corrupted byte {at}");
                }
                other => panic!("expected {section} checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn nonzero_flags_are_rejected() {
        let g = sample_graph();
        let mut bytes = encode(&g);
        bytes[12] = 0x01;
        let crc = crc32(&bytes[0..44]);
        bytes[44..48].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_smg(bytes.as_slice()).unwrap_err(),
            GraphError::Store(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let g = sample_graph();
        let mut bytes = encode(&g);
        bytes.push(0);
        assert!(matches!(
            read_smg(bytes.as_slice()).unwrap_err(),
            GraphError::Store(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = crate::GraphBuilder::new(3).build().unwrap();
        let bytes = encode(&g);
        let g2 = read_smg(bytes.as_slice()).unwrap();
        assert_eq!(g2.n(), 3);
        assert_eq!(g2.m(), 0);
    }

    #[test]
    fn header_path_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("smin_store_test_header");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.smg");
        write_smg_path(&g, &path).unwrap();
        let h = read_smg_header_path(&path).unwrap();
        assert_eq!(h.version, SMG_VERSION);
        assert_eq!(h.content_checksum(), content_checksum(&g));
        let g2 = read_smg_path(&path).unwrap();
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
