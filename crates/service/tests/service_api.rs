//! End-to-end tests: a real server on an ephemeral port, driven through the
//! crate's own keep-alive client.
//!
//! The centerpiece is the request-level determinism contract (ISSUE 5): the
//! same `/v1/select` body with the same `seed` returns **byte-identical**
//! JSON across server restarts and across sketch-generation thread counts
//! (threads ∈ {1, 4} both explicit and via the `SMIN_THREADS` default that
//! CI sweeps).
//!
//! Clients are dropped before `shutdown()`: closing the connection releases
//! its worker immediately instead of waiting out the server's read timeout.

use smin_service::{Client, Server, ServerConfig};

fn spawn_server() -> smin_service::ServerHandle {
    spawn_server_with_state(None)
}

fn spawn_server_with_state(state_dir: Option<std::path::PathBuf>) -> smin_service::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        graphs_dir: None,
        state_dir,
        cache_capacity: 64,
        ..ServerConfig::default()
    };
    Server::bind(&config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn client(handle: &smin_service::ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("connect")
}

const REGISTER: &str = r#"{"id":"g","generate":{"kind":"er","n":120,"m":360,"seed":9}}"#;
const SELECT_UNCACHED: &str = r#"{"graph":"g","eta":30,"seed":5,"cache":false}"#;

#[test]
fn full_lifecycle_over_one_keepalive_connection() {
    let mut handle = spawn_server();
    let mut c = client(&handle);

    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.json().is_ok());
    assert!(health.text().contains("\"status\":\"ok\""));

    let created = c.post("/v1/graphs", REGISTER).unwrap();
    assert_eq!(created.status, 201, "{}", created.text());
    assert!(created.text().contains("\"id\":\"g\""));

    let listing = c.get("/v1/graphs").unwrap();
    assert_eq!(listing.status, 200);
    assert!(
        listing.text().contains("\"id\":\"g\""),
        "{}",
        listing.text()
    );

    let selected = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(selected.status, 200, "{}", selected.text());
    assert!(selected.json().is_ok(), "body must parse as JSON");
    assert!(selected.text().contains("\"reached\":true"));
    assert!(
        selected.header("X-Select-Micros").is_some(),
        "timing travels in a header, never the body"
    );

    let deleted = c.delete("/v1/graphs/g").unwrap();
    assert_eq!(deleted.status, 200);
    let gone = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(gone.status, 404);
    assert!(gone.text().contains("unknown_graph"));

    drop(c);
    handle.shutdown();
}

#[test]
fn select_is_byte_identical_across_restarts_and_thread_counts() {
    // Server A: compute the reference response plus one per thread count.
    let mut handle_a = spawn_server();
    let mut c = client(&handle_a);
    assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
    let reference = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(reference.status, 200, "{}", reference.text());
    for threads in [1, 4] {
        let body =
            format!(r#"{{"graph":"g","eta":30,"seed":5,"cache":false,"threads":{threads}}}"#);
        let resp = c.post("/v1/select", &body).unwrap();
        assert_eq!(
            resp.body, reference.body,
            "threads={threads} diverged from the default-thread response"
        );
    }
    drop(c);
    handle_a.shutdown();

    // Server B: a cold process-equivalent (fresh registry, empty cache) must
    // reproduce the exact bytes.
    let mut handle_b = spawn_server();
    let mut c = client(&handle_b);
    assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
    let replay = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(
        replay.body, reference.body,
        "restart changed the response bytes"
    );
    drop(c);
    handle_b.shutdown();
}

#[test]
fn warm_restart_restores_graphs_tokens_and_select_bytes() {
    let dir = std::env::temp_dir().join("smin_service_warm_restart");
    let _ = std::fs::remove_dir_all(&dir);

    // Server A: register a graph into the state dir, capture the listing and
    // an uncached select, then die.
    let mut handle_a = spawn_server_with_state(Some(dir.clone()));
    let mut c = client(&handle_a);
    assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
    let listing_a = c.get("/v1/graphs").unwrap();
    assert!(
        listing_a.text().contains("\"snapshot\":\"graphs/g.smg\""),
        "{}",
        listing_a.text()
    );
    assert!(
        listing_a.text().contains("\"token\":\""),
        "{}",
        listing_a.text()
    );
    let select_a = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(select_a.status, 200, "{}", select_a.text());
    drop(c);
    handle_a.shutdown();

    // Server B: boots from the manifest — no re-registration anywhere.
    let mut handle_b = spawn_server_with_state(Some(dir.clone()));
    let mut c = client(&handle_b);
    let listing_b = c.get("/v1/graphs").unwrap();
    assert_eq!(
        listing_b.body, listing_a.body,
        "restart must list the same graphs with the same tokens"
    );
    let select_b = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(
        select_b.body, select_a.body,
        "restart changed the select bytes"
    );
    // The restored graph still owns its id.
    let conflict = c.post("/v1/graphs", REGISTER).unwrap();
    assert_eq!(conflict.status, 409, "{}", conflict.text());
    drop(c);
    handle_b.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_request_hits_the_cache_and_matches() {
    let mut handle = spawn_server();
    let mut c = client(&handle);
    assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);

    let body = r#"{"graph":"g","eta":30,"seed":5}"#;
    let first = c.post("/v1/select", body).unwrap();
    assert_eq!(first.header("X-Cache"), Some("MISS"));
    let second = c.post("/v1/select", body).unwrap();
    assert_eq!(second.header("X-Cache"), Some("HIT"));
    assert_eq!(second.body, first.body);

    // Warm-session path without the cache: same bytes, warm shelf reused.
    let uncached = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    assert_eq!(uncached.header("X-Cache"), Some("BYPASS"));
    assert_eq!(uncached.body, first.body);

    let listing = c.get("/v1/graphs").unwrap();
    assert!(
        listing.text().contains("\"warm_sessions\":1"),
        "{}",
        listing.text()
    );
    drop(c);
    handle.shutdown();
}

#[test]
fn malformed_requests_get_structured_errors() {
    let mut handle = spawn_server();
    let mut c = client(&handle);

    let resp = c.post("/v1/select", "this is not json").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"code\":\"bad_request\""));

    let resp = c.get("/no/such/route").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.text().contains("\"code\":\"unknown_route\""));

    // Errors keep the connection usable (keep-alive survives a 4xx).
    let resp = c.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    drop(c);
    handle.shutdown();
}

#[test]
fn concurrent_clients_share_one_registry() {
    let mut handle = spawn_server();
    let mut c = client(&handle);
    assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
    let reference = c.post("/v1/select", SELECT_UNCACHED).unwrap();
    drop(c);

    let addr = handle.addr().to_string();
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let resp = c.post("/v1/select", SELECT_UNCACHED).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    resp.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in results {
        assert_eq!(body, reference.body, "concurrent responses diverged");
    }
    handle.shutdown();
}
