//! Transport-equivalence and protection wire tests.
//!
//! The epoll event loop and the threaded fallback must be observationally
//! identical: same response bytes for `/v1/select`, `/v1/select-batch`,
//! and every error shape (429 admission, 504 deadline, 408 mid-body
//! stall, 400 malformed framing). These tests drive real servers over both
//! transports and pin the equivalences the ISSUE requires.

use smin_service::{Client, Server, ServerConfig, ServerHandle, Transport};
use std::io::{Read, Write};
use std::net::TcpStream;

const REGISTER: &str = r#"{"id":"g","generate":{"kind":"er","n":120,"m":360,"seed":9}}"#;

fn spawn(transport: Transport, tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_capacity: 64,
        transport,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    Server::bind(&config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("connect")
}

fn epoll_available() -> bool {
    smin_service::platform::supported()
}

/// Select items that exercise distinct cache keys, algorithms, and one
/// duplicate (an in-batch cache hit when caching is on).
fn batch_items() -> Vec<String> {
    vec![
        r#"{"eta":30,"seed":5,"cache":false}"#.into(),
        r#"{"eta":25,"seed":6,"cache":false}"#.into(),
        r#"{"eta":30,"seed":5,"cache":false}"#.into(),
        r#"{"algo":"trim-b","batch":2,"eta":20,"seed":7,"cache":false}"#.into(),
    ]
}

#[test]
fn select_batch_is_byte_identical_to_sequential_selects() {
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        let mut handle = spawn(transport, |_| {});
        let mut c = client(&handle);
        assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);

        let items = batch_items();
        // Reference: N sequential /v1/select calls.
        let mut sequential = Vec::new();
        for item in &items {
            let mut body = item.clone();
            body.insert_str(1, r#""graph":"g","#);
            let resp = c.post("/v1/select", &body).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
            sequential.push(resp.body);
        }

        // The batch response must be the exact concatenation of those
        // bodies inside the batch envelope — not merely JSON-equal.
        let batch_body = format!(r#"{{"graph":"g","items":[{}]}}"#, items.join(","));
        let resp = c.post("/v1/select-batch", &batch_body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let mut expected = Vec::new();
        expected.extend_from_slice(br#"{"graph":"g","count":4,"results":["#);
        for (i, body) in sequential.iter().enumerate() {
            if i > 0 {
                expected.push(b',');
            }
            expected.extend_from_slice(body);
        }
        expected.extend_from_slice(b"]}");
        assert_eq!(
            resp.body, expected,
            "{transport:?}: batch diverged from sequential selects"
        );

        drop(c);
        handle.shutdown();
    }
}

#[test]
fn transports_serve_identical_bytes() {
    if !epoll_available() {
        return;
    }
    let collect = |transport: Transport| -> Vec<Vec<u8>> {
        let mut handle = spawn(transport, |_| {});
        let mut c = client(&handle);
        assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
        let select = r#"{"graph":"g","eta":30,"seed":5,"cache":false}"#;
        let batch = format!(r#"{{"graph":"g","items":[{}]}}"#, batch_items().join(","));
        let bodies = vec![
            c.post("/v1/select", select).unwrap().body,
            c.post("/v1/select-batch", &batch).unwrap().body,
            c.post("/v1/select", r#"{"graph":"nope","eta":1}"#)
                .unwrap()
                .body,
            c.post("/v1/select", "not json").unwrap().body,
            c.get("/no/such/route").unwrap().body,
        ];
        drop(c);
        handle.shutdown();
        bodies
    };
    let threaded = collect(Transport::Threaded);
    let epoll = collect(Transport::Epoll);
    assert_eq!(threaded.len(), epoll.len());
    for (i, (t, e)) in threaded.iter().zip(&epoll).enumerate() {
        assert_eq!(t, e, "response {i} differs between transports");
    }
}

#[test]
fn overload_returns_deterministic_429_and_keeps_the_connection() {
    const WANT: &str = r#"{"error":{"code":"overloaded","status":429,"message":"pending request queue is full; retry later"}}"#;
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        // max_pending = 0: every request is over the high-water mark, so
        // the rejection is deterministic rather than load-dependent.
        let mut handle = spawn(transport, |c| c.max_pending = 0);
        let mut c = client(&handle);
        for _ in 0..3 {
            let resp = c.post("/v1/select", r#"{"graph":"g","eta":5}"#).unwrap();
            assert_eq!(resp.status, 429, "{transport:?}");
            assert_eq!(resp.text(), WANT, "{transport:?}: 429 body must be stable");
        }
        drop(c);
        handle.shutdown();
    }
}

#[test]
fn expired_deadline_returns_deterministic_504() {
    const WANT: &str = r#"{"error":{"code":"deadline_exceeded","status":504,"message":"deadline of 0ms exceeded before dispatch"}}"#;
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        let mut handle = spawn(transport, |_| {});
        let mut c = client(&handle);
        // A zero budget is expired by definition on both transports.
        let resp = c
            .post_with_headers(
                "/v1/select",
                r#"{"graph":"g","eta":5}"#,
                &[("X-Deadline-Millis", "0")],
            )
            .unwrap();
        assert_eq!(resp.status, 504, "{transport:?}: {}", resp.text());
        assert_eq!(resp.text(), WANT, "{transport:?}");

        // A malformed budget is a 400 that keeps the connection alive.
        let resp = c
            .post_with_headers(
                "/v1/select",
                r#"{"graph":"g","eta":5}"#,
                &[("X-Deadline-Millis", "soon")],
            )
            .unwrap();
        assert_eq!(resp.status, 400, "{transport:?}");
        assert!(resp.text().contains("X-Deadline-Millis"), "{transport:?}");
        let resp = c.get("/healthz").unwrap();
        assert_eq!(resp.status, 200, "{transport:?}: connection must survive");
        drop(c);
        handle.shutdown();
    }
}

/// Writes `head` (a complete request head promising a body that never
/// arrives) and returns everything the server sends before closing.
fn stall_mid_body(addr: &str, head: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(head.as_bytes()).expect("write head");
    s.flush().expect("flush");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read until server close");
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn mid_body_stall_gets_408_before_close() {
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        let mut handle = spawn(transport, |c| {
            c.request_timeout_ms = 200;
            c.idle_timeout_ms = 2_000;
        });
        let reply = stall_mid_body(
            &handle.addr().to_string(),
            "POST /v1/select HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n{\"gr",
        );
        assert!(
            reply.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
            "{transport:?}: got {reply:?}"
        );
        assert!(
            reply.contains(r#""code":"request_timeout""#),
            "{transport:?}: got {reply:?}"
        );
        assert!(
            reply.contains("Connection: close"),
            "{transport:?}: a timed-out request cannot keep the stream"
        );
        handle.shutdown();
    }
}

#[test]
fn idle_stall_before_any_request_closes_silently() {
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        let mut handle = spawn(transport, |c| {
            c.request_timeout_ms = 200;
            c.idle_timeout_ms = 200;
        });
        // No bytes at all: the idle timeout closes without a response.
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        let mut out = Vec::new();
        s.read_to_end(&mut out).expect("read until server close");
        assert!(
            out.is_empty(),
            "{transport:?}: idle connections close silently, got {:?}",
            String::from_utf8_lossy(&out)
        );
        handle.shutdown();
    }
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    if !epoll_available() {
        return;
    }
    let mut handle = spawn(Transport::Epoll, |_| {});
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    // Two requests in one write; the second is only parsed after the
    // first response flushes (one-at-a-time backpressure), but both must
    // be answered, in order, on the one connection.
    s.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
          GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .expect("write");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read both responses");
    let text = String::from_utf8_lossy(&out);
    assert_eq!(
        text.matches("HTTP/1.1 200 OK\r\n").count(),
        2,
        "got {text:?}"
    );
    assert!(text.contains("Connection: keep-alive"));
    assert!(text.contains("Connection: close"));
    handle.shutdown();
}

#[test]
fn pipelined_sync_response_flood_is_answered_iteratively() {
    if !epoll_available() {
        return;
    }
    let mut handle = spawn(Transport::Epoll, |_| {});
    // Thousands of pipelined requests whose responses the poll thread
    // produces itself (400: malformed deadline header), padded with bodies
    // so the backlog tops the per-connection buffer cap. Regression for
    // two failure modes of the old state machine: mutual recursion
    // (flush → parse → respond → flush) overflowing the poll thread's
    // stack, and unbounded per-connection parse buffering.
    const N: usize = 1_500;
    let pad = "x".repeat(4 << 10);
    let mut blob = Vec::new();
    for _ in 0..N {
        blob.extend_from_slice(
            format!(
                "POST /v1/select HTTP/1.1\r\nHost: t\r\nX-Deadline-Millis: soon\r\n\
                 Content-Length: {}\r\n\r\n{pad}",
                pad.len(),
            )
            .as_bytes(),
        );
    }
    blob.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(
        blob.len() > smin_service::http::MAX_BUFFERED_BYTES,
        "flood must exceed the per-connection backlog cap to exercise it"
    );

    let s = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = s.try_clone().expect("clone stream");
    // Write and read concurrently: once the server pauses reads at the
    // backlog cap, forward progress requires draining its responses.
    let w = std::thread::spawn(move || -> std::io::Result<()> {
        writer.write_all(&blob)?;
        writer.flush()
    });
    let mut out = Vec::new();
    let mut reader = s;
    reader.read_to_end(&mut out).expect("read all responses");
    w.join().expect("writer thread").expect("write flood");

    let text = String::from_utf8_lossy(&out);
    assert_eq!(
        text.matches("HTTP/1.1 400 Bad Request\r\n").count(),
        N,
        "every pipelined request must be answered"
    );
    assert_eq!(
        text.matches("HTTP/1.1 200 OK\r\n").count(),
        1,
        "the connection stays usable through the whole flood"
    );
    handle.shutdown();
}

#[test]
fn metrics_are_exposed_on_both_transports() {
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        let mut handle = spawn(transport, |_| {});
        let mut c = client(&handle);
        assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
        let select = r#"{"graph":"g","eta":30,"seed":5}"#;
        assert_eq!(c.post("/v1/select", select).unwrap().status, 200);
        assert_eq!(c.post("/v1/select", select).unwrap().status, 200);
        assert_eq!(c.get("/healthz").unwrap().status, 200);

        let resp = c.get("/metrics").unwrap();
        assert_eq!(resp.status, 200, "{transport:?}");
        assert_eq!(
            resp.header("Content-Type"),
            Some("text/plain; version=0.0.4"),
            "{transport:?}"
        );
        let text = resp.text();
        // Session-layer series populated by the traffic above.
        assert!(
            text.contains("smin_http_requests_total{route=\"select\"} 2\n"),
            "{transport:?}:\n{text}"
        );
        assert!(
            text.contains("smin_http_requests_total{route=\"healthz\"} 1\n"),
            "{transport:?}"
        );
        assert!(
            text.contains("smin_select_stage_micros_count{stage=\"coverage\"} 2\n"),
            "{transport:?}"
        );
        assert!(
            text.contains("smin_cache_lookups_total{outcome=\"hit\"} 1\n"),
            "{transport:?}"
        );
        assert!(
            text.contains("smin_graph_selects_total{graph=\"g\"} 2\n"),
            "{transport:?}"
        );
        // Event-loop series populate only under the epoll transport; the
        // families are present (exposition shape is transport-independent).
        assert!(text.contains("# TYPE smin_epoll_wait_micros histogram"));
        assert!(text.contains("# TYPE smin_bytes_read_total counter"));
        if transport == Transport::Epoll {
            let read = text
                .lines()
                .find_map(|l| l.strip_prefix("smin_bytes_read_total "))
                .and_then(|v| v.parse::<u64>().ok())
                .expect("bytes-read sample");
            assert!(read > 0, "{transport:?}: event loop counted no reads");
        }
        drop(c);
        handle.shutdown();
    }
}

#[test]
fn trace_log_records_one_line_per_request() {
    for transport in [Transport::Threaded, Transport::Epoll] {
        if transport == Transport::Epoll && !epoll_available() {
            continue;
        }
        let path = std::env::temp_dir().join(format!("smin_trace_{transport:?}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let trace = path.clone();
        let mut handle = spawn(transport, move |c| c.trace_log = Some(trace));
        let mut c = client(&handle);
        assert_eq!(c.post("/v1/graphs", REGISTER).unwrap().status, 201);
        let resp = c
            .post_with_headers(
                "/v1/select",
                r#"{"graph":"g","eta":30,"seed":5}"#,
                &[("X-Deadline-Millis", "60000")],
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        drop(c);
        handle.shutdown(); // drops the state, flushing the log thread

        let mut text = String::new();
        for _ in 0..200 {
            text = std::fs::read_to_string(&path).unwrap_or_default();
            if text.lines().count() >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let lines: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("trace line parses"))
            .collect();
        assert_eq!(lines.len(), 2, "{transport:?}: one line per request");
        let select = &lines[1];
        let get = |k: &str| {
            let v = smin_service::json::field(select, k).expect("field present");
            serde_json::to_string(v).unwrap()
        };
        assert_eq!(get("method"), r#""POST""#, "{transport:?}");
        assert_eq!(get("path"), r#""/v1/select""#, "{transport:?}");
        assert_eq!(get("status"), "200");
        assert_eq!(get("cache"), r#""MISS""#);
        let micros = smin_service::json::field(select, "micros").expect("micros present");
        assert!(
            smin_service::json::field(micros, "coverage").is_some(),
            "{transport:?}: stage micros recorded"
        );
        assert!(
            get("deadline_remaining_ms") != "null",
            "{transport:?}: deadline header surfaced"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn threaded_admission_counts_queued_connections() {
    let mut handle = spawn(Transport::Threaded, |c| {
        c.workers = 1;
        c.max_pending = 2;
        c.request_timeout_ms = 1_000;
    });
    let mut a = client(&handle);
    assert_eq!(a.get("/healthz").unwrap().status, 200);
    // The lone worker now owns connection A for its keep-alive lifetime;
    // these two sit accepted-but-unserved and must count toward the
    // admission high-water mark (they can never be "running": that would
    // need a free worker).
    let b = TcpStream::connect(handle.addr()).expect("connect b");
    let c = TcpStream::connect(handle.addr()).expect("connect c");
    // The acceptor registers them asynchronously; poll until the knob bites.
    let mut saw_429 = false;
    for _ in 0..400 {
        let resp = a.get("/healthz").unwrap();
        if resp.status == 429 {
            saw_429 = true;
            break;
        }
        assert_eq!(resp.status, 200);
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(saw_429, "queued connections must trip admission control");
    // Close the queued connections before shutdown so the worker drains
    // them with an EOF instead of waiting out their read timeout.
    drop(b);
    drop(c);
    drop(a);
    handle.shutdown();
}

#[test]
fn idle_connections_scale_beyond_the_dispatch_pool() {
    if !epoll_available() {
        return;
    }
    // 2 dispatch threads, 64 concurrently-open keep-alive connections:
    // impossible under the threaded transport (worker = connection), the
    // point of the event loop. The CI load step scales this to 512.
    let mut handle = spawn(Transport::Epoll, |c| c.workers = 2);
    let addr = handle.addr().to_string();
    let mut clients: Vec<Client> = (0..64)
        .map(|i| Client::connect(&addr).unwrap_or_else(|e| panic!("connect {i}: {e}")))
        .collect();
    // Every connection stays open and usable while all the others are.
    for (i, c) in clients.iter_mut().enumerate() {
        let resp = c
            .get("/healthz")
            .unwrap_or_else(|e| panic!("conn {i}: {e}"));
        assert_eq!(resp.status, 200, "conn {i}");
    }
    drop(clients);
    handle.shutdown();
}
