//! Request routing and endpoint implementations.
//!
//! | method | path | body | effect |
//! |---|---|---|---|
//! | GET | `/healthz` | — | liveness + registry stats |
//! | GET | `/v1/graphs` | — | list registered graphs |
//! | POST | `/v1/graphs` | `{"id"?, "path"?, "generate"?, …}` | load/generate + register |
//! | DELETE | `/v1/graphs/{id}` | — | unregister |
//! | POST | `/v1/select` | `{"graph", "eta"\|"eta_frac", …}` | run TRIM / TRIM-B / ASTI |
//! | POST | `/v1/select-batch` | `{"graph", "items": […]}` | N selects, one graph resolution + warm session |
//!
//! `/v1/select` responses contain only deterministic fields: the same body
//! (same `seed`) produces byte-identical JSON across restarts and thread
//! counts. Wall-clock timing travels in the `X-Select-Micros` response
//! header, and cache status in `X-Cache`, so neither perturbs the contract.
//!
//! `/v1/select-batch` amortizes the per-request overhead: the graph is
//! resolved once and one warm session is checked out for the whole batch,
//! while each item keeps its own cache entry. Every element of `"results"`
//! is byte-identical to the body the same item would get from
//! `/v1/select` — session reuse never changes results (PR 4's contract),
//! and the wire tests pin this equivalence.

use crate::cache::SelectCache;
use crate::error::ServiceError;
use crate::http::{Request, Response};
use crate::json;
use crate::metrics::ServiceMetrics;
use crate::registry::{
    manifest_json, parse_manifest, record_select, GraphEntry, ManifestEntry, Registry,
};
use crate::trace::{StageMicrosLine, TraceEvent, TraceLog};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use smin_core::{asti_in, AstiParams, AstiSession};
use smin_diffusion::{Model, Realization, RealizationOracle};
use smin_graph::generators::{
    assemble, barabasi_albert, chung_lu_directed, erdos_renyi, watts_strogatz,
};
use smin_graph::{io, store, Graph, WeightModel};
use std::path::{Component, Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Shared state behind every worker thread.
pub struct ServiceState {
    registry: Mutex<Registry>,
    cache: Mutex<SelectCache>,
    /// Directory `POST /v1/graphs {"path": …}` loads are confined to;
    /// `None` disables file loading entirely.
    graphs_dir: Option<PathBuf>,
    /// Durable registry root (`manifest.json` + `graphs/*.smg` snapshots);
    /// `None` keeps the registry in-memory only.
    state_dir: Option<PathBuf>,
    started: Instant,
    /// Shared metric registry, fed by both transports and scraped at
    /// `GET /metrics`.
    metrics: ServiceMetrics,
    /// Per-request JSON trace lines (`--trace-log`); `None` disables.
    trace: Option<TraceLog>,
}

impl ServiceState {
    /// Fresh in-memory state; `cache_capacity` bounds the memoized-response
    /// count.
    pub fn new(graphs_dir: Option<PathBuf>, cache_capacity: usize) -> Self {
        ServiceState {
            registry: Mutex::new(Registry::new()),
            cache: Mutex::new(SelectCache::new(cache_capacity)),
            graphs_dir,
            state_dir: None,
            // smin-lint: allow(no-wall-clock) -- /healthz uptime is observability, outside the determinism contract
            started: Instant::now(),
            metrics: ServiceMetrics::new(),
            trace: None,
        }
    }

    /// State with a durable registry under `state_dir`: every registered
    /// graph is snapshotted to `graphs/<id>.smg` and indexed in
    /// `manifest.json`, and graphs listed in an existing manifest are
    /// restored (and checksum-verified) before the server accepts requests.
    pub fn with_state_dir(
        graphs_dir: Option<PathBuf>,
        cache_capacity: usize,
        state_dir: Option<PathBuf>,
    ) -> Result<Self, String> {
        let mut state = ServiceState::new(graphs_dir, cache_capacity);
        let Some(dir) = state_dir else {
            return Ok(state);
        };
        std::fs::create_dir_all(dir.join("graphs"))
            .map_err(|e| format!("cannot create state dir {dir:?}: {e}"))?;
        restore_registry(
            &dir,
            state.registry.get_mut().unwrap_or_else(|e| e.into_inner()),
        )?;
        state.state_dir = Some(dir);
        Ok(state)
    }

    pub(crate) fn registry(&self) -> MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn cache(&self) -> MutexGuard<'_, SelectCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The shared metric registry scraped at `GET /metrics`.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The per-request trace log, when `--trace-log` is active.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Attaches a trace log. Called once at server bind, before the state
    /// is shared across threads.
    pub fn set_trace(&mut self, trace: TraceLog) {
        self.trace = Some(trace);
    }
}

/// Rebuilds the registry from `manifest.json`, verifying each snapshot's
/// content checksum against the manifest. A missing manifest is a fresh
/// state dir; a damaged one is a hard boot error — serving a silently
/// partial registry would violate the restart-warm contract.
fn restore_registry(dir: &Path, registry: &mut Registry) -> Result<(), String> {
    let manifest_path = dir.join("manifest.json");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("cannot read {manifest_path:?}: {e}")),
    };
    for entry in parse_manifest(&text)? {
        let rel = Path::new(&entry.file);
        if rel.components().any(|c| !matches!(c, Component::Normal(_))) {
            return Err(format!(
                "manifest entry '{}' has an unsafe file path {:?}",
                entry.id, entry.file
            ));
        }
        let graph = store::read_smg_path(dir.join(rel))
            .map_err(|e| format!("snapshot {:?} for graph '{}': {e}", entry.file, entry.id))?;
        let checksum = store::content_checksum(&graph);
        if checksum != entry.checksum {
            return Err(format!(
                "snapshot {:?} for graph '{}' has checksum {:016x}, manifest says {:016x}",
                entry.file, entry.id, checksum, entry.checksum
            ));
        }
        registry
            .register_resolved(entry.id.clone(), graph, entry.source, Some(entry.file))
            .map_err(|e| format!("cannot restore graph '{}': {}", entry.id, e.message))?;
    }
    Ok(())
}

/// Rewrites `manifest.json` atomically (tmp + rename) from the entries that
/// carry snapshots. BTreeMap listing order makes the output deterministic.
fn write_manifest(dir: &Path, registry: &Registry) -> Result<(), String> {
    let entries: Vec<ManifestEntry> = registry
        .list()
        .iter()
        .filter_map(|e| {
            e.snapshot.as_ref().map(|file| ManifestEntry {
                id: e.id.clone(),
                file: file.clone(),
                checksum: e.token,
                source: e.source.clone(),
            })
        })
        .collect();
    let mut text = manifest_json(&entries)?;
    text.push('\n');
    let tmp = dir.join("manifest.json.tmp");
    let path = dir.join("manifest.json");
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write {tmp:?}: {e}"))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("cannot replace {path:?}: {e}"))
}

/// Routes one request. Never panics on malformed input — every failure
/// becomes a structured JSON error.
pub fn handle(state: &ServiceState, req: &Request) -> Response {
    // Scrapes return before any counter or trace mutation, so two
    // back-to-back scrapes with no intervening traffic are byte-identical.
    if req.method == "GET" && req.path == "/metrics" {
        return metrics_response(state);
    }
    // smin-lint: allow(no-wall-clock) -- feeds the trace log's deadline_remaining_ms only
    let started = Instant::now();
    let mut stages: Option<StageMicrosLine> = None;
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(healthz(state)),
        ("GET", "/v1/graphs") => Ok(list_graphs(state)),
        ("POST", "/v1/graphs") => register_graph(state, &req.body),
        ("POST", "/v1/select") => select(state, req, &mut stages),
        ("POST", "/v1/select-batch") => select_batch(state, req, &mut stages),
        (method, path)
            if path
                .strip_prefix("/v1/graphs/")
                .is_some_and(|id| !id.is_empty()) =>
        {
            match path.strip_prefix("/v1/graphs/") {
                Some(id) if method == "DELETE" => delete_graph(state, id),
                _ => Err(method_not_allowed(method, path)),
            }
        }
        (
            method,
            path @ ("/healthz" | "/v1/graphs" | "/v1/select" | "/v1/select-batch" | "/metrics"),
        ) => Err(method_not_allowed(method, path)),
        (_, path) => Err(ServiceError::not_found(
            "unknown_route",
            format!("no route for {path}"),
        )),
    };
    let resp = result.unwrap_or_else(|e| e.to_response());
    route_counter(state.metrics(), req.path.as_str()).inc();
    if let Some(trace) = state.trace() {
        let cache = resp
            .headers
            .iter()
            .find(|(k, _)| k == "X-Cache")
            .map(|(_, v)| v.as_str());
        let deadline_remaining_ms = req
            .header("x-deadline-millis")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|d| {
                let spent = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                d.saturating_sub(spent)
            });
        trace.emit(&TraceEvent {
            method: Some(&req.method),
            path: Some(&req.path),
            status: resp.status,
            micros: stages,
            cache,
            deadline_remaining_ms,
        });
    }
    resp
}

/// `GET /metrics` — Prometheus text exposition of the whole registry.
fn metrics_response(state: &ServiceState) -> Response {
    Response {
        status: 200,
        headers: vec![(
            "Content-Type".to_string(),
            smin_obs::expo::CONTENT_TYPE.to_string(),
        )],
        body: crate::metrics::render(state).into_bytes(),
    }
}

/// The request counter a path belongs to. `/v1/graphs/{id}` folds into the
/// graphs class; everything unrouted is `other`.
fn route_counter<'a>(m: &'a ServiceMetrics, path: &str) -> &'a smin_obs::Counter {
    match path {
        "/healthz" => &m.requests_healthz,
        "/v1/graphs" => &m.requests_graphs,
        "/v1/select" => &m.requests_select,
        "/v1/select-batch" => &m.requests_select_batch,
        p if p.starts_with("/v1/graphs/") => &m.requests_graphs,
        _ => &m.requests_other,
    }
}

fn method_not_allowed(method: &str, path: &str) -> ServiceError {
    ServiceError::new(
        405,
        "method_not_allowed",
        format!("{method} is not supported on {path}"),
    )
}

/// `GET /healthz`
fn healthz(state: &ServiceState) -> Response {
    let registry = state.registry();
    let (cached, hits, misses) = {
        let cache = state.cache();
        let (h, m) = cache.stats();
        (cache.len(), h, m)
    };
    Response::json(
        200,
        &json!({
            "status": "ok",
            "graphs": registry.len(),
            "cached_responses": cached,
            "cache_hits": hits,
            "cache_misses": misses,
            "uptime_s": state.started.elapsed().as_secs(),
        }),
    )
}

/// `GET /v1/graphs`
fn list_graphs(state: &ServiceState) -> Response {
    let entries = state.registry().list();
    let graphs: Vec<Value> = entries.iter().map(|e| entry_value(e)).collect();
    Response::json(200, &json!({ "graphs": graphs }))
}

fn entry_value(e: &GraphEntry) -> Value {
    json!({
        "id": e.id.clone(),
        "n": e.graph.n(),
        "m": e.graph.m(),
        "token": format!("{:016x}", e.token),
        "source": e.source.clone(),
        "snapshot": e.snapshot.clone(),
        "selects": e.selects.load(std::sync::atomic::Ordering::Relaxed),
        "warm_sessions": e.warm_sessions(),
        "warm_pool_bytes": e.warm_pool_bytes(),
    })
}

fn parse_weights(spec: &str) -> Result<WeightModel, ServiceError> {
    match spec {
        "wc" => Ok(WeightModel::WeightedCascade),
        "tri" => Ok(WeightModel::Trivalency),
        other => match other.strip_prefix("uniform:") {
            Some(p) => p
                .parse::<f64>()
                .map(WeightModel::Uniform)
                .map_err(|e| ServiceError::bad_request(format!("bad uniform probability: {e}"))),
            None => Err(ServiceError::bad_request(format!(
                "unknown weight model '{other}' (wc | uniform:P | tri)"
            ))),
        },
    }
}

/// Generates a graph from a `"generate"` spec object.
fn generate_graph(spec: &Value) -> Result<(Graph, String), ServiceError> {
    let kind = json::req_str(spec, "kind")?;
    let n = json::req_usize(spec, "n")?;
    if n == 0 {
        return Err(ServiceError::bad_request("generator needs n >= 1"));
    }
    let seed = json::opt_u64(spec, "seed")?.unwrap_or(42);
    let weights = parse_weights(&json::opt_str(spec, "weights")?.unwrap_or_else(|| "wc".into()))?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let (pairs, directed) = match kind.as_str() {
        "chung-lu" => {
            let m = json::opt_usize(spec, "m")?.unwrap_or(n * 5);
            let gamma = json::opt_f64(spec, "gamma")?.unwrap_or(2.1);
            (chung_lu_directed(n, m, gamma, &mut rng), true)
        }
        "er" => {
            let m = json::opt_usize(spec, "m")?.unwrap_or(n * 5);
            (erdos_renyi(n, m, &mut rng), true)
        }
        "ba" => {
            let attach = json::opt_usize(spec, "attach")?.unwrap_or(4);
            (barabasi_albert(n, attach, &mut rng), false)
        }
        "ws" => {
            let k = json::opt_usize(spec, "k")?.unwrap_or(6);
            let beta = json::opt_f64(spec, "beta")?.unwrap_or(0.1);
            (watts_strogatz(n, k, beta, &mut rng), false)
        }
        other => {
            return Err(ServiceError::bad_request(format!(
                "unknown generator '{other}' (chung-lu | ba | er | ws)"
            )))
        }
    };
    let g = assemble(n, &pairs, directed, weights, &mut rng)?;
    Ok((g, format!("generated:{kind}")))
}

/// Resolves a `"path"` load under the configured graphs dir, rejecting
/// absolute paths and any traversal outside it.
fn load_graph_file(
    graphs_dir: &Option<PathBuf>,
    rel: &str,
) -> Result<(Graph, String), ServiceError> {
    let Some(dir) = graphs_dir else {
        return Err(ServiceError::bad_request(
            "file loading is disabled: the server was started without --graphs-dir",
        ));
    };
    let rel_path = Path::new(rel);
    let traversal = rel_path
        .components()
        .any(|c| !matches!(c, Component::Normal(_) | Component::CurDir));
    if rel.is_empty() || traversal {
        return Err(ServiceError::bad_request(format!(
            "path {rel:?} must be relative to the graphs dir, without '..'"
        )));
    }
    // Content-sniffing loader: `.smg` snapshots, the legacy binary dump, and
    // text edge lists all work regardless of extension.
    let g = io::load_auto(dir.join(rel_path), 1.0)?;
    Ok((g, format!("file:{rel}")))
}

/// `POST /v1/graphs`
fn register_graph(state: &ServiceState, body: &[u8]) -> Result<Response, ServiceError> {
    let v = json::parse_object(body)?;
    let id = json::opt_str(&v, "id")?;
    let path = json::opt_str(&v, "path")?;
    let generate = json::field(&v, "generate");
    let (graph, source) = match (path, generate) {
        (Some(p), None) => load_graph_file(&state.graphs_dir, &p)?,
        (None, Some(spec)) => generate_graph(spec)?,
        _ => {
            return Err(ServiceError::bad_request(
                "body must contain exactly one of 'path' or 'generate'",
            ))
        }
    };
    if graph.n() == 0 {
        return Err(ServiceError::new(
            422,
            "empty_graph",
            "the loaded graph has no nodes",
        ));
    }
    // Registration and persistence run under one registry lock so concurrent
    // registrations serialize their manifest rewrites.
    let mut registry = state.registry();
    let id = registry.resolve_id(id)?;
    let snapshot = state.state_dir.as_ref().map(|_| format!("graphs/{id}.smg"));
    let entry = registry.register_resolved(id.clone(), graph, source, snapshot.clone())?;
    if let (Some(dir), Some(rel)) = (&state.state_dir, &snapshot) {
        let persisted = store::write_smg_path(&entry.graph, dir.join(rel))
            .map_err(|e| format!("cannot write snapshot {rel:?}: {e}"))
            .and_then(|()| write_manifest(dir, &registry));
        if let Err(message) = persisted {
            // Roll back so the in-memory registry never outlives its
            // manifest: a graph the manifest does not know about would
            // silently vanish on restart.
            registry.remove(&id);
            let _ = std::fs::remove_file(dir.join(rel));
            return Err(ServiceError::new(500, "persist_failed", message));
        }
    }
    Ok(Response::json(201, &entry_value(&entry)))
}

/// `DELETE /v1/graphs/{id}`
fn delete_graph(state: &ServiceState, id: &str) -> Result<Response, ServiceError> {
    let mut registry = state.registry();
    let snapshot = registry.get(id).and_then(|e| e.snapshot.clone());
    if !registry.remove(id) {
        return Err(ServiceError::not_found(
            "unknown_graph",
            format!("graph '{id}' is not registered"),
        ));
    }
    if let Some(dir) = &state.state_dir {
        write_manifest(dir, &registry)
            .map_err(|message| ServiceError::new(500, "persist_failed", message))?;
        if let Some(rel) = snapshot {
            // Best-effort: the manifest no longer references the snapshot,
            // so a leftover file is garbage, not a correctness problem.
            let _ = std::fs::remove_file(dir.join(rel));
        }
    }
    Ok(Response::json(200, &json!({ "deleted": id })))
}

/// Parsed `/v1/select` request.
struct SelectRequest {
    entry: Arc<GraphEntry>,
    algo: String,
    model: Model,
    eta: usize,
    eps: f64,
    batch: usize,
    seed: u64,
    theta_cap: Option<usize>,
    threads: Option<usize>,
    use_cache: bool,
}

impl SelectRequest {
    /// Cache key over every response-determining field. `threads` is
    /// deliberately absent: selections are bit-identical for every thread
    /// count (PR 2's contract), so all thread settings share one entry. The
    /// entry token pins the exact registered graph.
    fn cache_key(&self) -> String {
        format!(
            "{}#{}|{}|{:?}|eta={}|eps={}|batch={}|seed={}|cap={:?}",
            self.entry.id,
            self.entry.token,
            self.algo,
            self.model,
            self.eta,
            self.eps,
            self.batch,
            self.seed,
            self.theta_cap,
        )
    }
}

fn parse_select(state: &ServiceState, body: &[u8]) -> Result<SelectRequest, ServiceError> {
    let v = json::parse_object(body)?;
    let entry = resolve_graph(state, &v)?;
    parse_select_fields(entry, &v)
}

/// Resolves the `"graph"` field against the registry — once per request
/// for `/v1/select`, once per *batch* for `/v1/select-batch`.
fn resolve_graph(state: &ServiceState, v: &Value) -> Result<Arc<GraphEntry>, ServiceError> {
    let graph_id = json::req_str(v, "graph")?;
    state.registry().get(&graph_id).ok_or_else(|| {
        ServiceError::not_found(
            "unknown_graph",
            format!("graph '{graph_id}' is not registered"),
        )
    })
}

/// Parses every select field besides `"graph"` against an already-resolved
/// entry. Shared verbatim by the single and batch endpoints so their
/// validation (and therefore their responses) cannot drift.
fn parse_select_fields(entry: Arc<GraphEntry>, v: &Value) -> Result<SelectRequest, ServiceError> {
    let model: Model = json::opt_str(v, "model")?
        .unwrap_or_else(|| "ic".into())
        .parse()
        .map_err(|e: String| ServiceError::bad_request(e))?;
    let eps = json::opt_f64(v, "eps")?.unwrap_or(0.5);
    let seed = json::opt_u64(v, "seed")?.unwrap_or(42);
    let mut batch = json::opt_usize(v, "batch")?.unwrap_or(1);
    // Optional per-round mRR-set budget: interactive clients trade the
    // formal guarantee for a hard latency bound. Response-determining, so
    // it is part of the cache key.
    let theta_cap = json::opt_usize(v, "theta_cap")?;
    if theta_cap == Some(0) {
        return Err(ServiceError::bad_request("'theta_cap' must be at least 1"));
    }
    let threads = json::opt_usize(v, "threads")?;
    if threads == Some(0) {
        return Err(ServiceError::bad_request("'threads' must be at least 1"));
    }
    let use_cache = json::opt_bool(v, "cache")?.unwrap_or(true);

    // "asti" is the adaptive driver; "trim" / "trim-b" name the per-round
    // selector explicitly and constrain the batch size accordingly.
    let algo = json::opt_str(v, "algo")?.unwrap_or_else(|| "asti".into());
    match algo.as_str() {
        "asti" => {}
        "trim" => {
            if json::opt_usize(v, "batch")?.is_some_and(|b| b != 1) {
                return Err(ServiceError::bad_request(
                    "algo 'trim' selects one seed per round; use 'trim-b' with batch >= 2",
                ));
            }
            batch = 1;
        }
        "trim-b" => {
            if batch < 2 {
                return Err(ServiceError::bad_request(
                    "algo 'trim-b' needs batch >= 2 (got or defaulted to 1)",
                ));
            }
        }
        other => {
            return Err(ServiceError::bad_request(format!(
                "unknown algo '{other}' (asti | trim | trim-b)"
            )))
        }
    }

    let n = entry.graph.n();
    let eta = match (json::opt_usize(v, "eta")?, json::opt_f64(v, "eta_frac")?) {
        (Some(e), None) => e,
        (None, Some(frac)) => {
            // Validate before the max(1.0) clamp: a negative or NaN
            // fraction would otherwise silently become eta = 1 and 200.
            if !(frac > 0.0 && frac <= 1.0) {
                return Err(ServiceError::bad_request(format!(
                    "'eta_frac' must lie in (0, 1], got {frac}"
                )));
            }
            ((n as f64) * frac).round().max(1.0) as usize
        }
        (Some(_), Some(_)) => {
            return Err(ServiceError::bad_request(
                "give 'eta' or 'eta_frac', not both",
            ))
        }
        (None, None) => {
            return Err(ServiceError::bad_request(
                "missing required field 'eta' (or 'eta_frac')",
            ))
        }
    };

    Ok(SelectRequest {
        entry,
        algo,
        model,
        eta,
        eps,
        batch,
        seed,
        theta_cap,
        threads,
        use_cache,
    })
}

/// Runs one parsed select item on a caller-provided session and returns
/// the serialized response body. This is the single compute path behind
/// both `/v1/select` and `/v1/select-batch`, so their bytes cannot drift.
fn compute_select_body(
    req: &SelectRequest,
    session: &mut AstiSession,
    stages: &mut StageMicrosLine,
) -> Result<Vec<u8>, ServiceError> {
    let g = &req.entry.graph;
    let mut world_rng = SmallRng::seed_from_u64(req.seed.wrapping_add(1000));
    let phi = Realization::sample(g, req.model, &mut world_rng);
    let mut oracle = RealizationOracle::new(g, phi);
    let mut rng = SmallRng::seed_from_u64(req.seed);
    let mut params = AstiParams::batched(req.eps, req.batch);
    // None defers to SMIN_THREADS (then available parallelism) at run time,
    // so the env override is honored per request, not at server start.
    params.trim.threads = req.threads;
    params.trim.theta_cap = req.theta_cap;

    let report = asti_in(
        g,
        req.model,
        req.eta,
        &params,
        &mut oracle,
        &mut rng,
        session,
    )?;

    let rounds: Vec<Value> = report
        .rounds
        .iter()
        .map(|r| {
            json!({
                "seeds": r.seeds.clone(),
                "newly_activated": r.newly_activated,
                "eta_i": r.eta_i,
                "n_alive": r.n_alive,
                "sets_generated": r.sets_generated,
            })
        })
        .collect();
    let body_value = json!({
        "graph": req.entry.id.clone(),
        "algo": req.algo.clone(),
        "model": req.model.to_string(),
        "eta": req.eta,
        "eps": req.eps,
        "batch": req.batch,
        "seed": req.seed,
        "theta_cap": req.theta_cap,
        "seeds": report.seeds.clone(),
        "num_seeds": report.num_seeds(),
        "num_rounds": report.num_rounds(),
        "total_activated": report.total_activated,
        "reached": report.reached,
        "total_sets": report.total_sets,
        "rounds": rounds,
    });
    let serialized = {
        let _span = smin_obs::Span::enter(&mut stages.serialize);
        serde_json::to_string(&body_value)
    };
    let body = serialized
        .map_err(|e| {
            ServiceError::new(
                500,
                "serialization_failed",
                format!("response encoding: {e}"),
            )
        })?
        .into_bytes();
    Ok(body)
}

/// Cache-aware execution of one item on a shared session: hit → cached
/// bytes, miss → compute (and memoize). Returns the body plus whether the
/// cache answered.
fn run_select_item(
    state: &ServiceState,
    req: &SelectRequest,
    session: &mut AstiSession,
    stages: &mut StageMicrosLine,
) -> Result<(Vec<u8>, bool), ServiceError> {
    let key = req.cache_key();
    if req.use_cache {
        if let Some(cached) = state.cache().get(&key) {
            record_select(&req.entry);
            return Ok((cached.to_vec(), true));
        }
    }
    let body = compute_select_body(req, session, stages)?;
    // The session accumulated sketch/coverage splits while `asti_in` ran
    // (reset at its entry), and the coverage engine kept its most recent
    // selection's traffic — fold both into the registry here, once per
    // computed item.
    let sm = session.stage_micros();
    stages.sketch = stages.sketch.saturating_add(sm.sketch);
    stages.coverage = stages.coverage.saturating_add(sm.coverage);
    let traffic = session.select_traffic();
    let m = state.metrics();
    m.coverage_last_heap_pops
        .set(u64::try_from(traffic.heap_pops).unwrap_or(u64::MAX));
    m.coverage_last_heap_pushes
        .set(u64::try_from(traffic.heap_pushes).unwrap_or(u64::MAX));
    m.coverage_last_scanned
        .set(u64::try_from(traffic.scanned).unwrap_or(u64::MAX));
    record_select(&req.entry);
    if req.use_cache {
        state
            .cache()
            .insert(key, Arc::from(body.clone().into_boxed_slice()));
    }
    Ok((body, false))
}

/// `POST /v1/select`
///
/// Runs the adaptive campaign against a world sampled from `seed` (the same
/// convention as `asm run`: world RNG stream `seed + 1000`, algorithm RNG
/// stream `seed`), on a session recycled from the graph's warm shelf.
fn select(
    state: &ServiceState,
    http_req: &Request,
    stages_out: &mut Option<StageMicrosLine>,
) -> Result<Response, ServiceError> {
    let mut stages = StageMicrosLine::default();
    let req = {
        let _span = smin_obs::Span::enter(&mut stages.resolve);
        parse_select(state, &http_req.body)
    }?;
    // smin-lint: allow(no-wall-clock) -- feeds the X-Select-Micros header only; bodies stay bit-identical
    let started = Instant::now();

    let mut session = {
        let _span = smin_obs::Span::enter(&mut stages.checkout);
        req.entry.checkout_session()
    };
    let result = run_select_item(state, &req, &mut session, &mut stages);
    req.entry.checkin_session(session);
    let (body, hit) = result?;

    observe_stages(state.metrics(), &stages);
    let cache_status = match (req.use_cache, hit) {
        (false, _) => "BYPASS",
        (true, true) => "HIT",
        (true, false) => "MISS",
    };
    let mut resp = Response {
        status: 200,
        headers: Vec::new(),
        body,
    }
    .with_header("X-Cache", cache_status)
    .with_header("X-Select-Micros", started.elapsed().as_micros().to_string());
    if http_req.header("x-stage-micros").is_some() {
        resp = resp.with_header("X-Stage-Micros", format_stage_header(&stages));
    }
    *stages_out = Some(stages);
    Ok(resp)
}

/// Folds one request's stage splits into the exposition histograms.
fn observe_stages(m: &ServiceMetrics, s: &StageMicrosLine) {
    m.stage_resolve_micros.observe(s.resolve);
    m.stage_checkout_micros.observe(s.checkout);
    m.stage_sketch_micros.observe(s.sketch);
    m.stage_coverage_micros.observe(s.coverage);
    m.stage_serialize_micros.observe(s.serialize);
}

/// The opt-in `X-Stage-Micros` response header value. Timing travels in
/// headers, never bodies, so instrumentation cannot perturb the
/// byte-identity contract.
fn format_stage_header(s: &StageMicrosLine) -> String {
    format!(
        "resolve={};checkout={};sketch={};coverage={};serialize={}",
        s.resolve, s.checkout, s.sketch, s.coverage, s.serialize
    )
}

/// `POST /v1/select-batch`
///
/// `{"graph": id, "items": [{…select fields…}, …]}` — runs every item
/// against one graph resolution and one warm-session checkout. The
/// response is assembled by byte-concatenating the exact bodies the items
/// would receive from `/v1/select`, so each `results` element is pinned
/// byte-identical to its sequential counterpart. Any failing item fails
/// the whole batch with its error, prefixed by the item index.
fn select_batch(
    state: &ServiceState,
    http_req: &Request,
    stages_out: &mut Option<StageMicrosLine>,
) -> Result<Response, ServiceError> {
    let mut stages = StageMicrosLine::default();
    let v = json::parse_object(&http_req.body)?;
    // smin-lint: allow(no-wall-clock) -- feeds the X-Select-Micros header only; bodies stay bit-identical
    let started = Instant::now();
    let entry = {
        let _span = smin_obs::Span::enter(&mut stages.resolve);
        resolve_graph(state, &v)
    }?;
    let items = match json::field(&v, "items") {
        Some(Value::Array(items)) => items,
        Some(_) => {
            return Err(ServiceError::bad_request(
                "field 'items' must be an array of select objects",
            ))
        }
        None => return Err(ServiceError::bad_request("missing required field 'items'")),
    };
    if items.is_empty() {
        return Err(ServiceError::bad_request("'items' must not be empty"));
    }

    let item_err = |i: usize, e: ServiceError| {
        ServiceError::new(e.status, e.code, format!("items[{i}]: {}", e.message))
    };
    // Parse every item up front: a batch with a malformed tail fails before
    // any compute is spent.
    let mut reqs = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        if !matches!(item, Value::Object(_)) {
            return Err(ServiceError::bad_request(format!(
                "items[{i}]: each item must be an object"
            )));
        }
        if json::field(item, "graph").is_some() {
            return Err(ServiceError::bad_request(format!(
                "items[{i}]: 'graph' belongs at the batch's top level"
            )));
        }
        let req = parse_select_fields(Arc::clone(&entry), item).map_err(|e| item_err(i, e))?;
        reqs.push(req);
    }

    // One warm session serves the whole batch — this is the amortization
    // the endpoint exists for. Session reuse never changes results, so the
    // bodies below still match sequential `/v1/select` calls exactly.
    let mut session = {
        let _span = smin_obs::Span::enter(&mut stages.checkout);
        entry.checkout_session()
    };
    let mut results = Vec::new();
    let mut hits = 0usize;
    let mut bypassed = 0usize;
    let mut outcome = Ok(());
    for (i, req) in reqs.iter().enumerate() {
        match run_select_item(state, req, &mut session, &mut stages) {
            Ok((bytes, hit)) => {
                if !req.use_cache {
                    bypassed += 1;
                } else if hit {
                    hits += 1;
                }
                results.push(bytes);
            }
            Err(e) => {
                outcome = Err(item_err(i, e));
                break;
            }
        }
    }
    entry.checkin_session(session);
    outcome?;

    // Assembled by concatenation, not re-serialization: the item bodies
    // land in `results` byte-for-byte.
    let graph_json = serde_json::to_string(&entry.id)
        .map_err(|e| ServiceError::new(500, "serialization_failed", format!("graph id: {e}")))?;
    let mut body = Vec::new();
    body.extend_from_slice(b"{\"graph\":");
    body.extend_from_slice(graph_json.as_bytes());
    body.extend_from_slice(format!(",\"count\":{}", results.len()).as_bytes());
    body.extend_from_slice(b",\"results\":[");
    for (i, item_body) in results.iter().enumerate() {
        if i > 0 {
            body.push(b',');
        }
        body.extend_from_slice(item_body);
    }
    body.extend_from_slice(b"]}");

    // Mirrors the single-select header per item — HIT, MISS, or BYPASS
    // (`"cache": false`) — collapsed to one value when every item agrees
    // and MIXED otherwise, so opting out of the cache is never reported
    // as a miss.
    let n = results.len();
    let cache_status = if bypassed == n {
        "BYPASS"
    } else if bypassed > 0 {
        "MIXED"
    } else if hits == n {
        "HIT"
    } else if hits == 0 {
        "MISS"
    } else {
        "MIXED"
    };
    observe_stages(state.metrics(), &stages);
    let mut resp = Response {
        status: 200,
        headers: Vec::new(),
        body,
    }
    .with_header("X-Cache", cache_status)
    .with_header("X-Select-Micros", started.elapsed().as_micros().to_string());
    if http_req.header("x-stage-micros").is_some() {
        resp = resp.with_header("X-Stage-Micros", format_stage_header(&stages));
    }
    *stages_out = Some(stages);
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServiceState {
        ServiceState::new(None, 64)
    }

    fn post(state: &ServiceState, path: &str, body: &str) -> Response {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        handle(state, &req)
    }

    fn get(state: &ServiceState, path: &str) -> Response {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        handle(state, &req)
    }

    fn body_str(resp: &Response) -> String {
        String::from_utf8(resp.body.clone()).unwrap()
    }

    fn register_er(state: &ServiceState, id: &str, n: usize) {
        let resp = post(
            state,
            "/v1/graphs",
            &format!(
                r#"{{"id":"{id}","generate":{{"kind":"er","n":{n},"m":{},"seed":1}}}}"#,
                n * 3
            ),
        );
        assert_eq!(resp.status, 201, "{}", body_str(&resp));
    }

    #[test]
    fn healthz_reports_ok() {
        let s = state();
        let resp = get(&s, "/healthz");
        assert_eq!(resp.status, 200);
        assert!(body_str(&resp).contains("\"status\":\"ok\""));
    }

    #[test]
    fn unknown_route_is_structured_404() {
        let s = state();
        let resp = get(&s, "/nope");
        assert_eq!(resp.status, 404);
        assert!(body_str(&resp).contains("unknown_route"));
    }

    #[test]
    fn wrong_method_is_405() {
        let s = state();
        let resp = post(&s, "/healthz", "{}");
        assert_eq!(resp.status, 405);
        assert!(body_str(&resp).contains("method_not_allowed"));
    }

    #[test]
    fn register_list_delete_roundtrip() {
        let s = state();
        register_er(&s, "web", 50);
        let listing = body_str(&get(&s, "/v1/graphs"));
        assert!(listing.contains("\"id\":\"web\""), "{listing}");
        assert!(listing.contains("\"source\":\"generated:er\""));

        let req = Request {
            method: "DELETE".into(),
            path: "/v1/graphs/web".into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let resp = handle(&s, &req);
        assert_eq!(resp.status, 200);
        let resp = handle(&s, &req);
        assert_eq!(resp.status, 404, "second delete is a 404");
    }

    #[test]
    fn register_requires_exactly_one_source() {
        let s = state();
        let resp = post(&s, "/v1/graphs", r#"{"id":"x"}"#);
        assert_eq!(resp.status, 400);
        let resp = post(
            &s,
            "/v1/graphs",
            r#"{"path":"a.txt","generate":{"kind":"er","n":5}}"#,
        );
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn path_loads_need_graphs_dir_and_reject_traversal() {
        let s = state(); // graphs_dir: None
        let resp = post(&s, "/v1/graphs", r#"{"path":"a.txt"}"#);
        assert_eq!(resp.status, 400);
        assert!(body_str(&resp).contains("--graphs-dir"));

        let dir = std::env::temp_dir().join("smin_service_graphs_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tiny.txt"), "0 1 0.5\r\n# c\r\n1 2\r\n").unwrap();
        let s = ServiceState::new(Some(dir), 8);
        for bad in ["../etc/passwd", "/etc/passwd", ""] {
            let resp = post(&s, "/v1/graphs", &format!(r#"{{"path":"{bad}"}}"#));
            assert_eq!(resp.status, 400, "path {bad:?} must be rejected");
        }
        let resp = post(&s, "/v1/graphs", r#"{"id":"t","path":"tiny.txt"}"#);
        assert_eq!(resp.status, 201, "{}", body_str(&resp));
        assert!(body_str(&resp).contains("\"n\":3"));
        let resp = post(&s, "/v1/graphs", r#"{"path":"missing.txt"}"#);
        assert_eq!(resp.status, 400, "{}", body_str(&resp));
    }

    #[test]
    fn select_runs_and_is_deterministic_across_thread_counts() {
        let s = state();
        register_er(&s, "g", 120);
        let base = post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta":30,"seed":7,"threads":1,"cache":false}"#,
        );
        assert_eq!(base.status, 200, "{}", body_str(&base));
        let text = body_str(&base);
        assert!(text.contains("\"reached\":true"), "{text}");
        assert!(text.contains("\"seeds\":["));
        for threads in [2, 4] {
            let resp = post(
                &s,
                "/v1/select",
                &format!(r#"{{"graph":"g","eta":30,"seed":7,"threads":{threads},"cache":false}}"#),
            );
            assert_eq!(resp.body, base.body, "threads={threads} diverged");
        }
    }

    #[test]
    fn select_cache_hits_on_repeat() {
        let s = state();
        register_er(&s, "g", 80);
        let first = post(&s, "/v1/select", r#"{"graph":"g","eta":20,"seed":3}"#);
        assert_eq!(first.status, 200);
        let cache_of = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(cache_of(&first).as_deref(), Some("MISS"));
        let second = post(&s, "/v1/select", r#"{"graph":"g","eta":20,"seed":3}"#);
        assert_eq!(cache_of(&second).as_deref(), Some("HIT"));
        assert_eq!(second.body, first.body);
        let bypass = post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta":20,"seed":3,"cache":false}"#,
        );
        assert_eq!(cache_of(&bypass).as_deref(), Some("BYPASS"));
        assert_eq!(bypass.body, first.body, "bypass recomputes the same bytes");
    }

    #[test]
    fn batch_cache_header_distinguishes_bypass_from_miss() {
        let s = state();
        register_er(&s, "g", 80);
        let cache_of = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Cache")
                .map(|(_, v)| v.clone())
        };
        // Every item opting out of the cache reports BYPASS, mirroring
        // the single-select header — not MISS.
        let all_bypass = post(
            &s,
            "/v1/select-batch",
            r#"{"graph":"g","items":[{"eta":20,"seed":3,"cache":false},{"eta":25,"seed":4,"cache":false}]}"#,
        );
        assert_eq!(all_bypass.status, 200, "{}", body_str(&all_bypass));
        assert_eq!(cache_of(&all_bypass).as_deref(), Some("BYPASS"));
        // Cacheable items never seen before: MISS; the same batch again:
        // every item answered from the cache.
        let batch = r#"{"graph":"g","items":[{"eta":20,"seed":3},{"eta":25,"seed":4}]}"#;
        let all_miss = post(&s, "/v1/select-batch", batch);
        assert_eq!(cache_of(&all_miss).as_deref(), Some("MISS"));
        let all_hit = post(&s, "/v1/select-batch", batch);
        assert_eq!(cache_of(&all_hit).as_deref(), Some("HIT"));
        // A bypass item alongside cacheable ones: MIXED.
        let mixed = post(
            &s,
            "/v1/select-batch",
            r#"{"graph":"g","items":[{"eta":20,"seed":3},{"eta":25,"seed":4,"cache":false}]}"#,
        );
        assert_eq!(cache_of(&mixed).as_deref(), Some("MIXED"));
    }

    #[test]
    fn cache_key_excludes_threads_but_pins_token() {
        let s = state();
        register_er(&s, "g", 60);
        let a = post(&s, "/v1/select", r#"{"graph":"g","eta":15,"seed":1}"#);
        let with_threads = post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta":15,"seed":1,"threads":2}"#,
        );
        let cache_of = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(cache_of(&with_threads).as_deref(), Some("HIT"));
        assert_eq!(with_threads.body, a.body);

        let delete = Request {
            method: "DELETE".into(),
            path: "/v1/graphs/g".into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };

        // Tokens are content checksums: re-registering the *identical* graph
        // under the same id keeps its token, so the cached response (which is
        // still correct for those bytes) keeps hitting.
        handle(&s, &delete);
        register_er(&s, "g", 60);
        let same = post(&s, "/v1/select", r#"{"graph":"g","eta":15,"seed":1}"#);
        assert_eq!(cache_of(&same).as_deref(), Some("HIT"));
        assert_eq!(same.body, a.body);

        // A *different* graph under the reused id changes the token: miss.
        handle(&s, &delete);
        let resp = post(
            &s,
            "/v1/graphs",
            r#"{"id":"g","generate":{"kind":"er","n":60,"m":180,"seed":2}}"#,
        );
        assert_eq!(resp.status, 201, "{}", body_str(&resp));
        let after = post(&s, "/v1/select", r#"{"graph":"g","eta":15,"seed":1}"#);
        assert_eq!(cache_of(&after).as_deref(), Some("MISS"));
    }

    #[test]
    fn select_reuses_warm_sessions() {
        let s = state();
        register_er(&s, "g", 60);
        post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta":15,"seed":1,"cache":false}"#,
        );
        let entry = s.registry().get("g").unwrap();
        assert_eq!(entry.warm_sessions(), 1, "session returned to the shelf");
        assert!(entry.warm_pool_bytes() > 0, "warm pool retains its arena");
        post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta":15,"seed":2,"cache":false}"#,
        );
        assert_eq!(entry.warm_sessions(), 1, "same session recycled");
        assert_eq!(entry.selects.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn select_validates_inputs() {
        let s = state();
        register_er(&s, "g", 40);
        let cases = [
            (r#"{"eta":5}"#, 400, "graph"),
            (r#"{"graph":"nope","eta":5}"#, 404, "unknown_graph"),
            (r#"{"graph":"g"}"#, 400, "eta"),
            (r#"{"graph":"g","eta":5,"eta_frac":0.5}"#, 400, "not both"),
            (r#"{"graph":"g","eta_frac":-0.3}"#, 400, "eta_frac"),
            (r#"{"graph":"g","eta_frac":1.5}"#, 400, "eta_frac"),
            (r#"{"graph":"g","eta_frac":0}"#, 400, "eta_frac"),
            (r#"{"graph":"g","eta":5,"threads":0}"#, 400, "threads"),
            (r#"{"graph":"g","eta":5,"theta_cap":0}"#, 400, "theta_cap"),
            (
                r#"{"graph":"g","eta":5,"algo":"magic"}"#,
                400,
                "unknown algo",
            ),
            (
                r#"{"graph":"g","eta":5,"algo":"trim-b"}"#,
                400,
                "batch >= 2",
            ),
            (
                r#"{"graph":"g","eta":5,"algo":"trim","batch":4}"#,
                400,
                "trim",
            ),
            (r#"{"graph":"g","eta":5,"model":"percolation"}"#, 400, ""),
            (r#"{"graph":"g","eta":5,"eps":2.0}"#, 422, "invalid_eps"),
            (r#"{"graph":"g","eta":4000}"#, 422, "eta_out_of_range"),
            (r#"{"graph":"g","eta":0}"#, 422, "eta_out_of_range"),
        ];
        for (body, status, needle) in cases {
            let resp = post(&s, "/v1/select", body);
            assert_eq!(resp.status, status, "{body} -> {}", body_str(&resp));
            assert!(
                body_str(&resp).contains(needle),
                "{body}: expected {needle:?} in {}",
                body_str(&resp)
            );
        }
    }

    #[test]
    fn theta_cap_bounds_sets_and_splits_the_cache() {
        let s = state();
        register_er(&s, "g", 80);
        let capped = post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta":20,"seed":3,"theta_cap":64}"#,
        );
        assert_eq!(capped.status, 200, "{}", body_str(&capped));
        assert!(body_str(&capped).contains("\"theta_cap\":64"));
        let uncapped = post(&s, "/v1/select", r#"{"graph":"g","eta":20,"seed":3}"#);
        let cache_of = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            cache_of(&uncapped).as_deref(),
            Some("MISS"),
            "different theta_cap must not share a cache entry"
        );
        assert!(body_str(&uncapped).contains("\"theta_cap\":null"));
    }

    #[test]
    fn trim_b_and_eta_frac_work() {
        let s = state();
        register_er(&s, "g", 100);
        let resp = post(
            &s,
            "/v1/select",
            r#"{"graph":"g","eta_frac":0.2,"algo":"trim-b","batch":4,"seed":2}"#,
        );
        assert_eq!(resp.status, 200, "{}", body_str(&resp));
        let text = body_str(&resp);
        assert!(text.contains("\"eta\":20"), "{text}");
        assert!(text.contains("\"algo\":\"trim-b\""));
        assert!(text.contains("\"batch\":4"));
    }

    #[test]
    fn generator_validation() {
        let s = state();
        let resp = post(&s, "/v1/graphs", r#"{"generate":{"kind":"magic","n":10}}"#);
        assert_eq!(resp.status, 400);
        let resp = post(&s, "/v1/graphs", r#"{"generate":{"kind":"er","n":0}}"#);
        assert_eq!(resp.status, 400);
        let resp = post(&s, "/v1/graphs", r#"{"generate":{"kind":"er"}}"#);
        assert_eq!(resp.status, 400);
        let resp = post(
            &s,
            "/v1/graphs",
            r#"{"generate":{"kind":"ba","n":30,"attach":2,"weights":"uniform:0.2"}}"#,
        );
        assert_eq!(resp.status, 201, "{}", body_str(&resp));
    }

    #[test]
    fn state_dir_persists_and_restores() {
        let dir = std::env::temp_dir().join("smin_routes_state_dir");
        let _ = std::fs::remove_dir_all(&dir);

        let s = ServiceState::with_state_dir(None, 8, Some(dir.clone())).unwrap();
        register_er(&s, "web", 40);
        let token = s.registry().get("web").unwrap().token;
        assert!(dir.join("graphs").join("web.smg").exists());
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"id\":\"web\""), "{manifest}");
        assert!(manifest.contains(&format!("{token:016x}")), "{manifest}");
        drop(s);

        // A fresh process over the same state dir serves the graph warm.
        let s = ServiceState::with_state_dir(None, 8, Some(dir.clone())).unwrap();
        let entry = s.registry().get("web").unwrap();
        assert_eq!(entry.token, token, "token survives the restart");
        assert_eq!(entry.source, "generated:er");
        assert_eq!(entry.snapshot.as_deref(), Some("graphs/web.smg"));
        let resp = post(
            &s,
            "/v1/graphs",
            r#"{"id":"web","generate":{"kind":"er","n":40,"m":120,"seed":1}}"#,
        );
        assert_eq!(resp.status, 409, "restored graphs defend their ids");

        // Deleting removes the snapshot and the manifest entry.
        let req = Request {
            method: "DELETE".into(),
            path: "/v1/graphs/web".into(),
            version: "HTTP/1.1".into(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(handle(&s, &req).status, 200);
        assert!(!dir.join("graphs").join("web.smg").exists());
        drop(s);
        let s = ServiceState::with_state_dir(None, 8, Some(dir.clone())).unwrap();
        assert!(s.registry().is_empty(), "deleted graph must not resurrect");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_snapshot_fails_the_boot() {
        let dir = std::env::temp_dir().join("smin_routes_state_dir_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let s = ServiceState::with_state_dir(None, 8, Some(dir.clone())).unwrap();
        register_er(&s, "web", 30);
        drop(s);

        let snap = dir.join("graphs").join("web.smg");
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&snap, bytes).unwrap();
        let err = ServiceState::with_state_dir(None, 8, Some(dir.clone()))
            .err()
            .expect("boot over damaged state must fail");
        assert!(err.contains("web"), "error names the graph: {err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_traversal_paths() {
        let dir = std::env::temp_dir().join("smin_routes_state_dir_traversal");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("manifest.json"),
            r#"{"version":1,"graphs":[{"id":"g","file":"../../etc/passwd","checksum":"0","source":"s"}]}"#,
        )
        .unwrap();
        let err = ServiceState::with_state_dir(None, 8, Some(dir.clone()))
            .err()
            .expect("boot over damaged state must fail");
        assert!(err.contains("unsafe file path"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_endpoint_is_byte_stable_between_scrapes() {
        let s = state();
        register_er(&s, "g", 60);
        post(&s, "/v1/select", r#"{"graph":"g","eta":15,"seed":1}"#);
        let first = get(&s, "/metrics");
        assert_eq!(first.status, 200);
        assert_eq!(
            first.headers.iter().find(|(k, _)| k == "Content-Type"),
            Some(&(
                "Content-Type".to_string(),
                "text/plain; version=0.0.4".to_string()
            ))
        );
        // A scrape mutates nothing, so a second scrape with no intervening
        // traffic returns the exact same bytes.
        let second = get(&s, "/metrics");
        assert_eq!(second.body, first.body, "scrapes must not perturb metrics");
        let text = body_str(&first);
        assert!(text.contains("smin_http_requests_total{route=\"select\"} 1\n"));
        assert!(text.contains("smin_graph_selects_total{graph=\"g\"} 1\n"));
        assert!(text.contains("smin_select_stage_micros_count{stage=\"coverage\"} 1\n"));
        assert!(text.contains("smin_cache_lookups_total{outcome=\"miss\"} 1\n"));
        // Wrong method on /metrics is a structured 405, like every route.
        assert_eq!(post(&s, "/metrics", "{}").status, 405);
    }

    #[test]
    fn stage_micros_header_is_opt_in_and_never_changes_bodies() {
        let s = state();
        register_er(&s, "g", 60);
        let body = r#"{"graph":"g","eta":15,"seed":1,"cache":false}"#;
        let plain = post(&s, "/v1/select", body);
        assert!(
            !plain.headers.iter().any(|(k, _)| k == "X-Stage-Micros"),
            "header only appears when requested"
        );
        let req = Request {
            method: "POST".into(),
            path: "/v1/select".into(),
            version: "HTTP/1.1".into(),
            headers: vec![("x-stage-micros".into(), "1".into())],
            body: body.as_bytes().to_vec(),
        };
        let traced = handle(&s, &req);
        let header = traced
            .headers
            .iter()
            .find(|(k, _)| k == "X-Stage-Micros")
            .map(|(_, v)| v.clone())
            .expect("opt-in header present");
        for stage in [
            "resolve=",
            "checkout=",
            "sketch=",
            "coverage=",
            "serialize=",
        ] {
            assert!(header.contains(stage), "{header}");
        }
        assert_eq!(
            traced.body, plain.body,
            "timing lives in headers, never bodies"
        );
    }

    #[test]
    fn duplicate_registration_is_conflict() {
        let s = state();
        register_er(&s, "g", 20);
        let resp = post(
            &s,
            "/v1/graphs",
            r#"{"id":"g","generate":{"kind":"er","n":20}}"#,
        );
        assert_eq!(resp.status, 409);
        assert!(body_str(&resp).contains("graph_exists"));
    }
}
