//! Transport selection and the threaded fallback loop.
//!
//! Two transports serve the same session layer ([`crate::routes::handle`])
//! and produce byte-identical responses (wire-test pinned):
//!
//! * **Epoll** ([`crate::event_loop`]): one poll thread multiplexing every
//!   connection through per-connection state machines, plus a fixed pool
//!   of dispatch threads. Concurrency costs a slab slot, not a thread.
//! * **Threaded** (this module): one acceptor feeding accepted connections
//!   to a fixed worker pool over `mpsc` — the original transport, kept as
//!   the portable fallback. Each worker owns a connection for its whole
//!   keep-alive lifetime, so open connections are capped by worker count.
//!
//! [`Transport::Auto`] (the default) probes the kernel at bind time and
//! picks epoll when available. Both transports share the request-level
//! protections: `X-Deadline-Millis` → 504, admission control → 429, and a
//! 408 when a connection times out after its request head was parsed.

use crate::error::{parse_deadline, ServiceError};
use crate::http::{read_request, Response};
use crate::routes::{handle, ServiceState};
use crate::trace::{TraceEvent, TraceLog};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Which service core runs the connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Probe at serve time: epoll when the kernel supports it, else threaded.
    Auto,
    /// The readiness event loop (Linux). Serving fails if unavailable.
    Epoll,
    /// The portable acceptor → worker-pool loop.
    Threaded,
}

impl Transport {
    /// Parses a `--transport` flag value.
    pub fn parse(s: &str) -> Result<Transport, String> {
        match s {
            "auto" => Ok(Transport::Auto),
            "epoll" => Ok(Transport::Epoll),
            "threaded" => Ok(Transport::Threaded),
            other => Err(format!(
                "unknown transport {other:?}: expected auto, epoll, or threaded"
            )),
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads: the connection pool under [`Transport::Threaded`],
    /// the dispatch pool under [`Transport::Epoll`].
    pub workers: usize,
    /// Directory `{"path": …}` graph loads are confined to.
    pub graphs_dir: Option<std::path::PathBuf>,
    /// Durable registry root: snapshots + manifest live here and are
    /// restored on boot, so restarts keep every registered graph and token.
    pub state_dir: Option<std::path::PathBuf>,
    /// Memoized `/v1/select` responses retained.
    pub cache_capacity: usize,
    /// Which service core runs the connections.
    pub transport: Transport,
    /// Admission high-water mark: beyond this much pending work — queued +
    /// running dispatches under epoll, queued connections + running
    /// requests under the threaded fallback — new requests are answered
    /// with a deterministic 429.
    pub max_pending: usize,
    /// Keep-alive idle timeout (epoll transport; silent close).
    pub idle_timeout_ms: u64,
    /// Mid-request / response-write timeout. Under the threaded transport
    /// this is the per-connection socket read timeout.
    pub request_timeout_ms: u64,
    /// Structured per-request trace log (`--trace-log`): one JSON line per
    /// request, written by a dedicated log thread. `None` disables tracing.
    pub trace_log: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            graphs_dir: None,
            state_dir: None,
            cache_capacity: 1024,
            transport: Transport::Auto,
            max_pending: 1024,
            idle_timeout_ms: 30_000,
            request_timeout_ms: 30_000,
            trace_log: None,
        }
    }
}

/// A bound (not yet serving) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener and builds the shared state.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let mut state = ServiceState::with_state_dir(
            config.graphs_dir.clone(),
            config.cache_capacity,
            config.state_dir.clone(),
        )
        .map_err(std::io::Error::other)?;
        if let Some(path) = &config.trace_log {
            // An unopenable trace log is a boot error, not a silent no-op:
            // the operator asked for a record of every request.
            let trace = TraceLog::open(path).map_err(|e| {
                std::io::Error::new(e.kind(), format!("cannot open trace log {path:?}: {e}"))
            })?;
            state.set_trace(trace);
        }
        Ok(Server {
            listener,
            state: Arc::new(state),
            config: config.clone(),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The transport that will actually serve, after `Auto` probing.
    pub fn resolved_transport(&self) -> Transport {
        match self.config.transport {
            Transport::Auto => {
                if crate::platform::supported() {
                    Transport::Epoll
                } else {
                    Transport::Threaded
                }
            }
            explicit => explicit,
        }
    }

    /// Serves until `stop` turns true. Blocks the calling thread; the CLI
    /// calls this directly, tests use [`Server::spawn`].
    pub fn run(self, stop: &AtomicBool) -> std::io::Result<()> {
        match self.resolved_transport() {
            Transport::Epoll => self.run_epoll(stop),
            _ => self.run_threaded(stop),
        }
    }

    #[cfg(unix)]
    fn run_epoll(self, stop: &AtomicBool) -> std::io::Result<()> {
        let cfg = crate::event_loop::LoopConfig {
            dispatchers: self.config.workers.max(1),
            max_pending: self.config.max_pending,
            idle_timeout_ms: self.config.idle_timeout_ms,
            request_timeout_ms: self.config.request_timeout_ms,
        };
        crate::event_loop::serve(self.listener, &self.state, &cfg, stop)
    }

    #[cfg(not(unix))]
    fn run_epoll(self, _stop: &AtomicBool) -> std::io::Result<()> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll transport requires Linux",
        ))
    }

    fn run_threaded(self, stop: &AtomicBool) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let pending = Arc::new(AtomicUsize::new(0));
        let workers = self.config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                let pending = Arc::clone(&pending);
                let config = &self.config;
                scope.spawn(move || loop {
                    // Holding the lock only while dequeuing: the handler
                    // runs unlocked so workers drain connections in parallel.
                    let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match conn {
                        Ok(stream) => {
                            // Leaving the queue: the connection stops
                            // counting as queued; its requests count as
                            // running via `dispatch_request` instead.
                            pending.fetch_sub(1, Ordering::SeqCst);
                            handle_connection(stream, &state, config, &pending)
                        }
                        Err(_) => break, // acceptor gone: shutting down
                    }
                });
            }
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Accepted-but-unserved connections count toward the
                // admission high-water mark, mirroring the epoll loop's
                // queued-dispatch accounting: with every worker occupied, a
                // backlog beyond `max_pending` turns into 429s instead of
                // building up invisibly in the channel.
                pending.fetch_add(1, Ordering::SeqCst);
                if tx.send(stream).is_err() {
                    pending.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
            drop(tx);
        });
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle that stops
    /// it. Used by tests and anything embedding the service.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_inner = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let _ = self.run(&stop_inner);
        });
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a background server; shuts it down on [`ServerHandle::shutdown`]
/// or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the server thread. In-flight connections
    /// finish their current request; idle keep-alive connections are
    /// released by their timeout, peer close, or loop teardown.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept / poll wait so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs one parsed request through the shared protections (deadline header
/// → 400/504, admission → 429) and the session layer. Both transports
/// follow this exact status ordering so responses stay byte-identical.
pub(crate) fn dispatch_request(
    state: &ServiceState,
    req: &crate::http::Request,
    pending: &AtomicUsize,
    max_pending: usize,
    elapsed_ms: u64,
) -> Response {
    let deadline = match parse_deadline(req) {
        Ok(d) => d,
        Err(e) => {
            state.metrics().errors_400.inc();
            if let Some(trace) = state.trace() {
                trace.emit(&TraceEvent {
                    method: Some(&req.method),
                    path: Some(&req.path),
                    status: 400,
                    ..TraceEvent::default()
                });
            }
            return e.to_response();
        }
    };
    if pending.load(Ordering::SeqCst) >= max_pending {
        state.metrics().errors_429.inc();
        if let Some(trace) = state.trace() {
            trace.emit(&TraceEvent {
                method: Some(&req.method),
                path: Some(&req.path),
                status: 429,
                deadline_remaining_ms: deadline,
                ..TraceEvent::default()
            });
        }
        return ServiceError::overloaded().to_response();
    }
    pending.fetch_add(1, Ordering::SeqCst);
    let resp = match deadline {
        Some(d) if elapsed_ms >= d => {
            state.metrics().errors_504.inc();
            if let Some(trace) = state.trace() {
                trace.emit(&TraceEvent {
                    method: Some(&req.method),
                    path: Some(&req.path),
                    status: 504,
                    deadline_remaining_ms: Some(0),
                    ..TraceEvent::default()
                });
            }
            ServiceError::deadline_exceeded(d).to_response()
        }
        _ => handle(state, req),
    };
    pending.fetch_sub(1, Ordering::SeqCst);
    resp
}

/// Serves one connection for its keep-alive lifetime (threaded transport).
fn handle_connection(
    stream: TcpStream,
    state: &ServiceState,
    config: &ServerConfig,
    pending: &AtomicUsize,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        config.request_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => break, // peer closed cleanly
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive();
                // A blocking worker dequeues the instant it parses, so the
                // request has spent 0ms of its deadline budget here.
                let resp = dispatch_request(state, &req, pending, config.max_pending, 0);
                if resp.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            Err(e) if e.is_io => {
                // The peer committed to a request (head parsed) and then
                // stalled past the timeout: tell it so before closing.
                // Anything else — reset, truncation, idle timeout — closes
                // silently, exactly like the event loop.
                if e.timed_out && e.head_parsed {
                    state.metrics().errors_408.inc();
                    if let Some(trace) = state.trace() {
                        // No fully-parsed request: method/path are null.
                        trace.emit(&TraceEvent {
                            status: 408,
                            ..TraceEvent::default()
                        });
                    }
                    let resp = ServiceError::request_timeout().to_response();
                    let _ = resp.write_to(&mut writer, false);
                }
                break;
            }
            Err(e) => {
                // Protocol violation: the stream position is unknowable, so
                // answer once and close.
                state.metrics().errors_400.inc();
                if let Some(trace) = state.trace() {
                    trace.emit(&TraceEvent {
                        status: 400,
                        ..TraceEvent::default()
                    });
                }
                let resp = ServiceError::bad_request(format!("malformed HTTP: {e}")).to_response();
                let _ = Response::write_to(&resp, &mut writer, false);
                break;
            }
        }
    }
}
