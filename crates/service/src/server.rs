//! The listener/worker loop.
//!
//! One acceptor (the caller's thread) feeds accepted connections to a fixed
//! pool of worker threads over an `mpsc` channel — the same
//! std-thread-plus-channels discipline as `smin-sampling::parallel`, applied
//! to connections instead of sketch chunks. Each worker owns a connection
//! for its whole keep-alive lifetime; per-request parallelism happens
//! *inside* the algorithm (sketch-generation workers), so one heavy request
//! never blocks the accept loop.

use crate::http::{read_request, Response};
use crate::routes::{handle, ServiceState};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Per-connection read timeout: a stalled peer releases its worker instead
/// of pinning it forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Directory `{"path": …}` graph loads are confined to.
    pub graphs_dir: Option<std::path::PathBuf>,
    /// Durable registry root: snapshots + manifest live here and are
    /// restored on boot, so restarts keep every registered graph and token.
    pub state_dir: Option<std::path::PathBuf>,
    /// Memoized `/v1/select` responses retained.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            graphs_dir: None,
            state_dir: None,
            cache_capacity: 1024,
        }
    }
}

/// A bound (not yet serving) server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    workers: usize,
}

impl Server {
    /// Binds the listener and builds the shared state.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = ServiceState::with_state_dir(
            config.graphs_dir.clone(),
            config.cache_capacity,
            config.state_dir.clone(),
        )
        .map_err(std::io::Error::other)?;
        Ok(Server {
            listener,
            state: Arc::new(state),
            workers: config.workers.max(1),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `stop` turns true (checked after each accept). Blocks
    /// the calling thread; the CLI calls this directly, tests use
    /// [`Server::spawn`].
    pub fn run(self, stop: &AtomicBool) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                scope.spawn(move || loop {
                    // Holding the lock only while dequeuing: the handler
                    // runs unlocked so workers drain connections in parallel.
                    let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match conn {
                        Ok(stream) => handle_connection(stream, &state),
                        Err(_) => break, // acceptor gone: shutting down
                    }
                });
            }
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            drop(tx);
        });
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle that stops
    /// it. Used by tests and anything embedding the service.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_inner = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let _ = self.run(&stop_inner);
        });
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a background server; shuts it down on [`ServerHandle::shutdown`]
/// or drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the server thread. In-flight connections
    /// finish their current request; idle keep-alive connections are
    /// released by their read timeout or peer close.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection for its keep-alive lifetime.
fn handle_connection(stream: TcpStream, state: &ServiceState) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(None) => break, // peer closed cleanly
            Ok(Some(req)) => {
                let keep_alive = req.keep_alive();
                let resp = handle(state, &req);
                if resp.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            Err(e) if e.is_io => break, // timeout / reset / truncation: close silently
            Err(e) => {
                // Protocol violation: the stream position is unknowable, so
                // answer once and close.
                let resp = crate::error::ServiceError::bad_request(format!("malformed HTTP: {e}"))
                    .to_response();
                let _ = Response::write_to(&resp, &mut writer, false);
                break;
            }
        }
    }
}
