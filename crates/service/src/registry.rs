//! The cached-graph registry: graphs loaded once, served many times.
//!
//! Each registered graph owns a pool of warm [`AstiSession`]s — the sketch
//! pool arena, worker scratch, coverage engine, and residual mask survive
//! between requests, so a select on a warm graph performs no cold
//! allocations. Sessions are checked out per request and checked back in
//! afterwards; concurrent requests against the same graph each get their
//! own session (a new one is built when the shelf is empty).

use crate::error::ServiceError;
use serde_json::{json, Value};
use smin_core::AstiSession;
use smin_graph::{store, Graph};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Warm sessions retained per graph; beyond this, returned sessions are
/// dropped. Matches the realistic concurrency of one worker pool — keeping
/// more would only hold dead arena memory.
const MAX_WARM_SESSIONS: usize = 16;

/// One registered graph plus its reusable per-request state.
pub struct GraphEntry {
    /// Registry key.
    pub id: String,
    /// Content checksum of the graph ([`store::content_checksum`]): pins the
    /// exact registered graph in response-cache keys, and is stable across
    /// restarts and machines — the same bytes always earn the same token, so
    /// a warm-restarted server keeps serving its memoized responses.
    pub token: u64,
    /// Where the graph came from (`generated:ba`, `file:web.txt`, …).
    pub source: String,
    /// State-dir-relative path of the persisted `.smg` snapshot, when the
    /// server runs with `--state-dir` (e.g. `graphs/web.smg`).
    pub snapshot: Option<String>,
    pub graph: Arc<Graph>,
    /// Shelf of warm sessions (LIFO: the most recently used — hottest —
    /// session is handed out first).
    sessions: Mutex<Vec<AstiSession>>,
    /// Total `/v1/select` requests served against this graph.
    pub selects: AtomicU64,
}

impl GraphEntry {
    /// Checks out a session: warm if available, cold otherwise.
    pub fn checkout_session(&self) -> AstiSession {
        let warm = self.lock_sessions().pop();
        warm.unwrap_or_else(|| AstiSession::new(self.graph.n()))
    }

    /// Returns a session to the shelf for the next request.
    pub fn checkin_session(&self, session: AstiSession) {
        let mut shelf = self.lock_sessions();
        if shelf.len() < MAX_WARM_SESSIONS {
            shelf.push(session);
        }
    }

    /// Number of warm sessions currently shelved.
    pub fn warm_sessions(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Heap bytes retained by shelved sketch pools (observability).
    pub fn warm_pool_bytes(&self) -> usize {
        self.lock_sessions()
            .iter()
            .map(|s| s.pool_heap_bytes())
            .sum()
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, Vec<AstiSession>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl std::fmt::Debug for GraphEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphEntry")
            .field("id", &self.id)
            .field("token", &self.token)
            .field("source", &self.source)
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .finish_non_exhaustive()
    }
}

/// All registered graphs, keyed by id. Ordered map so every iteration —
/// listings, debug dumps — is deterministic without an explicit sort.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, Arc<GraphEntry>>,
    next_auto_id: u64,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Validates a requested id (or auto-assigns `g0`, `g1`, … for `None`)
    /// and rejects one that is already taken — delete first to replace, so a
    /// client can never silently swap another client's graph. Callers that
    /// need the id before registering (to derive a snapshot path) resolve
    /// first, then call [`Registry::register_resolved`] under the same lock.
    pub fn resolve_id(&mut self, id: Option<String>) -> Result<String, ServiceError> {
        match id {
            Some(id) => {
                if id.is_empty()
                    || !id
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c))
                {
                    return Err(ServiceError::bad_request(format!(
                        "graph id {id:?} must be non-empty [A-Za-z0-9._-]"
                    )));
                }
                if self.entries.contains_key(&id) {
                    return Err(ServiceError::new(
                        409,
                        "graph_exists",
                        format!("graph '{id}' is already registered; DELETE it first"),
                    ));
                }
                Ok(id)
            }
            None => loop {
                let candidate = format!("g{}", self.next_auto_id);
                self.next_auto_id += 1;
                if !self.entries.contains_key(&candidate) {
                    break Ok(candidate);
                }
            },
        }
    }

    /// Registers a graph under an id already vetted by
    /// [`Registry::resolve_id`]. The entry's token is the graph's content
    /// checksum, so identical graphs earn identical tokens across restarts.
    pub fn register_resolved(
        &mut self,
        id: String,
        graph: Graph,
        source: String,
        snapshot: Option<String>,
    ) -> Result<Arc<GraphEntry>, ServiceError> {
        if self.entries.contains_key(&id) {
            return Err(ServiceError::new(
                409,
                "graph_exists",
                format!("graph '{id}' is already registered; DELETE it first"),
            ));
        }
        let entry = Arc::new(GraphEntry {
            id: id.clone(),
            token: store::content_checksum(&graph),
            source,
            snapshot,
            graph: Arc::new(graph),
            sessions: Mutex::new(Vec::new()),
            selects: AtomicU64::new(0),
        });
        self.entries.insert(id, Arc::clone(&entry));
        Ok(entry)
    }

    /// Registers a graph under `id` (auto-assigned when `None`); see
    /// [`Registry::resolve_id`] for the id rules.
    pub fn register(
        &mut self,
        id: Option<String>,
        graph: Graph,
        source: String,
    ) -> Result<Arc<GraphEntry>, ServiceError> {
        let id = self.resolve_id(id)?;
        self.register_resolved(id, graph, source, None)
    }

    /// Looks up a graph by id.
    pub fn get(&self, id: &str) -> Option<Arc<GraphEntry>> {
        self.entries.get(id).cloned()
    }

    /// Removes a graph; `true` if it existed. In-flight requests holding the
    /// `Arc<GraphEntry>` finish normally; the memory is freed when the last
    /// reference drops.
    pub fn remove(&mut self, id: &str) -> bool {
        self.entries.remove(id).is_some()
    }

    /// All entries, sorted by id (the map's key order) for stable listings.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        self.entries.values().cloned().collect()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Records a select against an entry (relaxed: it is a metric, not a lock).
pub fn record_select(entry: &GraphEntry) {
    entry.selects.fetch_add(1, Ordering::Relaxed);
}

/// One line of the persisted registry manifest: which graph lives in which
/// snapshot file, and what its content checksum must be.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Registry id the graph is served under.
    pub id: String,
    /// Snapshot path relative to the state dir (`graphs/<id>.smg`).
    pub file: String,
    /// Expected [`store::content_checksum`] of the snapshot — also the
    /// registry token, so listings are stable across restarts.
    pub checksum: u64,
    /// Original source string (`generated:er`, `file:web.txt`, …).
    pub source: String,
}

/// Schema version of `manifest.json`.
const MANIFEST_VERSION: f64 = 1.0;

/// Serializes manifest entries as deterministic JSON (insertion-ordered
/// fields, checksums as zero-padded hex strings — the JSON number type
/// cannot hold a u64 losslessly).
pub fn manifest_json(entries: &[ManifestEntry]) -> Result<String, String> {
    let graphs: Vec<Value> = entries
        .iter()
        .map(|e| {
            json!({
                "id": e.id.clone(),
                "file": e.file.clone(),
                "checksum": format!("{:016x}", e.checksum),
                "source": e.source.clone(),
            })
        })
        .collect();
    let doc = json!({ "version": 1, "graphs": graphs });
    serde_json::to_string(&doc).map_err(|e| format!("manifest encoding: {e}"))
}

fn manifest_str_field(entry: &Value, key: &str) -> Result<String, String> {
    match crate::json::field(entry, key) {
        Some(Value::String(s)) => Ok(s.clone()),
        _ => Err(format!("manifest entry is missing string field '{key}'")),
    }
}

/// Parses `manifest.json`. Errors are strings because a bad manifest is a
/// boot-time configuration failure, not a request-path condition.
pub fn parse_manifest(text: &str) -> Result<Vec<ManifestEntry>, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
    match crate::json::field(&doc, "version") {
        Some(Value::Number(v)) if *v == MANIFEST_VERSION => {}
        other => return Err(format!("unsupported manifest version {other:?}")),
    }
    let items = match crate::json::field(&doc, "graphs") {
        Some(Value::Array(items)) => items,
        _ => return Err("manifest is missing the 'graphs' array".to_string()),
    };
    let mut entries = Vec::with_capacity(items.len());
    for item in items {
        let id = manifest_str_field(item, "id")?;
        let file = manifest_str_field(item, "file")?;
        let hex = manifest_str_field(item, "checksum")?;
        let checksum = u64::from_str_radix(&hex, 16)
            .map_err(|e| format!("graph '{id}': bad checksum {hex:?}: {e}"))?;
        let source = manifest_str_field(item, "source")?;
        entries.push(ManifestEntry {
            id,
            file,
            checksum,
            source,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smin_graph::GraphBuilder;

    fn tiny(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..(n - 1) as u32 {
            b.add_edge_p(u, u + 1, 0.5).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn register_get_remove_roundtrip() {
        let mut r = Registry::new();
        let e = r
            .register(Some("web".into()), tiny(5), "test".into())
            .unwrap();
        assert_eq!(e.id, "web");
        assert_eq!(e.graph.n(), 5);
        assert!(r.get("web").is_some());
        assert_eq!(r.len(), 1);
        assert!(r.remove("web"));
        assert!(!r.remove("web"));
        assert!(r.get("web").is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_id_is_conflict() {
        let mut r = Registry::new();
        r.register(Some("g".into()), tiny(3), "test".into())
            .unwrap();
        let err = r
            .register(Some("g".into()), tiny(4), "test".into())
            .unwrap_err();
        assert_eq!(err.status, 409);
        assert_eq!(err.code, "graph_exists");
        // the original survives
        assert_eq!(r.get("g").unwrap().graph.n(), 3);
    }

    #[test]
    fn bad_ids_are_rejected() {
        let mut r = Registry::new();
        assert!(r
            .register(Some(String::new()), tiny(3), "t".into())
            .is_err());
        assert!(r.register(Some("a/b".into()), tiny(3), "t".into()).is_err());
        assert!(r
            .register(Some("ok-id_1.bin".into()), tiny(3), "t".into())
            .is_ok());
    }

    #[test]
    fn auto_ids_skip_taken_names() {
        let mut r = Registry::new();
        r.register(Some("g0".into()), tiny(3), "t".into()).unwrap();
        let e = r.register(None, tiny(3), "t".into()).unwrap();
        assert_eq!(e.id, "g1");
        let e = r.register(None, tiny(3), "t".into()).unwrap();
        assert_eq!(e.id, "g2");
    }

    #[test]
    fn tokens_are_content_derived() {
        let mut r = Registry::new();
        let a = r.register(Some("g".into()), tiny(3), "t".into()).unwrap();
        r.remove("g");
        let b = r.register(Some("g".into()), tiny(3), "t".into()).unwrap();
        assert_eq!(
            a.token, b.token,
            "identical content re-registered under the same id keeps its token"
        );
        r.remove("g");
        let c = r.register(Some("g".into()), tiny(4), "t".into()).unwrap();
        assert_ne!(a.token, c.token, "different content must change the token");
        assert_eq!(
            a.token,
            smin_graph::store::content_checksum(&tiny(3)),
            "the token is the snapshot content checksum"
        );
    }

    #[test]
    fn manifest_roundtrips() {
        let entries = vec![
            ManifestEntry {
                id: "alpha".into(),
                file: "graphs/alpha.smg".into(),
                checksum: 0xDEAD_BEEF_0123_4567,
                source: "generated:er".into(),
            },
            ManifestEntry {
                id: "beta".into(),
                file: "graphs/beta.smg".into(),
                checksum: u64::MAX,
                source: "file:web.txt".into(),
            },
        ];
        let text = manifest_json(&entries).unwrap();
        assert_eq!(parse_manifest(&text).unwrap(), entries);
        // Deterministic: same entries, same bytes.
        assert_eq!(manifest_json(&entries).unwrap(), text);
        // u64 checksums survive losslessly via hex strings.
        assert!(text.contains("ffffffffffffffff"), "{text}");
    }

    #[test]
    fn manifest_rejects_damage() {
        assert!(parse_manifest("not json").is_err());
        assert!(parse_manifest(r#"{"version":2,"graphs":[]}"#).is_err());
        assert!(parse_manifest(r#"{"version":1}"#).is_err());
        assert!(parse_manifest(
            r#"{"version":1,"graphs":[{"id":"g","file":"f","checksum":"xyz","source":"s"}]}"#
        )
        .is_err());
        assert!(parse_manifest(r#"{"version":1,"graphs":[{"id":"g"}]}"#).is_err());
        assert_eq!(
            parse_manifest(r#"{"version":1,"graphs":[]}"#).unwrap(),
            vec![]
        );
    }

    #[test]
    fn register_resolved_rejects_duplicates() {
        let mut r = Registry::new();
        r.register_resolved("g".into(), tiny(3), "t".into(), None)
            .unwrap();
        let err = r
            .register_resolved("g".into(), tiny(3), "t".into(), None)
            .unwrap_err();
        assert_eq!(err.status, 409);
    }

    #[test]
    fn session_shelf_recycles() {
        let mut r = Registry::new();
        let e = r.register(Some("g".into()), tiny(6), "t".into()).unwrap();
        assert_eq!(e.warm_sessions(), 0);
        let s = e.checkout_session();
        assert_eq!(s.n(), 6);
        e.checkin_session(s);
        assert_eq!(e.warm_sessions(), 1);
        let _s = e.checkout_session();
        assert_eq!(e.warm_sessions(), 0, "checkout drains the shelf");
    }

    #[test]
    fn shelf_is_bounded() {
        let mut r = Registry::new();
        let e = r.register(Some("g".into()), tiny(3), "t".into()).unwrap();
        for _ in 0..MAX_WARM_SESSIONS + 5 {
            e.checkin_session(AstiSession::new(3));
        }
        assert_eq!(e.warm_sessions(), MAX_WARM_SESSIONS);
    }

    #[test]
    fn listing_is_sorted() {
        let mut r = Registry::new();
        for id in ["zeta", "alpha", "mid"] {
            r.register(Some(id.into()), tiny(3), "t".into()).unwrap();
        }
        let ids: Vec<_> = r.list().iter().map(|e| e.id.clone()).collect();
        assert_eq!(ids, vec!["alpha", "mid", "zeta"]);
    }
}
