//! The cached-graph registry: graphs loaded once, served many times.
//!
//! Each registered graph owns a pool of warm [`AstiSession`]s — the sketch
//! pool arena, worker scratch, coverage engine, and residual mask survive
//! between requests, so a select on a warm graph performs no cold
//! allocations. Sessions are checked out per request and checked back in
//! afterwards; concurrent requests against the same graph each get their
//! own session (a new one is built when the shelf is empty).

use crate::error::ServiceError;
use smin_core::AstiSession;
use smin_graph::Graph;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Warm sessions retained per graph; beyond this, returned sessions are
/// dropped. Matches the realistic concurrency of one worker pool — keeping
/// more would only hold dead arena memory.
const MAX_WARM_SESSIONS: usize = 16;

/// One registered graph plus its reusable per-request state.
pub struct GraphEntry {
    /// Registry key.
    pub id: String,
    /// Registration epoch: distinguishes a re-registered graph under a
    /// reused id, so response-cache keys can never serve stale results.
    pub token: u64,
    /// Where the graph came from (`generated:ba`, `file:web.txt`, …).
    pub source: String,
    pub graph: Arc<Graph>,
    /// Shelf of warm sessions (LIFO: the most recently used — hottest —
    /// session is handed out first).
    sessions: Mutex<Vec<AstiSession>>,
    /// Total `/v1/select` requests served against this graph.
    pub selects: AtomicU64,
}

impl GraphEntry {
    /// Checks out a session: warm if available, cold otherwise.
    pub fn checkout_session(&self) -> AstiSession {
        let warm = self.lock_sessions().pop();
        warm.unwrap_or_else(|| AstiSession::new(self.graph.n()))
    }

    /// Returns a session to the shelf for the next request.
    pub fn checkin_session(&self, session: AstiSession) {
        let mut shelf = self.lock_sessions();
        if shelf.len() < MAX_WARM_SESSIONS {
            shelf.push(session);
        }
    }

    /// Number of warm sessions currently shelved.
    pub fn warm_sessions(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Heap bytes retained by shelved sketch pools (observability).
    pub fn warm_pool_bytes(&self) -> usize {
        self.lock_sessions()
            .iter()
            .map(|s| s.pool_heap_bytes())
            .sum()
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, Vec<AstiSession>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl std::fmt::Debug for GraphEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphEntry")
            .field("id", &self.id)
            .field("token", &self.token)
            .field("source", &self.source)
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .finish_non_exhaustive()
    }
}

/// All registered graphs, keyed by id. Ordered map so every iteration —
/// listings, debug dumps — is deterministic without an explicit sort.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, Arc<GraphEntry>>,
    next_token: u64,
    next_auto_id: u64,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a graph under `id` (auto-assigned `g0`, `g1`, … when
    /// `None`). Rejects an id that is already taken — delete first to
    /// replace, so a client can never silently swap another client's graph.
    pub fn register(
        &mut self,
        id: Option<String>,
        graph: Graph,
        source: String,
    ) -> Result<Arc<GraphEntry>, ServiceError> {
        let id = match id {
            Some(id) => {
                if id.is_empty()
                    || !id
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c))
                {
                    return Err(ServiceError::bad_request(format!(
                        "graph id {id:?} must be non-empty [A-Za-z0-9._-]"
                    )));
                }
                if self.entries.contains_key(&id) {
                    return Err(ServiceError::new(
                        409,
                        "graph_exists",
                        format!("graph '{id}' is already registered; DELETE it first"),
                    ));
                }
                id
            }
            None => loop {
                let candidate = format!("g{}", self.next_auto_id);
                self.next_auto_id += 1;
                if !self.entries.contains_key(&candidate) {
                    break candidate;
                }
            },
        };
        self.next_token += 1;
        let entry = Arc::new(GraphEntry {
            id: id.clone(),
            token: self.next_token,
            source,
            graph: Arc::new(graph),
            sessions: Mutex::new(Vec::new()),
            selects: AtomicU64::new(0),
        });
        self.entries.insert(id, Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a graph by id.
    pub fn get(&self, id: &str) -> Option<Arc<GraphEntry>> {
        self.entries.get(id).cloned()
    }

    /// Removes a graph; `true` if it existed. In-flight requests holding the
    /// `Arc<GraphEntry>` finish normally; the memory is freed when the last
    /// reference drops.
    pub fn remove(&mut self, id: &str) -> bool {
        self.entries.remove(id).is_some()
    }

    /// All entries, sorted by id (the map's key order) for stable listings.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        self.entries.values().cloned().collect()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Records a select against an entry (relaxed: it is a metric, not a lock).
pub fn record_select(entry: &GraphEntry) {
    entry.selects.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smin_graph::GraphBuilder;

    fn tiny(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..(n - 1) as u32 {
            b.add_edge_p(u, u + 1, 0.5).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn register_get_remove_roundtrip() {
        let mut r = Registry::new();
        let e = r
            .register(Some("web".into()), tiny(5), "test".into())
            .unwrap();
        assert_eq!(e.id, "web");
        assert_eq!(e.graph.n(), 5);
        assert!(r.get("web").is_some());
        assert_eq!(r.len(), 1);
        assert!(r.remove("web"));
        assert!(!r.remove("web"));
        assert!(r.get("web").is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn duplicate_id_is_conflict() {
        let mut r = Registry::new();
        r.register(Some("g".into()), tiny(3), "test".into())
            .unwrap();
        let err = r
            .register(Some("g".into()), tiny(4), "test".into())
            .unwrap_err();
        assert_eq!(err.status, 409);
        assert_eq!(err.code, "graph_exists");
        // the original survives
        assert_eq!(r.get("g").unwrap().graph.n(), 3);
    }

    #[test]
    fn bad_ids_are_rejected() {
        let mut r = Registry::new();
        assert!(r
            .register(Some(String::new()), tiny(3), "t".into())
            .is_err());
        assert!(r.register(Some("a/b".into()), tiny(3), "t".into()).is_err());
        assert!(r
            .register(Some("ok-id_1.bin".into()), tiny(3), "t".into())
            .is_ok());
    }

    #[test]
    fn auto_ids_skip_taken_names() {
        let mut r = Registry::new();
        r.register(Some("g0".into()), tiny(3), "t".into()).unwrap();
        let e = r.register(None, tiny(3), "t".into()).unwrap();
        assert_eq!(e.id, "g1");
        let e = r.register(None, tiny(3), "t".into()).unwrap();
        assert_eq!(e.id, "g2");
    }

    #[test]
    fn tokens_are_unique_across_reregistration() {
        let mut r = Registry::new();
        let a = r.register(Some("g".into()), tiny(3), "t".into()).unwrap();
        r.remove("g");
        let b = r.register(Some("g".into()), tiny(3), "t".into()).unwrap();
        assert_ne!(a.token, b.token, "reused id must get a fresh token");
    }

    #[test]
    fn session_shelf_recycles() {
        let mut r = Registry::new();
        let e = r.register(Some("g".into()), tiny(6), "t".into()).unwrap();
        assert_eq!(e.warm_sessions(), 0);
        let s = e.checkout_session();
        assert_eq!(s.n(), 6);
        e.checkin_session(s);
        assert_eq!(e.warm_sessions(), 1);
        let _s = e.checkout_session();
        assert_eq!(e.warm_sessions(), 0, "checkout drains the shelf");
    }

    #[test]
    fn shelf_is_bounded() {
        let mut r = Registry::new();
        let e = r.register(Some("g".into()), tiny(3), "t".into()).unwrap();
        for _ in 0..MAX_WARM_SESSIONS + 5 {
            e.checkin_session(AstiSession::new(3));
        }
        assert_eq!(e.warm_sessions(), MAX_WARM_SESSIONS);
    }

    #[test]
    fn listing_is_sorted() {
        let mut r = Registry::new();
        for id in ["zeta", "alpha", "mid"] {
            r.register(Some(id.into()), tiny(3), "t".into()).unwrap();
        }
        let ids: Vec<_> = r.list().iter().map(|e| e.id.clone()).collect();
        assert_eq!(ids, vec!["alpha", "mid", "zeta"]);
    }
}
