//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! The service speaks exactly the subset a JSON API needs — request line,
//! headers, `Content-Length` bodies, keep-alive — hand-rolled because the
//! offline build has no HTTP crates. This module is the server side
//! ([`read_request`]/[`Response`]); the matching client-side framing lives
//! in [`crate::client`], and the integration tests drive one against the
//! other to keep the two implementations honest.

use std::io::{BufRead, Write};

/// Largest accepted request body (4 MiB): generous for JSON control-plane
/// bodies, small enough that a misbehaving client cannot balloon a worker.
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Largest accepted request/header line.
pub const MAX_LINE_BYTES: usize = 8 << 10;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 100;

/// A parse-level failure; mapped to a 400 close-connection response.
#[derive(Debug)]
pub struct HttpError {
    pub message: String,
    /// `true` when the failure is transport-level (timeout, reset, EOF
    /// mid-request) rather than a protocol violation. Transport failures
    /// close the connection silently — answering them with a 400 would
    /// desync a keep-alive peer that sent nothing (e.g. an idle client
    /// whose read timeout fired server-side).
    pub is_io: bool,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, HttpError> {
    Err(HttpError {
        message: msg.into(),
        is_io: false,
    })
}

fn io_err<T>(msg: impl Into<String>) -> Result<T, HttpError> {
    Err(HttpError {
        message: msg.into(),
        is_io: true,
    })
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub version: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value matching `name` (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 defaults to keep-alive; `Connection: close` opts out).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Reads one line up to CRLF (or LF), enforcing [`MAX_LINE_BYTES`].
/// `Ok(None)` signals clean EOF *before any byte* — the peer closed a
/// keep-alive connection between requests.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return io_err(format!("read failed: {e}")),
    }
    if buf.len() > MAX_LINE_BYTES {
        return bad("header line too long");
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(s)),
        Err(_) => bad("header line is not UTF-8"),
    }
}

/// Parses one request from the stream. `Ok(None)` means the peer closed the
/// connection cleanly before sending another request (normal keep-alive
/// termination).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    if request_line.is_empty() {
        return bad("empty request line");
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(format!("malformed request line: {request_line:?}"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return bad(format!("malformed request line: {request_line:?}"));
    }

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return io_err("connection closed mid-headers");
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return bad("too many headers");
        }
        let Some((k, v)) = line.split_once(':') else {
            return bad(format!("malformed header: {line:?}"));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }

    // The only body framing supported is Content-Length. A chunked body
    // would otherwise be misread as pipelined requests (response desync),
    // so reject it explicitly — the 400 closes the connection.
    if headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
    {
        return bad("Transfer-Encoding is not supported; send a Content-Length body");
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|e| HttpError {
            message: format!("bad content-length: {e}"),
            is_io: false,
        })?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return bad(format!("body of {content_length} bytes exceeds limit"));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body).map_err(|e| HttpError {
            message: format!("body read failed: {e}"),
            is_io: true,
        })?;
    }

    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        version: version.to_string(),
        headers,
        body,
    }))
}

/// Canonical reason phrases for the statuses the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// One response ready to serialize: status, extra headers, JSON body.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status. Serialization failure (which
    /// the vendored shim never produces for the values we build) degrades to
    /// a static 500 body instead of panicking the connection worker.
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        match serde_json::to_string(value) {
            Ok(s) => Response {
                status,
                headers: Vec::new(),
                body: s.into_bytes(),
            },
            Err(_) => Response {
                status: 500,
                headers: Vec::new(),
                body: br#"{"error":{"code":"serialization_failed","message":"response encoding failed"}}"#.to_vec(),
            },
        }
    }

    /// Attaches one extra header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Writes the response; `keep_alive` picks the `Connection` header.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (k, v) in &self.headers {
            write!(writer, "{k}: {v}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse("POST /v1/select HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_error() {
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET /\r\n\r\n").is_err(), "missing version");
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err(), "wrong protocol");
    }

    #[test]
    fn truncated_headers_are_an_error() {
        assert!(parse("GET / HTTP/1.1\r\nHost: x\r\n").is_err());
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 5 << 20);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn bad_content_length_is_an_error() {
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").is_err());
    }

    #[test]
    fn transfer_encoding_is_rejected_as_protocol_error() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2f\r\n").unwrap_err();
        assert!(!err.is_io, "protocol violation, not a transport failure");
        assert!(err.message.contains("Transfer-Encoding"), "{err}");
    }

    #[test]
    fn truncation_is_io_parse_garbage_is_not() {
        // Mid-headers EOF and short bodies are transport-level (close
        // silently); garbage framing is a protocol error (answer 400).
        let io = parse("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(io.is_io);
        let io = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(io.is_io);
        let proto = parse("GARBAGE\r\n\r\n").unwrap_err();
        assert!(!proto.is_io);
    }

    #[test]
    fn response_wire_format() {
        let resp = Response::json(200, &serde_json::json!({"ok": true})).with_header("X-Test", "1");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn status_texts_cover_service_statuses() {
        for s in [200, 201, 400, 404, 405, 409, 413, 422, 500] {
            assert_ne!(status_text(s), "Unknown", "status {s}");
        }
    }
}
