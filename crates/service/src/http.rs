//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! The service speaks exactly the subset a JSON API needs — request line,
//! headers, `Content-Length` bodies, keep-alive — hand-rolled because the
//! offline build has no HTTP crates. This module is the server side
//! ([`read_request`]/[`Response`]); the matching client-side framing lives
//! in [`crate::client`], and the integration tests drive one against the
//! other to keep the two implementations honest.

use std::io::{BufRead, Write};

/// Largest accepted request body (4 MiB): generous for JSON control-plane
/// bodies, small enough that a misbehaving client cannot balloon a worker.
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Largest accepted request/header line.
pub const MAX_LINE_BYTES: usize = 8 << 10;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 100;
/// Per-connection cap on bytes buffered ahead of the incremental parser.
/// Sized so any single legal request (head + body) always fits — a parser
/// waiting for more bytes is therefore always below it — which means a
/// connection at the cap necessarily holds at least one complete request
/// (or a protocol error) that can be consumed without reading further.
/// The transport stops reading the socket at the cap and resumes as the
/// pipelined backlog drains, bounding per-connection memory.
pub const MAX_BUFFERED_BYTES: usize = MAX_BODY_BYTES + 2 * MAX_LINE_BYTES;

/// A parse-level failure; mapped to a 400 close-connection response.
#[derive(Debug)]
pub struct HttpError {
    pub message: String,
    /// `true` when the failure is transport-level (timeout, reset, EOF
    /// mid-request) rather than a protocol violation. Transport failures
    /// close the connection silently — answering them with a 400 would
    /// desync a keep-alive peer that sent nothing (e.g. an idle client
    /// whose read timeout fired server-side).
    pub is_io: bool,
    /// `true` when the request line and all headers were already parsed
    /// when the failure hit — i.e. the peer committed to a request and
    /// stalled mid-body. Such a peer deserves a 408 before close rather
    /// than the silent close an idle connection gets.
    pub head_parsed: bool,
    /// `true` when the underlying I/O failure was a read timeout
    /// (`WouldBlock`/`TimedOut`) rather than a reset or EOF.
    pub timed_out: bool,
}

impl HttpError {
    fn protocol(message: impl Into<String>) -> HttpError {
        HttpError {
            message: message.into(),
            is_io: false,
            head_parsed: false,
            timed_out: false,
        }
    }

    fn io(message: impl Into<String>, kind: std::io::ErrorKind) -> HttpError {
        use std::io::ErrorKind;
        HttpError {
            message: message.into(),
            is_io: true,
            head_parsed: false,
            timed_out: matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, HttpError> {
    Err(HttpError::protocol(msg))
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub version: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value matching `name` (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange
    /// (HTTP/1.1 defaults to keep-alive; `Connection: close` opts out).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Reads one line up to CRLF (or LF), enforcing [`MAX_LINE_BYTES`].
/// `Ok(None)` signals clean EOF *before any byte* — the peer closed a
/// keep-alive connection between requests.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut limited = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(HttpError::io(format!("read failed: {e}"), e.kind())),
    }
    if buf.len() > MAX_LINE_BYTES {
        return bad("header line too long");
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(s)),
        Err(_) => bad("header line is not UTF-8"),
    }
}

/// Parses one request from the stream. `Ok(None)` means the peer closed the
/// connection cleanly before sending another request (normal keep-alive
/// termination).
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    if request_line.is_empty() {
        return bad("empty request line");
    }
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(format!("malformed request line: {request_line:?}"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return bad(format!("malformed request line: {request_line:?}"));
    }

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(HttpError::io(
                "connection closed mid-headers",
                std::io::ErrorKind::UnexpectedEof,
            ));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return bad("too many headers");
        }
        let Some((k, v)) = line.split_once(':') else {
            return bad(format!("malformed header: {line:?}"));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }

    // The only body framing supported is Content-Length. A chunked body
    // would otherwise be misread as pipelined requests (response desync),
    // so reject it explicitly — the 400 closes the connection.
    if headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
    {
        return bad("Transfer-Encoding is not supported; send a Content-Length body");
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|e| HttpError::protocol(format!("bad content-length: {e}")))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return bad(format!("body of {content_length} bytes exceeds limit"));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body).map_err(|e| {
            let mut err = HttpError::io(format!("body read failed: {e}"), e.kind());
            err.head_parsed = true;
            err
        })?;
    }

    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        version: version.to_string(),
        headers,
        body,
    }))
}

/// Incremental HTTP/1.1 request parser for the non-blocking transport:
/// raw bytes go in via [`RequestParser::feed`] as they arrive off the
/// socket, complete requests come out of [`RequestParser::try_next`] once
/// they frame. Limits and error messages match [`read_request`] exactly —
/// the proptest suite pins the two byte-for-byte equivalent at every
/// possible split boundary — so both transports reject identical inputs
/// with identical diagnostics.
#[derive(Debug, Default)]
pub struct RequestParser {
    /// Raw bytes; `start..` is unconsumed, `..start` is already parsed.
    buf: Vec<u8>,
    start: usize,
    /// High-water mark of the newline scan, so repeated `try_next` calls
    /// on a slowly-arriving line stay O(new bytes), not O(line²).
    scan: usize,
    state: ParseState,
}

#[derive(Debug, Default)]
enum ParseState {
    #[default]
    RequestLine,
    Headers(Head),
    Body(Head, usize),
}

#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    version: String,
    headers: Vec<(String, String)>,
}

impl RequestParser {
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends raw socket bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request.
    pub fn buffered_len(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    /// `true` once any byte of a new request has arrived (or a head is
    /// mid-parse): a read timeout now is a stalled request, not an idle
    /// keep-alive connection.
    pub fn mid_request(&self) -> bool {
        !matches!(self.state, ParseState::RequestLine) || self.buffered_len() > 0
    }

    /// `true` when the request line and headers are fully parsed and the
    /// parser is waiting on body bytes — the condition under which a read
    /// timeout earns a 408 instead of a silent close.
    pub fn head_parsed(&self) -> bool {
        matches!(self.state, ParseState::Body(..))
    }

    /// Pulls the next complete request out of the buffer. `Ok(None)`
    /// means "need more bytes"; errors are protocol violations and the
    /// connection must be closed after an optional 400.
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        let out = self.advance();
        // Reclaim the consumed prefix so a long-lived keep-alive
        // connection cannot grow the buffer without bound.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.scan = self.scan.saturating_sub(self.start);
            self.start = 0;
        }
        out
    }

    /// One line ending in `\n`, trailing `\r`s stripped (mirrors
    /// [`read_line`]'s tolerance for bare-LF peers). `Ok(None)` = the
    /// terminator has not arrived yet.
    fn take_line(&mut self) -> Result<Option<String>, HttpError> {
        let pending = self.buf.get(self.scan..).unwrap_or(&[]);
        let Some(rel) = pending.iter().position(|&b| b == b'\n') else {
            self.scan = self.buf.len();
            if self.buffered_len() > MAX_LINE_BYTES {
                return bad("header line too long");
            }
            return Ok(None);
        };
        let nl = self.scan + rel;
        if nl + 1 - self.start > MAX_LINE_BYTES {
            return bad("header line too long");
        }
        let mut line = self.buf.get(self.start..nl).unwrap_or(&[]).to_vec();
        while matches!(line.last(), Some(b'\r')) {
            line.pop();
        }
        self.start = nl + 1;
        self.scan = self.start;
        match String::from_utf8(line) {
            Ok(s) => Ok(Some(s)),
            Err(_) => bad("header line is not UTF-8"),
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match self.state {
                ParseState::RequestLine => {
                    if self.buffered_len() == 0 {
                        return Ok(None);
                    }
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    if line.is_empty() {
                        return bad("empty request line");
                    }
                    let mut parts = line.split_ascii_whitespace();
                    let (Some(method), Some(path), Some(version)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return bad(format!("malformed request line: {line:?}"));
                    };
                    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
                        return bad(format!("malformed request line: {line:?}"));
                    }
                    self.state = ParseState::Headers(Head {
                        method: method.to_string(),
                        path: path.to_string(),
                        version: version.to_string(),
                        headers: Vec::new(),
                    });
                }
                ParseState::Headers(_) => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    let ParseState::Headers(ref mut head) = self.state else {
                        return bad("parser state desync");
                    };
                    if !line.is_empty() {
                        if head.headers.len() >= MAX_HEADERS {
                            return bad("too many headers");
                        }
                        let Some((k, v)) = line.split_once(':') else {
                            return bad(format!("malformed header: {line:?}"));
                        };
                        head.headers
                            .push((k.trim().to_string(), v.trim().to_string()));
                        continue;
                    }
                    // Blank line: the head is complete. Same body-framing
                    // rules as the blocking parser.
                    if head
                        .headers
                        .iter()
                        .any(|(k, _)| k.eq_ignore_ascii_case("transfer-encoding"))
                    {
                        return bad(
                            "Transfer-Encoding is not supported; send a Content-Length body",
                        );
                    }
                    let content_length = head
                        .headers
                        .iter()
                        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                        .map(|(_, v)| v.parse::<usize>())
                        .transpose()
                        .map_err(|e| HttpError::protocol(format!("bad content-length: {e}")))?
                        .unwrap_or(0);
                    if content_length > MAX_BODY_BYTES {
                        return bad(format!("body of {content_length} bytes exceeds limit"));
                    }
                    let ParseState::Headers(head) = std::mem::take(&mut self.state) else {
                        return bad("parser state desync");
                    };
                    self.state = ParseState::Body(head, content_length);
                }
                ParseState::Body(_, need) => {
                    if self.buffered_len() < need {
                        return Ok(None);
                    }
                    let end = self.start + need;
                    let body = self.buf.get(self.start..end).unwrap_or(&[]).to_vec();
                    self.start = end;
                    self.scan = end;
                    let ParseState::Body(head, _) = std::mem::take(&mut self.state) else {
                        return bad("parser state desync");
                    };
                    return Ok(Some(Request {
                        method: head.method,
                        path: head.path,
                        version: head.version,
                        headers: head.headers,
                        body,
                    }));
                }
            }
        }
    }
}

/// Canonical reason phrases for the statuses the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response ready to serialize: status, extra headers, JSON body.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status. Serialization failure (which
    /// the vendored shim never produces for the values we build) degrades to
    /// a static 500 body instead of panicking the connection worker.
    pub fn json(status: u16, value: &serde_json::Value) -> Response {
        match serde_json::to_string(value) {
            Ok(s) => Response {
                status,
                headers: Vec::new(),
                body: s.into_bytes(),
            },
            Err(_) => Response {
                status: 500,
                headers: Vec::new(),
                body: br#"{"error":{"code":"serialization_failed","message":"response encoding failed"}}"#.to_vec(),
            },
        }
    }

    /// Attaches one extra header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Writes the response; `keep_alive` picks the `Connection` header.
    /// `Content-Type` defaults to JSON; a `Content-Type` entry among the
    /// extra headers overrides it in place (used by `/metrics` for the
    /// Prometheus text format) without being written twice.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let content_type = self
            .headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
            .map_or("application/json", |(_, v)| v.as_str());
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (k, v) in &self.headers {
            if k.eq_ignore_ascii_case("content-type") {
                continue;
            }
            write!(writer, "{k}: {v}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse("POST /v1/select HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_error() {
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET /\r\n\r\n").is_err(), "missing version");
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err(), "wrong protocol");
    }

    #[test]
    fn truncated_headers_are_an_error() {
        assert!(parse("GET / HTTP/1.1\r\nHost: x\r\n").is_err());
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 5 << 20);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn bad_content_length_is_an_error() {
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").is_err());
    }

    #[test]
    fn transfer_encoding_is_rejected_as_protocol_error() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2f\r\n").unwrap_err();
        assert!(!err.is_io, "protocol violation, not a transport failure");
        assert!(err.message.contains("Transfer-Encoding"), "{err}");
    }

    #[test]
    fn truncation_is_io_parse_garbage_is_not() {
        // Mid-headers EOF and short bodies are transport-level (close
        // silently); garbage framing is a protocol error (answer 400).
        let io = parse("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(io.is_io);
        let io = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err();
        assert!(io.is_io);
        let proto = parse("GARBAGE\r\n\r\n").unwrap_err();
        assert!(!proto.is_io);
    }

    #[test]
    fn response_wire_format() {
        let resp = Response::json(200, &serde_json::json!({"ok": true})).with_header("X-Test", "1");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn content_type_header_overrides_the_json_default_once() {
        let resp = Response {
            status: 200,
            headers: vec![(
                "Content-Type".to_string(),
                "text/plain; version=0.0.4".to_string(),
            )],
            body: b"x 1\n".to_vec(),
        };
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert_eq!(text.matches("Content-Type:").count(), 1, "{text}");
        assert!(!text.contains("application/json"));
    }

    #[test]
    fn status_texts_cover_service_statuses() {
        for s in [200, 201, 400, 404, 405, 408, 409, 413, 422, 429, 500, 504] {
            assert_ne!(status_text(s), "Unknown", "status {s}");
        }
    }

    #[test]
    fn parser_exposes_idle_vs_mid_request_vs_head_parsed() {
        let mut p = RequestParser::new();
        assert!(!p.mid_request(), "fresh parser is idle");
        p.feed(b"PO");
        assert!(p.mid_request(), "any byte commits the peer to a request");
        assert!(!p.head_parsed());
        p.feed(b"ST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n");
        assert!(p.try_next().unwrap().is_none(), "body bytes still missing");
        assert!(p.head_parsed(), "waiting on the body = 408 territory");
        p.feed(b"12345");
        let r = p.try_next().unwrap().unwrap();
        assert_eq!(r.body, b"12345");
        assert!(!p.mid_request(), "back to idle between requests");
        assert_eq!(p.buffered_len(), 0, "consumed prefix reclaimed");
    }

    #[test]
    fn incremental_parser_rejects_what_the_blocking_parser_rejects() {
        // Identical inputs must produce identical diagnostics on both
        // parsers — the transports answer 400 with the same message.
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "\r\n",
            "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST / HTTP/1.1\r\nnocolon\r\n\r\n",
        ] {
            let blocking = read_request(&mut raw.as_bytes()).unwrap_err();
            let mut p = RequestParser::new();
            p.feed(raw.as_bytes());
            let incremental = p.try_next().unwrap_err();
            assert_eq!(blocking.message, incremental.message, "input {raw:?}");
        }
    }

    #[test]
    fn incremental_parser_survives_every_split_boundary() {
        let raw: &[u8] = b"POST /v1/select HTTP/1.1\r\nHost: t\r\nX-Deadline-Millis: 250\r\n\
                           Content-Length: 11\r\n\r\n{\"graph\":1}";
        let reference = read_request(&mut &raw[..]).unwrap().unwrap();
        for split in 0..=raw.len() {
            let mut p = RequestParser::new();
            p.feed(&raw[..split]);
            let early = p
                .try_next()
                .unwrap_or_else(|e| panic!("split {split}: {e}"));
            p.feed(&raw[split..]);
            let req = match early {
                Some(r) => r,
                None => p
                    .try_next()
                    .unwrap_or_else(|e| panic!("split {split}: {e}"))
                    .unwrap_or_else(|| panic!("split {split}: incomplete after full feed")),
            };
            assert_eq!(req.method, reference.method, "split {split}");
            assert_eq!(req.path, reference.path, "split {split}");
            assert_eq!(req.version, reference.version, "split {split}");
            assert_eq!(req.headers, reference.headers, "split {split}");
            assert_eq!(req.body, reference.body, "split {split}");
            assert!(
                p.try_next().unwrap().is_none(),
                "split {split}: phantom request"
            );
            assert_eq!(p.buffered_len(), 0, "split {split}: leftover bytes");
        }
    }

    mod framing_equivalence {
        use super::*;
        use proptest::prelude::*;

        /// One deterministic request rendered from generated knobs.
        fn raw_request(mi: usize, path_len: usize, body_len: usize, bare_lf: bool) -> Vec<u8> {
            let method = match mi % 3 {
                0 => "GET",
                1 => "POST",
                _ => "DELETE",
            };
            let path = format!("/{}", "p".repeat(path_len));
            let body: Vec<u8> = (0..body_len).map(|i| b'a' + (i % 26) as u8).collect();
            let eol = if bare_lf { "\n" } else { "\r\n" };
            let mut raw = format!(
                "{method} {path} HTTP/1.1{eol}Host: test{eol}Content-Length: {}{eol}{eol}",
                body.len()
            )
            .into_bytes();
            raw.extend_from_slice(&body);
            raw
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn incremental_parser_matches_blocking_at_any_chunking(
                mi in 0usize..3,
                path_len in 1usize..40,
                body_len in 0usize..80,
                body_len2 in 0usize..80,
                chunk in 1usize..24,
                bare_lf in 0usize..2,
            ) {
                // A pipelined two-request stream, sometimes with bare-LF
                // line endings, parsed as `chunk`-sized arrivals.
                let mut stream = raw_request(mi, path_len, body_len, bare_lf == 1);
                stream.extend(raw_request(mi + 1, path_len / 2 + 1, body_len2, false));

                let mut reader = &stream[..];
                let mut expected = Vec::new();
                while let Some(r) = read_request(&mut reader).unwrap() {
                    expected.push(r);
                }
                prop_assert_eq!(expected.len(), 2);

                let mut parser = RequestParser::new();
                let mut got = Vec::new();
                for piece in stream.chunks(chunk) {
                    parser.feed(piece);
                    while let Some(r) = parser.try_next().unwrap() {
                        got.push(r);
                    }
                }
                prop_assert_eq!(got.len(), expected.len());
                for (g, e) in got.iter().zip(&expected) {
                    prop_assert_eq!(&g.method, &e.method);
                    prop_assert_eq!(&g.path, &e.path);
                    prop_assert_eq!(&g.version, &e.version);
                    prop_assert_eq!(&g.headers, &e.headers);
                    prop_assert_eq!(&g.body, &e.body);
                }
                prop_assert_eq!(parser.buffered_len(), 0);
            }
        }
    }
}
