//! A minimal keep-alive HTTP/1.1 client for the service's own JSON API.
//!
//! Shared by the integration tests and the `svc_load` load generator, so
//! there is exactly one client-side framing implementation to keep honest
//! against the server's.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One response as the client sees it.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value matching `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<serde_json::Value, String> {
        serde_json::from_str(&self.text()).map_err(|e| format!("invalid JSON response: {e}"))
    }
}

/// A persistent connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl Client {
    /// Connects; `addr` is `host:port`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            host: addr.to_string(),
        })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, String> {
        self.request("GET", path, None, &[])
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, String> {
        self.request("POST", path, Some(body.as_bytes()), &[])
    }

    /// `POST path` with extra request headers (e.g. `X-Deadline-Millis`).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        body: &str,
        extra: &[(&str, &str)],
    ) -> Result<ClientResponse, String> {
        self.request("POST", path, Some(body.as_bytes()), extra)
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> Result<ClientResponse, String> {
        self.request("DELETE", path, None, &[])
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        extra: &[(&str, &str)],
    ) -> Result<ClientResponse, String> {
        let body = body.unwrap_or(&[]);
        let mut extra_lines = String::new();
        for (k, v) in extra {
            extra_lines.push_str(&format!("{k}: {v}\r\n"));
        }
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n{extra_lines}Content-Length: {}\r\n\r\n",
            self.host,
            body.len(),
        )
        .map_err(|e| format!("write failed: {e}"))?;
        self.writer
            .write_all(body)
            .map_err(|e| format!("write failed: {e}"))?;
        self.writer
            .flush()
            .map_err(|e| format!("flush failed: {e}"))?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".into());
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> Result<ClientResponse, String> {
        let status_line = self.read_line()?;
        let mut parts = status_line.split_ascii_whitespace();
        let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
            return Err(format!("malformed status line: {status_line:?}"));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unexpected protocol: {status_line:?}"));
        }
        let status: u16 = code
            .parse()
            .map_err(|e| format!("bad status code {code:?}: {e}"))?;

        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((k, v)) = line.split_once(':') else {
                return Err(format!("malformed response header: {line:?}"));
            };
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }

        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .ok_or("response missing content-length")?
            .1
            .parse()
            .map_err(|e| format!("bad content-length: {e}"))?;
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("body read failed: {e}"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}
