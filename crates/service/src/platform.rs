//! Platform layer: `libc`-free raw `epoll` bindings for the readiness
//! event loop.
//!
//! The offline build has no `libc`/`mio` crates, so the four syscalls the
//! event loop needs (`epoll_create1`, `epoll_ctl`, `epoll_pwait`, `close`)
//! are issued directly via inline assembly on Linux x86_64/aarch64 — the
//! workspace's only `unsafe` surface, confined to the [`sys`] module. Every
//! other target gets a stub whose [`Poller::new`] fails with
//! `Unsupported`, which [`crate::server`] answers by falling back to the
//! threaded transport at runtime; [`supported`] is that runtime probe.
//!
//! Only `epoll` itself needs raw syscalls: non-blocking mode, accept, read,
//! and write all go through `std::net`, so the sockets stay ordinary
//! `TcpStream`s owned by safe code.

/// Readable (or: a peer hung up and the final read will report it).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition — always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up — always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: usize = 0x80000;

/// `struct epoll_event` exactly as the kernel ABI lays it out: packed on
/// x86_64 (12 bytes, `data` unaligned), naturally aligned elsewhere.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct epoll_event` exactly as the kernel ABI lays it out.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The readiness mask the kernel reported (copied by value out of the
    /// possibly-packed struct).
    pub fn ready(&self) -> u32 {
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// An epoll instance. Registered fds are identified by caller-chosen `u64`
/// tokens; the fd is closed on drop.
pub struct Poller {
    epfd: i32,
}

impl Poller {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`). Fails with
    /// `Unsupported` on targets without the raw-syscall shims.
    pub fn new() -> std::io::Result<Poller> {
        let epfd = sys::epoll_create1(EPOLL_CLOEXEC)?;
        Ok(Poller { epfd })
    }

    /// Registers `fd` for level-triggered notification under `token`.
    pub fn add(&self, fd: i32, token: u64, interest: u32) -> std::io::Result<()> {
        sys::epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Replaces the interest mask (and token) of a registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, interest: u32) -> std::io::Result<()> {
        sys::epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Unregisters `fd`.
    pub fn del(&self, fd: i32) -> std::io::Result<()> {
        sys::epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness or `timeout_ms` (−1 = forever), filling
    /// `events`; returns how many entries are valid. `EINTR` reads as an
    /// empty wake-up so callers never see a spurious error from signals.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        sys::epoll_pwait(self.epfd, events, timeout_ms)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

/// Runtime probe: can this process create an epoll instance? `false` routes
/// [`crate::server::Transport::Auto`] to the threaded fallback.
pub fn supported() -> bool {
    Poller::new().is_ok()
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod sys {
    //! The raw syscall shims. Register conventions per arch:
    //! x86_64 — nr in `rax`, args in `rdi rsi rdx r10 r8 r9`, `syscall`
    //! clobbers `rcx`/`r11`; aarch64 — nr in `x8`, args in `x0..x5`,
    //! `svc 0`. Both return the result (or `-errno`) in the first register.

    use super::EpollEvent;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    /// Issues one syscall with up to six arguments, returning the kernel's
    /// raw result (negative = `-errno`).
    ///
    /// SAFETY: arguments must be valid for syscall `n` — live fds and, for
    /// `epoll_pwait`, a caller-owned mutable `EpollEvent` buffer.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the `syscall` instruction with the Linux x86_64 register
        // convention; rcx/r11 are declared clobbered as the ABI requires,
        // and argument validity is the caller's contract (above).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Issues one syscall with up to six arguments, returning the kernel's
    /// raw result (negative = `-errno`).
    ///
    /// SAFETY: same contract as the x86_64 variant — arguments must be
    /// valid for syscall `n`.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: `svc 0` with the Linux aarch64 register convention;
        // argument validity is the caller's contract (above).
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Maps a raw kernel result onto `io::Result`.
    fn check(ret: isize) -> std::io::Result<isize> {
        if ret < 0 {
            Err(std::io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1(flags: usize) -> std::io::Result<i32> {
        // SAFETY: epoll_create1 takes only a flags word; no pointers.
        let ret = unsafe { syscall6(nr::EPOLL_CREATE1, flags, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(
        epfd: i32,
        op: i32,
        fd: i32,
        interest: u32,
        token: u64,
    ) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let ev_ptr = std::ptr::addr_of_mut!(ev);
        // SAFETY: `ev` is a live, kernel-ABI epoll_event for the duration
        // of this synchronous call; DEL ignores the pointer but gets a
        // valid one anyway (pre-2.6.9 kernels required it).
        let ret = unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                ev_ptr as usize,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    pub fn epoll_pwait(
        epfd: i32,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> std::io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        // epoll_pwait (aarch64 has no plain epoll_wait); a null sigmask
        // means "don't touch the signal mask" and makes sigsetsize moot.
        // SAFETY: the pointer/len pair describes the caller's live mutable
        // slice, which the kernel fills up to `len` entries; no other
        // pointers are passed (sigmask is null).
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                0,
            )
        };
        match check(ret) {
            Ok(count) => Ok(count as usize),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    pub fn close(fd: i32) {
        // SAFETY: close takes only the fd; the caller (Poller::drop) owns
        // it and never reuses it afterwards.
        let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Stub for targets without the raw-syscall shims: every entry point
    //! fails with `Unsupported`, which routes `Transport::Auto` to the
    //! threaded fallback loop.

    use super::EpollEvent;

    fn unsupported<T>() -> std::io::Result<T> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "epoll is only available on Linux x86_64/aarch64",
        ))
    }

    pub fn epoll_create1(_flags: usize) -> std::io::Result<i32> {
        unsupported()
    }

    pub fn epoll_ctl(
        _epfd: i32,
        _op: i32,
        _fd: i32,
        _interest: u32,
        _token: u64,
    ) -> std::io::Result<()> {
        unsupported()
    }

    pub fn epoll_pwait(
        _epfd: i32,
        _events: &mut [EpollEvent],
        _timeout_ms: i32,
    ) -> std::io::Result<usize> {
        unsupported()
    }

    pub fn close(_fd: i32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn poller_probes_as_supported_on_linux() {
        assert!(supported());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn poller_reports_listener_readability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = vec![EpollEvent::default(); 8];
        // Nothing pending: a zero timeout returns immediately with no events.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        // A connect makes the listener readable.
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let n = poller.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].ready() & EPOLLIN, 0);

        // Accept, register the conn, and see its readability too.
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.add(conn.as_raw_fd(), 9, EPOLLIN).unwrap();
        peer.write_all(b"x").unwrap();
        let n = poller.wait(&mut events, 2_000).unwrap();
        assert!(n >= 1);
        assert!(events.iter().take(n).any(|e| e.token() == 9));

        // Interest can be narrowed to nothing and the fd deleted.
        poller.modify(conn.as_raw_fd(), 9, 0).unwrap();
        poller.del(conn.as_raw_fd()).unwrap();
    }
}
