//! Bounded memoization of `/v1/select` response bodies.
//!
//! The service's determinism contract — same request body, same response
//! bytes — makes whole-response memoization sound: a repeated request is
//! answered from memory without re-running the algorithm. Keys embed the
//! graph's registration token, so deleting and re-registering a graph under
//! the same id can never serve a stale selection. Eviction is FIFO; the
//! cache is a latency optimization, not a source of truth.

use smin_obs::Counter;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// FIFO-bounded response cache. `BTreeMap` keeps the service free of
/// hash-ordered state (the `no-hash-iteration` lint); lookups are O(log n)
/// over at most `capacity` keys, noise next to running a selection.
///
/// Hit/miss totals are [`Counter`]s so `/healthz` and `/metrics` read the
/// same monotonic cells — one source of truth for the cache numbers.
pub struct SelectCache {
    capacity: usize,
    map: BTreeMap<String, Arc<[u8]>>,
    order: VecDeque<String>,
    hits: Counter,
    misses: Counter,
}

impl SelectCache {
    /// A cache holding at most `capacity` responses (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        SelectCache {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// The cached response body for `key`, if any. Counts hit/miss totals
    /// for `/healthz` and `/metrics` observability.
    pub fn get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        let found = self.map.get(key).cloned();
        if found.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        found
    }

    /// Lifetime `(hits, misses)` across every [`SelectCache::get`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Stores a response body, evicting the oldest entry at capacity.
    pub fn insert(&mut self, key: String, body: Arc<[u8]>) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        while self.map.len() >= self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&oldest);
        }
        self.order.push_back(key.clone());
        self.map.insert(key, body);
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn hit_after_insert() {
        let mut c = SelectCache::new(4);
        assert!(c.get("k").is_none());
        c.insert("k".into(), body("v"));
        assert_eq!(c.get("k").unwrap().as_ref(), b"v");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = SelectCache::new(2);
        c.insert("a".into(), body("1"));
        c.insert("b".into(), body("2"));
        c.insert("c".into(), body("3"));
        assert!(c.get("a").is_none(), "oldest entry evicted");
        assert!(c.get("b").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_first_and_order() {
        let mut c = SelectCache::new(2);
        c.insert("a".into(), body("1"));
        c.insert("a".into(), body("other"));
        assert_eq!(c.get("a").unwrap().as_ref(), b"1");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = SelectCache::new(2);
        assert_eq!(c.stats(), (0, 0));
        c.get("a");
        c.insert("a".into(), body("1"));
        c.get("a");
        c.get("a");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = SelectCache::new(0);
        c.insert("a".into(), body("1"));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
    }
}
