//! The epoll readiness event loop: one poll thread multiplexing every
//! connection, a small fixed pool of dispatch threads running the
//! transport-agnostic session layer.
//!
//! Connections live in a generation-tagged slab and move through a small
//! state machine — reading (incremental [`RequestParser`]) → dispatching
//! (deregistered from the poller while the algorithm runs) → writing
//! (partial-write [`WriteBuf`]) → keep-alive idle. Concurrency therefore
//! costs a slab slot, not a thread: ≥512 idle keep-alive connections are
//! served by `1 + dispatchers` threads total.
//!
//! Four protections keep the loop healthy under load:
//!
//! * **Deadline wheel** — idle, mid-request (408 once the head was
//!   parsed), and stuck-write timeouts, swept at [`WHEEL_SLOT_MS`]
//!   granularity against one monotonic epoch.
//! * **Admission control** — when `pending` dispatches (queued + running)
//!   reach the configured high-water mark, new requests are answered with
//!   a deterministic 429 instead of queueing without bound.
//! * **Per-request deadlines** — `X-Deadline-Millis` is checked when a
//!   dispatch thread dequeues the request; an expired deadline returns a
//!   structured 504 without running the selection.
//! * **Pipelining bounds** — per-connection parse backlog is capped at
//!   [`MAX_BUFFERED_BYTES`] (reads pause at the cap and resume as the
//!   backlog drains), and each connection is driven by an *iterative*
//!   state-machine loop ([`Loop::drive`]) with a bounded synchronous-
//!   response budget per cycle, so a client pipelining thousands of
//!   poll-thread-answerable requests (429s under overload, 400s from bad
//!   deadline headers) can neither grow the poll thread's stack nor
//!   monopolize it.
//!
//! Responses are byte-identical to the threaded fallback transport
//! ([`crate::server`]): both run [`handle`] on fully-parsed requests and
//! serialize through [`Response::write_to`] — the wire tests pin this.

use crate::error::{parse_deadline, ServiceError};
use crate::http::{Request, RequestParser, Response, MAX_BUFFERED_BYTES};
use crate::platform::{EpollEvent, Poller, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::routes::{handle, ServiceState};
use crate::trace::TraceEvent;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Deadline-wheel granularity, and the poll timeout that drives the sweep.
const WHEEL_SLOT_MS: u64 = 100;
/// Wheel circumference: deadlines further out than `SLOTS × SLOT_MS`
/// survive extra rotations (entries are re-kept until actually due).
const WHEEL_SLOTS: usize = 512;
/// Socket read chunk.
const READ_CHUNK: usize = 16 * 1024;
/// How many responses the poll thread answers synchronously (400/408/429)
/// on one connection per [`Loop::drive`] call before yielding; the
/// connection is re-queued via the redrive list so other connections and
/// timers run in between.
const SYNC_RESPONSES_PER_DRIVE: usize = 64;
/// Poller token of the accept listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token of the wake pipe (loopback socket pair).
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Knobs the server resolves from [`crate::server::ServerConfig`].
pub(crate) struct LoopConfig {
    /// Dispatch threads running the session layer.
    pub dispatchers: usize,
    /// Admission high-water mark: queued + running dispatches beyond which
    /// new requests get an immediate 429.
    pub max_pending: usize,
    /// Keep-alive idle timeout (silent close).
    pub idle_timeout_ms: u64,
    /// Mid-request read and response write timeout (408 when the head was
    /// already parsed; silent close otherwise).
    pub request_timeout_ms: u64,
}

/// A response being written out, tolerant of partial writes.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    written: usize,
}

enum WriteOutcome {
    /// Everything flushed.
    Done,
    /// The socket would block; bytes remain.
    Pending,
    /// The peer is gone.
    Error,
}

impl WriteBuf {
    fn is_empty(&self) -> bool {
        self.written >= self.buf.len()
    }

    fn set(&mut self, bytes: Vec<u8>) {
        self.buf = bytes;
        self.written = 0;
    }

    /// Pushes as many pending bytes as the writer accepts.
    fn write_to(&mut self, w: &mut impl Write) -> WriteOutcome {
        while self.written < self.buf.len() {
            let pending = self.buf.get(self.written..).unwrap_or(&[]);
            match w.write(pending) {
                Ok(0) => return WriteOutcome::Error,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return WriteOutcome::Pending,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return WriteOutcome::Error,
            }
        }
        WriteOutcome::Done
    }
}

/// Which deadline (if any) is armed for a connection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TimerClass {
    /// No deadline — a dispatch is running (504s bound it instead).
    None,
    /// Keep-alive idle window; refreshed after every response.
    Idle,
    /// Mid-request window, pinned at the first byte of the request so a
    /// trickling peer cannot extend it.
    Request,
    /// Response-write window, pinned when the write first blocks.
    Write,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    parser: RequestParser,
    write: WriteBuf,
    /// Registered with the poller (deregistered while a dispatch runs, so
    /// a hung-up peer cannot spin the loop on unmaskable `EPOLLHUP`).
    registered: bool,
    interest: u32,
    busy: bool,
    close_after_write: bool,
    read_closed: bool,
    timer: TimerClass,
    timer_gen: u64,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Conn {
        Conn {
            stream,
            fd,
            parser: RequestParser::new(),
            write: WriteBuf::default(),
            registered: false,
            interest: 0,
            busy: false,
            close_after_write: false,
            read_closed: false,
            timer: TimerClass::None,
            timer_gen: 0,
        }
    }
}

/// Generation-tagged connection slab: tokens remain unambiguous across
/// slot reuse because the generation is part of the token.
struct Slab {
    slots: Vec<Slot>,
    free: Vec<usize>,
}

struct Slot {
    conn: Option<Conn>,
    gen: u64,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `conn`, returning its `(idx, gen32)` token parts; `None` when
    /// the index space is exhausted (2³² concurrent connections).
    fn insert(&mut self, conn: Conn) -> Option<(usize, u64)> {
        if let Some(idx) = self.free.pop() {
            let slot = self.slots.get_mut(idx)?;
            slot.conn = Some(conn);
            return Some((idx, slot.gen & 0xFFFF_FFFF));
        }
        let idx = self.slots.len();
        if idx as u64 >= 0xFFFF_FFFF {
            return None;
        }
        self.slots.push(Slot {
            conn: Some(conn),
            gen: 0,
        });
        Some((idx, 0))
    }

    /// The live connection at `idx` if its generation still matches.
    fn get_mut(&mut self, idx: usize, gen32: u64) -> Option<&mut Conn> {
        let slot = self.slots.get_mut(idx)?;
        if slot.gen & 0xFFFF_FFFF != gen32 {
            return None;
        }
        slot.conn.as_mut()
    }

    /// Frees the slot, bumping its generation so stale tokens miss.
    fn remove(&mut self, idx: usize, gen32: u64) -> Option<Conn> {
        let slot = self.slots.get_mut(idx)?;
        if slot.gen & 0xFFFF_FFFF != gen32 {
            return None;
        }
        let conn = slot.conn.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        Some(conn)
    }
}

fn pack(idx: usize, gen32: u64) -> u64 {
    (gen32 << 32) | (idx as u64 & 0xFFFF_FFFF)
}

fn unpack(token: u64) -> (usize, u64) {
    ((token & 0xFFFF_FFFF) as usize, token >> 32)
}

/// Hashed-wheel timer over [`WHEEL_SLOTS`] buckets of [`WHEEL_SLOT_MS`].
/// Entries carry their absolute due time; a sweep expires what is due and
/// keeps what belongs to a later rotation. Stale entries (the connection
/// re-armed or died) are filtered by the caller via `timer_gen`.
struct DeadlineWheel {
    slots: Vec<Vec<WheelEntry>>,
    swept_ms: u64,
}

#[derive(Clone, Copy)]
struct WheelEntry {
    idx: usize,
    gen32: u64,
    timer_gen: u64,
    due_ms: u64,
}

impl DeadlineWheel {
    fn new() -> DeadlineWheel {
        DeadlineWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            swept_ms: 0,
        }
    }

    fn slot_of(due_ms: u64) -> usize {
        ((due_ms / WHEEL_SLOT_MS) % WHEEL_SLOTS as u64) as usize
    }

    fn insert(&mut self, entry: WheelEntry) {
        if let Some(bucket) = self.slots.get_mut(Self::slot_of(entry.due_ms)) {
            bucket.push(entry);
        }
    }

    /// Sweeps every bucket between the last sweep and `now_ms`, pushing
    /// due entries into `expired` and keeping future-rotation ones.
    fn advance(&mut self, now_ms: u64, expired: &mut Vec<WheelEntry>) {
        let from_tick = self.swept_ms / WHEEL_SLOT_MS;
        let to_tick = now_ms / WHEEL_SLOT_MS;
        if to_tick < from_tick {
            return;
        }
        // A gap longer than one rotation still only needs each bucket once.
        let steps = (to_tick - from_tick + 1).min(WHEEL_SLOTS as u64);
        for t in 0..steps {
            let si = ((from_tick + t) % WHEEL_SLOTS as u64) as usize;
            let Some(bucket) = self.slots.get_mut(si) else {
                continue;
            };
            bucket.retain(|e| {
                if e.due_ms <= now_ms {
                    expired.push(*e);
                    false
                } else {
                    true
                }
            });
        }
        self.swept_ms = now_ms;
    }
}

/// A fully-parsed request handed to the dispatch pool.
struct Job {
    idx: usize,
    gen32: u64,
    req: Request,
    keep_alive: bool,
    deadline_ms: Option<u64>,
    parsed_at_ms: u64,
}

/// A serialized response handed back to the poll loop.
struct Done {
    idx: usize,
    gen32: u64,
    bytes: Vec<u8>,
    close: bool,
}

fn now_ms(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

/// Serves `listener` until `stop` turns true. Returns an error only for
/// setup failures (epoll unavailable, wake-pair binding) — per-connection
/// failures close that connection and keep the loop running.
pub(crate) fn serve(
    listener: TcpListener,
    state: &Arc<ServiceState>,
    cfg: &LoopConfig,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, EPOLLIN)?;

    // Wake channel: a loopback socket pair (the std-only stand-in for
    // eventfd). Dispatch threads write one byte to interrupt the poll wait
    // as soon as a completion is queued.
    let wake_bind = TcpListener::bind("127.0.0.1:0")?;
    let wake_tx = TcpStream::connect(wake_bind.local_addr()?)?;
    let (wake_rx, _) = wake_bind.accept()?;
    drop(wake_bind);
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let wake_tx = Arc::new(wake_tx);
    poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, EPOLLIN)?;

    // smin-lint: allow(no-wall-clock) -- the one monotonic epoch every deadline is measured against; never reaches a response body
    let epoch = Instant::now();

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
    let pending = Arc::new(AtomicUsize::new(0));

    let mut el = Loop {
        poller,
        listener,
        wake_rx,
        slab: Slab::new(),
        wheel: DeadlineWheel::new(),
        epoch,
        cfg,
        state,
        job_tx: Some(job_tx),
        completions: Arc::clone(&completions),
        pending: Arc::clone(&pending),
        redrive: Vec::new(),
    };

    std::thread::scope(|scope| {
        for _ in 0..cfg.dispatchers.max(1) {
            let job_rx = Arc::clone(&job_rx);
            let completions = Arc::clone(&completions);
            let pending = Arc::clone(&pending);
            let wake_tx = Arc::clone(&wake_tx);
            let state = Arc::clone(state);
            scope.spawn(move || {
                dispatch_loop(&state, &job_rx, &completions, &pending, &wake_tx, epoch)
            });
        }
        let result = el.run(stop);
        // Closing the job channel drains the dispatch pool; the scope then
        // joins every dispatcher before returning.
        el.job_tx = None;
        result
    })
}

/// One dispatch worker: dequeue, check the deadline, run the session
/// layer, serialize, hand the bytes back, wake the poll thread.
fn dispatch_loop(
    state: &ServiceState,
    job_rx: &Mutex<mpsc::Receiver<Job>>,
    completions: &Mutex<Vec<Done>>,
    pending: &AtomicUsize,
    wake_tx: &TcpStream,
    epoch: Instant,
) {
    loop {
        // Hold the lock only while dequeuing so workers run in parallel.
        let job = {
            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else {
            break; // channel closed: shutting down
        };
        let elapsed = now_ms(epoch).saturating_sub(job.parsed_at_ms);
        let resp = match job.deadline_ms {
            Some(d) if elapsed >= d => {
                state.metrics().errors_504.inc();
                if let Some(trace) = state.trace() {
                    trace.emit(&TraceEvent {
                        method: Some(&job.req.method),
                        path: Some(&job.req.path),
                        status: 504,
                        deadline_remaining_ms: Some(0),
                        ..TraceEvent::default()
                    });
                }
                ServiceError::deadline_exceeded(d).to_response()
            }
            _ => handle(state, &job.req),
        };
        let mut bytes = Vec::new();
        // Writing into a Vec cannot fail.
        let _ = resp.write_to(&mut bytes, job.keep_alive);
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Done {
                idx: job.idx,
                gen32: job.gen32,
                bytes,
                close: !job.keep_alive,
            });
        pending.fetch_sub(1, Ordering::SeqCst);
        // A full wake pipe is fine: the poll thread already has a pending
        // wake-up it has not drained yet.
        let mut tx = wake_tx;
        let _ = tx.write(&[1u8]);
    }
}

/// What the incremental parser produced for one connection.
enum Parsed {
    Req(Request),
    Eof,
    Wait(TimerClass),
    Bad(String),
}

/// How [`Loop::begin_dispatch`] disposed of a parsed request.
enum Dispatch {
    /// Handed to the pool; the connection is deregistered until the
    /// completion comes back.
    Async,
    /// Answered by the poll thread itself (400/429); the response sits in
    /// the write buffer, not yet flushed.
    Sync,
    /// The connection was closed (shutdown race).
    Closed,
}

/// The poll thread's whole mutable state.
struct Loop<'a> {
    poller: Poller,
    listener: TcpListener,
    wake_rx: TcpStream,
    slab: Slab,
    wheel: DeadlineWheel,
    epoch: Instant,
    cfg: &'a LoopConfig,
    /// Shared state, for the loop-level metric series and trace log.
    state: &'a ServiceState,
    /// `Some` while serving; dropped to release the dispatch pool.
    job_tx: Option<mpsc::Sender<Job>>,
    completions: Arc<Mutex<Vec<Done>>>,
    pending: Arc<AtomicUsize>,
    /// Connections that exhausted their synchronous-response budget and
    /// still hold parseable backlog; resumed on the next loop iteration.
    redrive: Vec<(usize, u64)>,
}

impl Loop<'_> {
    fn run(&mut self, stop: &AtomicBool) -> std::io::Result<()> {
        let mut events = vec![EpollEvent::default(); 1024];
        let mut expired = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            // Pending redrives must not wait out the poll timeout: poll
            // without blocking, then resume them below.
            let timeout = if self.redrive.is_empty() {
                WHEEL_SLOT_MS as i32
            } else {
                0
            };
            let n = {
                let _span = self.state.metrics().epoll_wait_micros.start_span();
                self.poller.wait(&mut events, timeout)?
            };
            for i in 0..n {
                let Some((token, ready)) = events.get(i).map(|e| (e.token(), e.ready())) else {
                    break;
                };
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake(),
                    t => {
                        let (idx, gen32) = unpack(t);
                        self.conn_ready(idx, gen32, ready);
                    }
                }
            }
            self.apply_completions();
            // Resume connections that ran out of synchronous-response
            // budget last cycle (stale entries miss harmlessly on the
            // slab's generation check).
            let redrive = std::mem::take(&mut self.redrive);
            for (idx, gen32) in redrive {
                self.drive(idx, gen32);
            }
            expired.clear();
            self.wheel.advance(now_ms(self.epoch), &mut expired);
            for e in &expired {
                self.expire(*e);
            }
            // Loop-health gauges, sampled once per iteration: queued +
            // running dispatches, occupied slab slots, and connections
            // awaiting a redrive.
            let m = self.state.metrics();
            m.dispatch_queue_depth
                .set(u64::try_from(self.pending.load(Ordering::SeqCst)).unwrap_or(u64::MAX));
            let occupied = self.slab.slots.len().saturating_sub(self.slab.free.len());
            m.slab_connections
                .set(u64::try_from(occupied).unwrap_or(u64::MAX));
            m.redrive_queue_length
                .set(u64::try_from(self.redrive.len()).unwrap_or(u64::MAX));
        }
        Ok(())
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    let Some((idx, gen32)) = self.slab.insert(Conn::new(stream, fd)) else {
                        continue; // slab exhausted: drop the connection
                    };
                    if self.set_interest(idx, gen32, EPOLLIN).is_err() {
                        self.slab.remove(idx, gen32);
                        continue;
                    }
                    self.arm_timer(idx, gen32, TimerClass::Idle);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE, aborted handshakes):
                // yield to the loop; level-triggering re-reports readiness.
                Err(_) => break,
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break, // WouldBlock: drained
            }
        }
    }

    /// Registers/modifies/deregisters the fd to match `interest` (0 = off).
    fn set_interest(&mut self, idx: usize, gen32: u64, interest: u32) -> std::io::Result<()> {
        let Some(conn) = self.slab.get_mut(idx, gen32) else {
            return Ok(());
        };
        let (fd, registered, current) = (conn.fd, conn.registered, conn.interest);
        let token = pack(idx, gen32);
        let result = match (registered, interest) {
            (false, 0) => Ok(()),
            (false, i) => self.poller.add(fd, token, i),
            (true, 0) => self.poller.del(fd),
            (true, i) if i == current => Ok(()),
            (true, i) => self.poller.modify(fd, token, i),
        };
        if let Some(conn) = self.slab.get_mut(idx, gen32) {
            if result.is_ok() {
                conn.registered = interest != 0;
                conn.interest = interest;
            }
        }
        result
    }

    /// (Re-)arms the connection's deadline. `Request` and `Write` windows
    /// are pinned — re-arming the same class is a no-op, so a trickling
    /// peer cannot extend them — while `Idle` refreshes on every arm.
    fn arm_timer(&mut self, idx: usize, gen32: u64, class: TimerClass) {
        let due_ms = {
            let Some(conn) = self.slab.get_mut(idx, gen32) else {
                return;
            };
            if conn.timer == class && matches!(class, TimerClass::Request | TimerClass::Write) {
                return;
            }
            conn.timer = class;
            conn.timer_gen = conn.timer_gen.wrapping_add(1);
            let timeout_ms = match class {
                TimerClass::None => return, // busy: bounded by 504s instead
                TimerClass::Idle => self.cfg.idle_timeout_ms,
                TimerClass::Request | TimerClass::Write => self.cfg.request_timeout_ms,
            };
            now_ms(self.epoch).saturating_add(timeout_ms)
        };
        let timer_gen = match self.slab.get_mut(idx, gen32) {
            Some(conn) => conn.timer_gen,
            None => return,
        };
        self.wheel.insert(WheelEntry {
            idx,
            gen32,
            timer_gen,
            due_ms,
        });
    }

    fn conn_ready(&mut self, idx: usize, gen32: u64, ready: u32) {
        if ready & EPOLLERR != 0 {
            self.close_conn(idx, gen32);
            return;
        }
        if ready & EPOLLOUT != 0 {
            self.drive(idx, gen32);
        }
        if ready & (EPOLLIN | EPOLLHUP) != 0 {
            self.read_ready(idx, gen32);
        }
    }

    fn read_ready(&mut self, idx: usize, gen32: u64) {
        enum After {
            Nothing,
            Close,
            Drive,
        }
        let mut buf = [0u8; READ_CHUNK];
        let mut nread = 0u64;
        let after = loop {
            let Some(conn) = self.slab.get_mut(idx, gen32) else {
                break After::Nothing;
            };
            if conn.busy {
                break After::Nothing; // deregistered; a stray event is ignorable
            }
            if conn.read_closed {
                // EPOLLHUP after EOF: finish any in-flight write (it will
                // fail fast if the peer is fully gone), else close.
                break if conn.write.is_empty() {
                    After::Close
                } else {
                    After::Drive
                };
            }
            // Backlog cap: stop pulling bytes off the socket until the
            // already-buffered pipelined requests are consumed. The cap
            // exceeds any single request, so the drive below always makes
            // progress, and level-triggered readiness re-reports the
            // unread socket data once the backlog drains.
            if conn.parser.buffered_len() >= MAX_BUFFERED_BYTES {
                break After::Drive;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break After::Drive;
                }
                Ok(n) => {
                    nread = nread.saturating_add(n as u64);
                    conn.parser.feed(buf.get(..n).unwrap_or(&[]));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break After::Drive,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break After::Close,
            }
        };
        if nread > 0 {
            self.state.metrics().bytes_read.add(nread);
        }
        match after {
            After::Nothing => {}
            After::Close => self.close_conn(idx, gen32),
            After::Drive => self.drive(idx, gen32),
        }
    }

    /// Drives one connection's state machine to quiescence, iteratively:
    /// flush the queued response (if any), then parse the next buffered
    /// request, then loop. Returns when the connection blocks on I/O
    /// (interest re-armed), hands a request to the dispatch pool, closes,
    /// or exhausts its synchronous-response budget for this cycle (then
    /// re-queued on `redrive`). A flat loop rather than mutual recursion:
    /// a client pipelining thousands of poll-thread-answerable requests
    /// must not grow the stack per request.
    fn drive(&mut self, idx: usize, gen32: u64) {
        let mut sync_budget = SYNC_RESPONSES_PER_DRIVE;
        loop {
            // Phase 1: push out whatever is queued for writing.
            let (outcome, wrote) = {
                let Some(conn) = self.slab.get_mut(idx, gen32) else {
                    return;
                };
                if conn.write.is_empty() {
                    (None, 0u64)
                } else {
                    let Conn { stream, write, .. } = conn;
                    let before = write.written;
                    let outcome = write.write_to(stream);
                    (Some(outcome), write.written.saturating_sub(before) as u64)
                }
            };
            if wrote > 0 {
                self.state.metrics().bytes_written.add(wrote);
            }
            match outcome {
                Some(WriteOutcome::Error) => {
                    self.close_conn(idx, gen32);
                    return;
                }
                Some(WriteOutcome::Pending) => {
                    if self.set_interest(idx, gen32, EPOLLOUT).is_err() {
                        self.close_conn(idx, gen32);
                        return;
                    }
                    self.arm_timer(idx, gen32, TimerClass::Write);
                    return;
                }
                Some(WriteOutcome::Done) => {
                    let close = {
                        let Some(conn) = self.slab.get_mut(idx, gen32) else {
                            return;
                        };
                        conn.write.set(Vec::new());
                        conn.close_after_write
                    };
                    if close {
                        self.close_conn(idx, gen32);
                        return;
                    }
                }
                None => {}
            }

            // Phase 2: the write side is clear — pull the next request.
            // One at a time: a response being computed or written blocks
            // the next pipelined request (natural backpressure).
            let parsed = {
                let Some(conn) = self.slab.get_mut(idx, gen32) else {
                    return;
                };
                if conn.busy {
                    return; // a dispatch is running; its completion re-drives
                }
                match conn.parser.try_next() {
                    Ok(Some(req)) => Parsed::Req(req),
                    Ok(None) if conn.read_closed => Parsed::Eof,
                    Ok(None) => Parsed::Wait(if conn.parser.mid_request() {
                        TimerClass::Request
                    } else {
                        TimerClass::Idle
                    }),
                    Err(e) => Parsed::Bad(e.message),
                }
            };
            match parsed {
                Parsed::Req(req) => match self.begin_dispatch(idx, gen32, req) {
                    // Deregistered until the pool answers; the completion
                    // re-enters `drive`.
                    Dispatch::Async => return,
                    Dispatch::Closed => return,
                    // A 400/429 was queued; loop back to flush it.
                    Dispatch::Sync => {}
                },
                Parsed::Eof => {
                    self.close_conn(idx, gen32);
                    return;
                }
                Parsed::Wait(class) => {
                    if self.set_interest(idx, gen32, EPOLLIN).is_err() {
                        self.close_conn(idx, gen32);
                        return;
                    }
                    self.arm_timer(idx, gen32, class);
                    return;
                }
                Parsed::Bad(message) => {
                    // Protocol violation: the stream position is
                    // unknowable, so answer once and close — the same
                    // contract as the threaded transport.
                    self.state.metrics().errors_400.inc();
                    if let Some(trace) = self.state.trace() {
                        // No parsed request to name: method/path are null.
                        trace.emit(&TraceEvent {
                            status: 400,
                            ..TraceEvent::default()
                        });
                    }
                    let resp = ServiceError::bad_request(format!("malformed HTTP: {message}"))
                        .to_response();
                    self.queue_response(idx, gen32, &resp, false);
                }
            }
            // A synchronous response was queued this iteration: spend
            // budget, and once it is gone yield so other connections and
            // the timer wheel get the poll thread.
            sync_budget -= 1;
            if sync_budget == 0 {
                self.redrive.push((idx, gen32));
                return;
            }
        }
    }

    /// Admission control + deadline stamping, then hand-off to the pool.
    fn begin_dispatch(&mut self, idx: usize, gen32: u64, req: Request) -> Dispatch {
        let keep_alive = req.keep_alive();
        let deadline_ms = match parse_deadline(&req) {
            Ok(d) => d,
            Err(e) => {
                self.state.metrics().errors_400.inc();
                if let Some(trace) = self.state.trace() {
                    trace.emit(&TraceEvent {
                        method: Some(&req.method),
                        path: Some(&req.path),
                        status: 400,
                        ..TraceEvent::default()
                    });
                }
                self.queue_response(idx, gen32, &e.to_response(), keep_alive);
                return Dispatch::Sync;
            }
        };
        if self.pending.load(Ordering::SeqCst) >= self.cfg.max_pending {
            self.state.metrics().errors_429.inc();
            if let Some(trace) = self.state.trace() {
                trace.emit(&TraceEvent {
                    method: Some(&req.method),
                    path: Some(&req.path),
                    status: 429,
                    deadline_remaining_ms: deadline_ms,
                    ..TraceEvent::default()
                });
            }
            self.queue_response(
                idx,
                gen32,
                &ServiceError::overloaded().to_response(),
                keep_alive,
            );
            return Dispatch::Sync;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Deregister while the dispatch runs: no read backpressure games,
        // and an unmaskable EPOLLHUP cannot spin the poll thread.
        let _ = self.set_interest(idx, gen32, 0);
        if let Some(conn) = self.slab.get_mut(idx, gen32) {
            conn.busy = true;
            conn.timer = TimerClass::None;
            conn.timer_gen = conn.timer_gen.wrapping_add(1);
        }
        let job = Job {
            idx,
            gen32,
            req,
            keep_alive,
            deadline_ms,
            parsed_at_ms: now_ms(self.epoch),
        };
        if let Some(tx) = &self.job_tx {
            // Send only fails at shutdown, when the connection is going
            // away with the whole loop anyway.
            if tx.send(job).is_err() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.close_conn(idx, gen32);
                return Dispatch::Closed;
            }
        }
        Dispatch::Async
    }

    /// Queues a response the poll thread produced itself (400/408/429)
    /// into the connection's write buffer; `drive` flushes it.
    fn queue_response(&mut self, idx: usize, gen32: u64, resp: &Response, keep_alive: bool) {
        let mut bytes = Vec::new();
        // Writing into a Vec cannot fail.
        let _ = resp.write_to(&mut bytes, keep_alive);
        let Some(conn) = self.slab.get_mut(idx, gen32) else {
            return;
        };
        conn.write.set(bytes);
        conn.close_after_write = !keep_alive;
    }

    /// Applies responses the dispatch pool queued.
    fn apply_completions(&mut self) {
        let done = {
            let mut guard = self.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for d in done {
            {
                let Some(conn) = self.slab.get_mut(d.idx, d.gen32) else {
                    continue; // connection died while its request ran
                };
                conn.busy = false;
                conn.write.set(d.bytes);
                conn.close_after_write = d.close;
            }
            self.drive(d.idx, d.gen32);
        }
    }

    /// A deadline fired. Validate it is still current, then act on the
    /// connection's state: stuck write / idle / pre-head stall close
    /// silently; a stall after the head was parsed earns a 408 (the peer
    /// committed to a request), matching the threaded transport.
    fn expire(&mut self, e: WheelEntry) {
        enum Act {
            Close,
            Timeout408,
        }
        let (act, class) = {
            let Some(conn) = self.slab.get_mut(e.idx, e.gen32) else {
                return;
            };
            if conn.timer_gen != e.timer_gen || conn.busy {
                return; // re-armed (or dispatching) since this was scheduled
            }
            let act = if !conn.write.is_empty() {
                Act::Close
            } else if conn.parser.head_parsed() {
                Act::Timeout408
            } else {
                Act::Close
            };
            (act, conn.timer)
        };
        let m = self.state.metrics();
        match class {
            TimerClass::None => {}
            TimerClass::Idle => m.timer_expirations_idle.inc(),
            TimerClass::Request => m.timer_expirations_request.inc(),
            TimerClass::Write => m.timer_expirations_write.inc(),
        }
        match act {
            Act::Close => self.close_conn(e.idx, e.gen32),
            Act::Timeout408 => {
                m.errors_408.inc();
                if let Some(trace) = self.state.trace() {
                    // The wheel fired before a full request parsed:
                    // method/path are null.
                    trace.emit(&TraceEvent {
                        status: 408,
                        ..TraceEvent::default()
                    });
                }
                let resp = ServiceError::request_timeout().to_response();
                self.queue_response(e.idx, e.gen32, &resp, false);
                self.drive(e.idx, e.gen32);
            }
        }
    }

    fn close_conn(&mut self, idx: usize, gen32: u64) {
        let Some(conn) = self.slab.remove(idx, gen32) else {
            return;
        };
        if conn.registered {
            let _ = self.poller.del(conn.fd);
        }
        // Dropping the stream closes the fd (and clears any leftover
        // registration kernel-side).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call, then blocks.
    struct Trickle {
        out: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
            let n = buf.len().min(self.cap).min(self.budget);
            self.out.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_survives_partial_writes_at_every_boundary() {
        let payload: Vec<u8> = (0u8..=255).collect();
        for cap in 1..payload.len() + 1 {
            // Each round the socket accepts exactly `cap` bytes then
            // blocks, exercising the resume path at every boundary.
            let mut w = Trickle {
                out: Vec::new(),
                cap,
                budget: cap,
            };
            let mut wb = WriteBuf::default();
            wb.set(payload.clone());
            let mut rounds = 0;
            loop {
                match wb.write_to(&mut w) {
                    WriteOutcome::Done => break,
                    WriteOutcome::Pending => w.budget = cap,
                    WriteOutcome::Error => panic!("trickle never errors"),
                }
                rounds += 1;
                assert!(rounds < 10_000);
            }
            assert_eq!(w.out, payload, "cap {cap} corrupted the stream");
            assert!(wb.is_empty());
        }
    }

    #[test]
    fn write_buf_reports_pending_and_resumes() {
        let payload = b"HTTP/1.1 200 OK\r\n\r\nhello".to_vec();
        let mut w = Trickle {
            out: Vec::new(),
            cap: 3,
            budget: 7,
        };
        let mut wb = WriteBuf::default();
        wb.set(payload.clone());
        assert!(matches!(wb.write_to(&mut w), WriteOutcome::Pending));
        assert_eq!(w.out.len(), 7);
        assert!(!wb.is_empty());
        w.budget = usize::MAX;
        assert!(matches!(wb.write_to(&mut w), WriteOutcome::Done));
        assert_eq!(w.out, payload);
    }

    #[test]
    fn slab_tokens_are_generation_tagged() {
        let mk = || {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            let s = TcpStream::connect(l.local_addr().unwrap()).unwrap();
            let fd = s.as_raw_fd();
            Conn::new(s, fd)
        };
        let mut slab = Slab::new();
        let (idx, gen_a) = slab.insert(mk()).unwrap();
        assert!(slab.get_mut(idx, gen_a).is_some());
        assert!(slab.remove(idx, gen_a).is_some());
        assert!(slab.get_mut(idx, gen_a).is_none(), "stale token must miss");
        let (idx2, gen_b) = slab.insert(mk()).unwrap();
        assert_eq!(idx2, idx, "slot is reused");
        assert_ne!(gen_a, gen_b, "generation advanced");
        assert!(slab.remove(idx, gen_a).is_none(), "stale remove must miss");
        assert!(slab.get_mut(idx2, gen_b).is_some());

        let token = pack(idx2, gen_b);
        assert_eq!(unpack(token), (idx2, gen_b));
        let token = pack(7, 0xFFFF_FFFF);
        assert_eq!(unpack(token), (7, 0xFFFF_FFFF));
    }

    #[test]
    fn wheel_expires_due_entries_and_keeps_future_rotations() {
        let mut wheel = DeadlineWheel::new();
        let horizon = WHEEL_SLOT_MS * WHEEL_SLOTS as u64;
        let entry = |idx: usize, due_ms: u64| WheelEntry {
            idx,
            gen32: 0,
            timer_gen: 1,
            due_ms,
        };
        wheel.insert(entry(1, 250));
        wheel.insert(entry(2, 250 + horizon)); // same bucket, next rotation
        wheel.insert(entry(3, 900));

        let mut expired = Vec::new();
        wheel.advance(100, &mut expired);
        assert!(expired.is_empty());

        wheel.advance(300, &mut expired);
        let idxs: Vec<usize> = expired.iter().map(|e| e.idx).collect();
        assert_eq!(idxs, vec![1], "due entry fires, future rotation survives");

        expired.clear();
        wheel.advance(1_000, &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].idx, 3);

        // The next-rotation entry fires once its own time arrives.
        expired.clear();
        wheel.advance(300 + horizon, &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].idx, 2);
    }

    #[test]
    fn wheel_handles_sweep_gaps_longer_than_one_rotation() {
        let mut wheel = DeadlineWheel::new();
        let horizon = WHEEL_SLOT_MS * WHEEL_SLOTS as u64;
        for i in 0..10 {
            wheel.insert(WheelEntry {
                idx: i,
                gen32: 0,
                timer_gen: 1,
                due_ms: (i as u64) * 777 % horizon,
            });
        }
        let mut expired = Vec::new();
        wheel.advance(3 * horizon, &mut expired);
        assert_eq!(expired.len(), 10, "one full sweep visits every bucket");
    }
}
