//! # smin-service
//!
//! The long-running seed-selection server: the ROADMAP's "service front
//! end". A resident process amortizes the two costs every CLI run pays from
//! scratch — graph construction and sketch-pool warm-up — across an entire
//! stream of requests:
//!
//! * **Cached-graph registry** ([`registry`]): graphs are loaded or
//!   generated once (`POST /v1/graphs`) and served until deleted; every
//!   `/v1/select` runs against the in-memory CSR, never a file.
//! * **Warm sketch-pool sessions**: each graph shelves reusable
//!   [`AstiSession`](smin_core::AstiSession)s, so the columnar sketch-pool
//!   arena, worker scratch, and coverage engine keep their learned capacity
//!   between requests (`SketchPool::reset` recycling, PR 4's layout).
//! * **Deterministic responses** ([`routes`]): the same request body returns
//!   byte-identical JSON across restarts and thread counts, which makes the
//!   bounded response cache ([`cache`]) sound — a repeated request is a
//!   memory read.
//! * **Std-only HTTP/1.1** ([`http`], [`server`]): hand-rolled framing over
//!   `std::net`, a fixed worker pool fed by an acceptor over `mpsc`
//!   channels (the `smin-sampling::parallel` threading conventions applied
//!   to connections), keep-alive by default.
//!
//! Per-request `threads` (or the `SMIN_THREADS` env var, resolved at
//! request time) picks the sketch-generation worker count; it never changes
//! results. Structured JSON errors carry stable `code`s mapped from
//! `smin-core::error` ([`error`]).
//!
//! The CLI front end is `asm serve`; `svc_load` (in `smin-bench`) is the
//! matching load generator.

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod registry;
pub mod routes;
pub mod server;

pub use client::{Client, ClientResponse};
pub use error::ServiceError;
pub use routes::ServiceState;
pub use server::{Server, ServerConfig, ServerHandle};
