//! # smin-service
//!
//! The long-running seed-selection server: the ROADMAP's "service front
//! end". A resident process amortizes the two costs every CLI run pays from
//! scratch — graph construction and sketch-pool warm-up — across an entire
//! stream of requests:
//!
//! * **Cached-graph registry** ([`registry`]): graphs are loaded or
//!   generated once (`POST /v1/graphs`) and served until deleted; every
//!   `/v1/select` runs against the in-memory CSR, never a file.
//! * **Warm sketch-pool sessions**: each graph shelves reusable
//!   [`AstiSession`](smin_core::AstiSession)s, so the columnar sketch-pool
//!   arena, worker scratch, and coverage engine keep their learned capacity
//!   between requests (`SketchPool::reset` recycling, PR 4's layout).
//! * **Deterministic responses** ([`routes`]): the same request body returns
//!   byte-identical JSON across restarts and thread counts, which makes the
//!   bounded response cache ([`cache`]) sound — a repeated request is a
//!   memory read.
//! * **Std-only HTTP/1.1** ([`http`], [`server`]): hand-rolled framing over
//!   `std::net`, keep-alive by default, served by one of two transports —
//!   an epoll readiness event loop ([`event_loop`] over raw syscall shims
//!   in [`platform`]) multiplexing every connection on one poll thread, or
//!   the portable acceptor → worker-pool fallback. Both produce
//!   byte-identical responses; [`server::Transport::Auto`] probes at bind
//!   time.
//! * **Request-level protections**: `X-Deadline-Millis` budgets (504),
//!   admission control at a pending-dispatch high-water mark (429), and
//!   batched selection (`POST /v1/select-batch`) amortizing graph
//!   resolution and session checkout across items.
//! * **Observability** ([`metrics`], [`trace`]): a lock-free metric
//!   registry ([`smin_obs`]) fed by the event loop, the session layer, and
//!   the registry/cache, exposed at `GET /metrics` in the Prometheus text
//!   format on both transports; optional per-request JSON trace lines via
//!   `--trace-log`. Timing travels in headers and logs only — response
//!   bodies stay byte-identical with instrumentation on.
//!
//! Per-request `threads` (or the `SMIN_THREADS` env var, resolved at
//! request time) picks the sketch-generation worker count; it never changes
//! results. Structured JSON errors carry stable `code`s mapped from
//! `smin-core::error` ([`error`]).
//!
//! The CLI front end is `asm serve`; `svc_load` (in `smin-bench`) is the
//! matching load generator.

// Unsafe code is denied everywhere except the epoll syscall shims in
// `platform::sys`, which carry their own `#[allow]` and SAFETY comments.
#![deny(unsafe_code)]

pub mod cache;
pub mod client;
pub mod error;
#[cfg(unix)]
pub(crate) mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod platform;
pub mod registry;
pub mod routes;
pub mod server;
pub mod trace;

pub use client::{Client, ClientResponse};
pub use error::ServiceError;
pub use metrics::ServiceMetrics;
pub use routes::ServiceState;
pub use server::{Server, ServerConfig, ServerHandle, Transport};
pub use trace::TraceLog;
