//! The service's metric registry and its `/metrics` exposition.
//!
//! One [`ServiceMetrics`] instance lives in [`ServiceState`] and is shared
//! by both transports: the epoll event loop feeds the loop-level series
//! (poll wait, queue depth, slab occupancy, timers, byte counters), the
//! session layer feeds the per-route request counters, structured-error
//! counters, and per-stage select histograms, and the registry/cache series
//! are read live at scrape time. All cells are lock-free atomics
//! ([`smin_obs`]) — recording a metric never takes a lock and never
//! allocates.
//!
//! `GET /metrics` renders the registry in the Prometheus text exposition
//! format (version 0.0.4). The handler mutates nothing — it is not counted
//! as a request — so two consecutive scrapes with no intervening traffic
//! are byte-identical: every histogram has fixed power-of-two bucket
//! bounds, every labeled family renders in a fixed (or BTreeMap) order, and
//! no timestamp appears in the output.

use crate::routes::ServiceState;
use smin_obs::{expo, Counter, Gauge, Histogram};

/// Every metric the service records, grouped by layer.
#[derive(Default)]
pub struct ServiceMetrics {
    // --- event loop (epoll transport) ---
    /// Time spent blocked in `epoll_wait`, per call.
    pub epoll_wait_micros: Histogram,
    /// Dispatches queued + running (sampled once per loop iteration).
    pub dispatch_queue_depth: Gauge,
    /// Connections occupying slab slots (sampled once per loop iteration).
    pub slab_connections: Gauge,
    /// Connections awaiting a synchronous-response redrive (sampled once
    /// per loop iteration).
    pub redrive_queue_length: Gauge,
    /// Idle keep-alive deadlines fired (silent close).
    pub timer_expirations_idle: Counter,
    /// Mid-request deadlines fired (408 when the head was parsed).
    pub timer_expirations_request: Counter,
    /// Stuck-write deadlines fired (close).
    pub timer_expirations_write: Counter,
    /// Bytes read off connection sockets.
    pub bytes_read: Counter,
    /// Bytes written to connection sockets.
    pub bytes_written: Counter,

    // --- session layer: requests per route (both transports) ---
    /// `GET /healthz` requests routed.
    pub requests_healthz: Counter,
    /// `/v1/graphs` (+ `/v1/graphs/{id}`) requests routed.
    pub requests_graphs: Counter,
    /// `/v1/select` requests routed.
    pub requests_select: Counter,
    /// `/v1/select-batch` requests routed.
    pub requests_select_batch: Counter,
    /// Everything else (404s, stray methods).
    pub requests_other: Counter,

    // --- structured transport errors (both transports) ---
    /// 400s from malformed HTTP or a bad `X-Deadline-Millis` header.
    pub errors_400: Counter,
    /// 408s: the peer committed to a request and stalled past the timeout.
    pub errors_408: Counter,
    /// 429s from admission control.
    pub errors_429: Counter,
    /// 504s: the request's deadline expired before dispatch.
    pub errors_504: Counter,

    // --- select pipeline stages ---
    /// Request parse + graph resolution against the registry.
    pub stage_resolve_micros: Histogram,
    /// Warm-session checkout from the graph's shelf.
    pub stage_checkout_micros: Histogram,
    /// Sketch-pool growth (mRR-set generation), summed over rounds.
    pub stage_sketch_micros: Histogram,
    /// Coverage argmax / greedy selection, summed over rounds.
    pub stage_coverage_micros: Histogram,
    /// Response-body serialization.
    pub stage_serialize_micros: Histogram,

    // --- coverage-engine traffic (most recent computed selection) ---
    /// CELF heap pops of the most recent computed (non-cached) selection.
    pub coverage_last_heap_pops: Gauge,
    /// CELF heap re-pushes of the most recent computed selection.
    pub coverage_last_heap_pushes: Gauge,
    /// Nodes scanned by the most recent computed eager selection.
    pub coverage_last_scanned: Gauge,
}

impl ServiceMetrics {
    /// All-zero metrics.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// The structured-error counter for `status`, if it is one of the four
    /// transport-protection statuses.
    pub fn error_counter(&self, status: u16) -> Option<&Counter> {
        match status {
            400 => Some(&self.errors_400),
            408 => Some(&self.errors_408),
            429 => Some(&self.errors_429),
            504 => Some(&self.errors_504),
            _ => None,
        }
    }
}

/// Renders the full exposition text: the shared registry above, plus the
/// cache hit/miss counters and per-graph registry gauges read live from
/// `state`. Purely a read — scraping never changes any series.
pub fn render(state: &ServiceState) -> String {
    let m = state.metrics();
    let mut out = String::with_capacity(8 << 10);

    // Event loop.
    expo::write_histogram(
        &mut out,
        "smin_epoll_wait_micros",
        "Time blocked in epoll_wait per call, in microseconds.",
        &m.epoll_wait_micros.snapshot(),
    );
    expo::write_gauge(
        &mut out,
        "smin_dispatch_queue_depth",
        "Dispatches queued plus running, sampled per loop iteration.",
        m.dispatch_queue_depth.get(),
    );
    expo::write_gauge(
        &mut out,
        "smin_slab_connections",
        "Connections occupying event-loop slab slots.",
        m.slab_connections.get(),
    );
    expo::write_gauge(
        &mut out,
        "smin_redrive_queue_length",
        "Connections awaiting a synchronous-response redrive.",
        m.redrive_queue_length.get(),
    );
    expo::write_counter_vec(
        &mut out,
        "smin_timer_expirations_total",
        "Deadline-wheel expirations fired, by timer class.",
        &[
            ("class=\"idle\"", m.timer_expirations_idle.get()),
            ("class=\"request\"", m.timer_expirations_request.get()),
            ("class=\"write\"", m.timer_expirations_write.get()),
        ],
    );
    expo::write_counter(
        &mut out,
        "smin_bytes_read_total",
        "Bytes read off connection sockets by the event loop.",
        m.bytes_read.get(),
    );
    expo::write_counter(
        &mut out,
        "smin_bytes_written_total",
        "Bytes written to connection sockets by the event loop.",
        m.bytes_written.get(),
    );

    // Session layer.
    expo::write_counter_vec(
        &mut out,
        "smin_http_requests_total",
        "Requests routed by the session layer (excludes /metrics scrapes).",
        &[
            ("route=\"healthz\"", m.requests_healthz.get()),
            ("route=\"graphs\"", m.requests_graphs.get()),
            ("route=\"select\"", m.requests_select.get()),
            ("route=\"select_batch\"", m.requests_select_batch.get()),
            ("route=\"other\"", m.requests_other.get()),
        ],
    );
    expo::write_counter_vec(
        &mut out,
        "smin_http_errors_total",
        "Structured transport-protection errors, by status.",
        &[
            ("status=\"400\"", m.errors_400.get()),
            ("status=\"408\"", m.errors_408.get()),
            ("status=\"429\"", m.errors_429.get()),
            ("status=\"504\"", m.errors_504.get()),
        ],
    );

    // Select pipeline stages.
    expo::write_histogram_vec(
        &mut out,
        "smin_select_stage_micros",
        "Per-request select stage durations, in microseconds.",
        &[
            ("stage=\"resolve\"", m.stage_resolve_micros.snapshot()),
            ("stage=\"checkout\"", m.stage_checkout_micros.snapshot()),
            ("stage=\"sketch\"", m.stage_sketch_micros.snapshot()),
            ("stage=\"coverage\"", m.stage_coverage_micros.snapshot()),
            ("stage=\"serialize\"", m.stage_serialize_micros.snapshot()),
        ],
    );
    expo::write_gauge_vec(
        &mut out,
        "smin_coverage_last_traffic",
        "Coverage-engine traffic of the most recent computed selection.",
        &[
            ("kind=\"heap_pops\"", m.coverage_last_heap_pops.get()),
            ("kind=\"heap_pushes\"", m.coverage_last_heap_pushes.get()),
            ("kind=\"scanned\"", m.coverage_last_scanned.get()),
        ],
    );

    // Cache: the same counters /healthz reports, read from the same source.
    let (cached, hits, misses) = {
        let cache = state.cache();
        let (h, miss) = cache.stats();
        (cache.len(), h, miss)
    };
    expo::write_gauge(
        &mut out,
        "smin_cache_entries",
        "Memoized /v1/select responses currently held.",
        u64::try_from(cached).unwrap_or(u64::MAX),
    );
    expo::write_counter_vec(
        &mut out,
        "smin_cache_lookups_total",
        "Select-cache lookups, by outcome.",
        &[("outcome=\"hit\"", hits), ("outcome=\"miss\"", misses)],
    );

    // Registry: per-graph series in BTreeMap (id-sorted) order, so the
    // label ordering is deterministic without an explicit sort.
    let entries = state.registry().list();
    let mut selects: Vec<(String, u64)> = Vec::with_capacity(entries.len());
    let mut warm: Vec<(String, u64)> = Vec::with_capacity(entries.len());
    let mut warm_bytes: Vec<(String, u64)> = Vec::with_capacity(entries.len());
    for e in &entries {
        let label = format!("graph=\"{}\"", e.id);
        selects.push((
            label.clone(),
            e.selects.load(std::sync::atomic::Ordering::Relaxed),
        ));
        warm.push((
            label.clone(),
            u64::try_from(e.warm_sessions()).unwrap_or(u64::MAX),
        ));
        warm_bytes.push((
            label,
            u64::try_from(e.warm_pool_bytes()).unwrap_or(u64::MAX),
        ));
    }
    fn borrow(v: &[(String, u64)]) -> Vec<(&str, u64)> {
        v.iter().map(|(l, n)| (l.as_str(), *n)).collect()
    }
    expo::write_counter_vec(
        &mut out,
        "smin_graph_selects_total",
        "Selects served per registered graph.",
        &borrow(&selects),
    );
    expo::write_gauge_vec(
        &mut out,
        "smin_graph_warm_sessions",
        "Warm sessions shelved per registered graph.",
        &borrow(&warm),
    );
    expo::write_gauge_vec(
        &mut out,
        "smin_graph_warm_pool_bytes",
        "Heap bytes retained by shelved sketch pools, per graph.",
        &borrow(&warm_bytes),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_counters_cover_the_protection_statuses() {
        let m = ServiceMetrics::new();
        for status in [400u16, 408, 429, 504] {
            let c = m.error_counter(status).expect("counter exists");
            c.inc();
        }
        assert_eq!(m.errors_400.get(), 1);
        assert_eq!(m.errors_408.get(), 1);
        assert_eq!(m.errors_429.get(), 1);
        assert_eq!(m.errors_504.get(), 1);
        assert!(m.error_counter(200).is_none());
        assert!(m.error_counter(422).is_none());
    }

    #[test]
    fn render_is_valid_exposition_and_byte_stable() {
        let state = ServiceState::new(None, 8);
        state.metrics().requests_select.add(3);
        state.metrics().stage_sketch_micros.observe(150);
        let a = render(&state);
        let b = render(&state);
        assert_eq!(a, b, "two scrapes with no traffic must be byte-identical");

        // Structural validity: every non-comment line is `name{labels} value`
        // or `name value`, and every sample name was declared by a # TYPE.
        let mut typed = std::collections::BTreeSet::new();
        for line in a.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                typed.insert(name.to_string());
                continue;
            }
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP "), "bad comment: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let name = series.split('{').next().unwrap_or(series);
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|b| typed.contains(*b))
                .unwrap_or(name);
            assert!(typed.contains(base), "undeclared sample {name}: {line}");
            assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        }
        assert!(a.contains("smin_http_requests_total{route=\"select\"} 3\n"));
        assert!(a.contains("smin_select_stage_micros_bucket{stage=\"sketch\",le=\"256\"} 1\n"));
    }
}
