//! Structured request tracing: one JSON line per request.
//!
//! `asm serve --trace-log <path>` opens a [`TraceLog`]; the session layer
//! and both transports then emit one [`TraceEvent`] per request. Lines are
//! built on the emitting thread but written by a dedicated log thread that
//! owns the file behind a buffered writer — request threads only push onto
//! an unbounded channel, so tracing never blocks the request path on disk
//! I/O. The writer flushes whenever its channel drains, so the file is
//! current whenever the service is idle, without a syscall per line.
//!
//! Line schema (stable field order):
//!
//! ```json
//! {"method":"POST","path":"/v1/select","status":200,
//!  "micros":{"resolve":12,"checkout":3,"sketch":4100,"coverage":890,"serialize":45},
//!  "cache":"MISS","deadline_remaining_ms":238}
//! ```
//!
//! `micros` is `null` for non-select routes and for transport-level errors
//! (400/408/429/504) answered before the pipeline ran; `cache` is `null`
//! when no cache decision was made; `deadline_remaining_ms` is `null` when
//! the request carried no `X-Deadline-Millis` header. `method`/`path` are
//! `null` for failures with no parsed request (malformed HTTP, 408s fired
//! by the deadline wheel). Timing appears only here and in response
//! headers — never in a response body — so the determinism contract holds.

use serde_json::Value;
use std::io::Write;
use std::path::Path;
use std::sync::mpsc;

/// Stage durations of one select request, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageMicrosLine {
    /// Request parse + graph resolution.
    pub resolve: u64,
    /// Warm-session checkout.
    pub checkout: u64,
    /// Sketch-pool growth, summed over rounds.
    pub sketch: u64,
    /// Coverage argmax/greedy, summed over rounds.
    pub coverage: u64,
    /// Response-body serialization.
    pub serialize: u64,
}

/// One request's trace fields; `None`s render as JSON `null`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceEvent<'a> {
    /// Request method, when a request was parsed.
    pub method: Option<&'a str>,
    /// Request path, when a request was parsed.
    pub path: Option<&'a str>,
    /// Response status.
    pub status: u16,
    /// Select stage timings; `None` off the select pipeline.
    pub micros: Option<StageMicrosLine>,
    /// `HIT` / `MISS` / `BYPASS` / `MIXED`, when a cache decision was made.
    pub cache: Option<&'a str>,
    /// `X-Deadline-Millis` minus the time already spent, floored at zero;
    /// `None` when the header was absent.
    pub deadline_remaining_ms: Option<u64>,
}

impl TraceEvent<'_> {
    fn to_value(self) -> Value {
        let micros = match self.micros {
            Some(m) => serde_json::json!({
                "resolve": m.resolve,
                "checkout": m.checkout,
                "sketch": m.sketch,
                "coverage": m.coverage,
                "serialize": m.serialize,
            }),
            None => Value::Null,
        };
        Value::Object(vec![
            ("method".to_string(), Value::from(self.method)),
            ("path".to_string(), Value::from(self.path)),
            ("status".to_string(), Value::from(self.status)),
            ("micros".to_string(), micros),
            ("cache".to_string(), Value::from(self.cache)),
            (
                "deadline_remaining_ms".to_string(),
                Value::from(self.deadline_remaining_ms),
            ),
        ])
    }
}

/// Cloneable sender half of the trace pipeline. Dropping every clone closes
/// the channel; the log thread flushes and exits.
#[derive(Clone)]
pub struct TraceLog {
    tx: mpsc::Sender<String>,
}

impl TraceLog {
    /// Creates (truncating) the log file and starts the writer thread.
    pub fn open(path: &Path) -> std::io::Result<TraceLog> {
        let file = std::fs::File::create(path)?;
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::Builder::new()
            .name("smin-trace-log".to_string())
            .spawn(move || run_writer(&rx, file))?;
        Ok(TraceLog { tx })
    }

    /// Queues one trace line. Never blocks on I/O; a closed channel (writer
    /// thread gone) drops the line silently — tracing must not take down a
    /// request.
    pub fn emit(&self, event: &TraceEvent<'_>) {
        if let Ok(line) = serde_json::to_string(&event.to_value()) {
            let _ = self.tx.send(line);
        }
    }
}

/// The log thread: drain-then-flush so bursts amortize into one buffered
/// write and the file is byte-complete whenever the channel is empty.
fn run_writer(rx: &mpsc::Receiver<String>, file: std::fs::File) {
    let mut w = std::io::BufWriter::new(file);
    while let Ok(line) = rx.recv() {
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        while let Ok(line) = rx.try_recv() {
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
        let _ = w.flush();
    }
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_land_in_the_file_with_the_pinned_schema() {
        let path = std::env::temp_dir().join("smin_trace_log_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = TraceLog::open(&path).unwrap();
        log.emit(&TraceEvent {
            method: Some("POST"),
            path: Some("/v1/select"),
            status: 200,
            micros: Some(StageMicrosLine {
                resolve: 12,
                checkout: 3,
                sketch: 4100,
                coverage: 890,
                serialize: 45,
            }),
            cache: Some("MISS"),
            deadline_remaining_ms: Some(238),
        });
        log.emit(&TraceEvent {
            method: None,
            path: None,
            status: 408,
            micros: None,
            cache: None,
            deadline_remaining_ms: None,
        });
        drop(log); // closes the channel; the writer flushes and exits
        let text = wait_for_lines(&path, 2);
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            r#"{"method":"POST","path":"/v1/select","status":200,"micros":{"resolve":12,"checkout":3,"sketch":4100,"coverage":890,"serialize":45},"cache":"MISS","deadline_remaining_ms":238}"#
        );
        assert_eq!(
            lines.next().unwrap(),
            r#"{"method":null,"path":null,"status":408,"micros":null,"cache":null,"deadline_remaining_ms":null}"#
        );
        std::fs::remove_file(&path).ok();
    }

    /// The writer thread races the assertion; poll briefly for the flush.
    fn wait_for_lines(path: &Path, n: usize) -> String {
        for _ in 0..200 {
            let text = std::fs::read_to_string(path).unwrap_or_default();
            if text.lines().count() >= n {
                return text;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        std::fs::read_to_string(path).unwrap_or_default()
    }
}
