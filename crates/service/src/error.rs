//! Structured JSON errors.
//!
//! Every failure the service can produce flows through [`ServiceError`] and
//! renders as one body shape:
//!
//! ```json
//! {"error": {"code": "eta_out_of_range", "status": 422, "message": "…"}}
//! ```
//!
//! Algorithm-layer failures ([`AsmError`]) and graph-layer failures
//! ([`GraphError`]) map onto stable machine-readable codes, so clients can
//! branch on `code` without parsing prose.

use crate::http::{Request, Response};
use smin_core::AsmError;
use smin_graph::error::GraphError;

/// A service failure: HTTP status, stable code, human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    pub status: u16,
    pub code: &'static str,
    pub message: String,
}

impl ServiceError {
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ServiceError {
            status,
            code,
            message: message.into(),
        }
    }

    /// 400 — the request itself is malformed (bad JSON, missing field).
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServiceError::new(400, "bad_request", message)
    }

    /// 404 — no such route or resource.
    pub fn not_found(code: &'static str, message: impl Into<String>) -> Self {
        ServiceError::new(404, code, message)
    }

    /// 408 — the peer started a request (head parsed) but stalled past the
    /// request timeout. The body is deterministic so tests can pin it.
    pub fn request_timeout() -> Self {
        ServiceError::new(
            408,
            "request_timeout",
            "request timed out before the body completed",
        )
    }

    /// 429 — admission control: the pending-dispatch queue is at its
    /// high-water mark. Deterministic body, pinned by the overload test.
    pub fn overloaded() -> Self {
        ServiceError::new(
            429,
            "overloaded",
            "pending request queue is full; retry later",
        )
    }

    /// 504 — the request's own `X-Deadline-Millis` budget was exhausted
    /// before a dispatch thread could start it.
    pub fn deadline_exceeded(deadline_ms: u64) -> Self {
        ServiceError::new(
            504,
            "deadline_exceeded",
            format!("deadline of {deadline_ms}ms exceeded before dispatch"),
        )
    }

    /// The response body `{"error": {...}}`.
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Object(vec![(
            "error".to_string(),
            serde_json::json!({
                "code": self.code,
                "status": self.status,
                "message": self.message.clone(),
            }),
        )])
    }

    /// Renders the error as a full HTTP response.
    pub fn to_response(&self) -> Response {
        Response::json(self.status, &self.to_value())
    }
}

/// Extracts the request's `X-Deadline-Millis` budget. `Ok(None)` when the
/// header is absent; 400 when it is present but not a non-negative integer.
/// Both transports call this at the same point (after parsing, before
/// admission), keeping their status ordering identical.
pub fn parse_deadline(req: &Request) -> Result<Option<u64>, ServiceError> {
    match req.header("x-deadline-millis") {
        None => Ok(None),
        Some(v) => v.trim().parse::<u64>().map(Some).map_err(|_| {
            ServiceError::bad_request(format!(
                "bad X-Deadline-Millis value {v:?}: expected a non-negative integer count of milliseconds"
            ))
        }),
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.code, self.status, self.message)
    }
}

impl From<AsmError> for ServiceError {
    fn from(e: AsmError) -> Self {
        // All algorithm-parameter failures are 422: the request was
        // well-formed but semantically unrunnable against the target graph.
        let code = match &e {
            AsmError::EtaOutOfRange { .. } => "eta_out_of_range",
            AsmError::InvalidEps(_) => "invalid_eps",
            AsmError::InvalidBatch(_) => "invalid_batch",
            AsmError::InvalidLtInstance { .. } => "invalid_lt_instance",
            AsmError::EmptyGraph => "empty_graph",
            AsmError::SessionMismatch { .. } => "session_mismatch",
        };
        ServiceError::new(422, code, e.to_string())
    }
}

impl From<GraphError> for ServiceError {
    fn from(e: GraphError) -> Self {
        let (status, code) = match &e {
            GraphError::Parse { .. } => (422, "graph_parse_error"),
            GraphError::Io(_) => (400, "graph_io_error"),
            _ => (422, "graph_invalid"),
        };
        ServiceError::new(status, code, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_errors_map_to_stable_codes() {
        let e: ServiceError = AsmError::EtaOutOfRange { eta: 99, n: 10 }.into();
        assert_eq!(e.status, 422);
        assert_eq!(e.code, "eta_out_of_range");
        assert!(e.message.contains("99"));
        let e: ServiceError = AsmError::InvalidEps(1.5).into();
        assert_eq!(e.code, "invalid_eps");
        let e: ServiceError = AsmError::InvalidBatch(0).into();
        assert_eq!(e.code, "invalid_batch");
        let e: ServiceError = AsmError::EmptyGraph.into();
        assert_eq!(e.code, "empty_graph");
        let e: ServiceError = AsmError::SessionMismatch {
            session_n: 1,
            graph_n: 2,
        }
        .into();
        assert_eq!(e.code, "session_mismatch");
    }

    #[test]
    fn graph_errors_map_to_codes() {
        let e: ServiceError = GraphError::Parse {
            line: 3,
            message: "bad target".into(),
        }
        .into();
        assert_eq!(e.code, "graph_parse_error");
        assert!(e.message.contains("line 3"));
        let e: ServiceError = GraphError::Io("gone".into()).into();
        assert_eq!(e.code, "graph_io_error");
        let e: ServiceError = GraphError::SelfLoop { u: 4 }.into();
        assert_eq!(e.code, "graph_invalid");
    }

    #[test]
    fn error_body_shape_is_stable() {
        let e = ServiceError::bad_request("no body");
        let body = serde_json::to_string(&e.to_value()).unwrap();
        assert_eq!(
            body,
            r#"{"error":{"code":"bad_request","status":400,"message":"no body"}}"#
        );
        let resp = e.to_response();
        assert_eq!(resp.status, 400);
    }
}
