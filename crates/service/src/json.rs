//! Typed field extraction over `serde_json::Value` request bodies.
//!
//! The offline serde shim has no derive-based deserialization, so request
//! bodies are pulled apart field by field. Every accessor returns a
//! [`ServiceError`] naming the offending field, which keeps 400 responses
//! actionable.

use crate::error::ServiceError;
use serde_json::Value;

/// Parses a request body as a JSON object.
pub fn parse_object(body: &[u8]) -> Result<Value, ServiceError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServiceError::bad_request("request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(ServiceError::bad_request("request body is empty"));
    }
    let value: Value = serde_json::from_str(text)
        .map_err(|e| ServiceError::bad_request(format!("invalid JSON body: {e}")))?;
    match value {
        Value::Object(_) => Ok(value),
        other => Err(ServiceError::bad_request(format!(
            "request body must be a JSON object, found {other:?}"
        ))),
    }
}

/// Looks up `key` in an object value.
pub fn field<'a>(obj: &'a Value, key: &str) -> Option<&'a Value> {
    match obj {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .filter(|v| !matches!(v, Value::Null)),
        _ => None,
    }
}

fn wrong_type(key: &str, expected: &str, found: &Value) -> ServiceError {
    ServiceError::bad_request(format!("field '{key}' must be {expected}, found {found:?}"))
}

/// Optional string field.
pub fn opt_str(obj: &Value, key: &str) -> Result<Option<String>, ServiceError> {
    match field(obj, key) {
        None => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(other) => Err(wrong_type(key, "a string", other)),
    }
}

/// Optional non-negative integer field (rejects fractions and negatives).
pub fn opt_usize(obj: &Value, key: &str) -> Result<Option<usize>, ServiceError> {
    match field(obj, key) {
        None => Ok(None),
        Some(Value::Number(x)) if x.fract() == 0.0 && *x >= 0.0 => Ok(Some(*x as usize)),
        Some(other) => Err(wrong_type(key, "a non-negative integer", other)),
    }
}

/// Optional u64 field (seeds).
pub fn opt_u64(obj: &Value, key: &str) -> Result<Option<u64>, ServiceError> {
    match field(obj, key) {
        None => Ok(None),
        Some(Value::Number(x)) if x.fract() == 0.0 && *x >= 0.0 => Ok(Some(*x as u64)),
        Some(other) => Err(wrong_type(key, "a non-negative integer", other)),
    }
}

/// Optional float field.
pub fn opt_f64(obj: &Value, key: &str) -> Result<Option<f64>, ServiceError> {
    match field(obj, key) {
        None => Ok(None),
        Some(Value::Number(x)) => Ok(Some(*x)),
        Some(other) => Err(wrong_type(key, "a number", other)),
    }
}

/// Optional bool field.
pub fn opt_bool(obj: &Value, key: &str) -> Result<Option<bool>, ServiceError> {
    match field(obj, key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(wrong_type(key, "a boolean", other)),
    }
}

/// Required string field.
pub fn req_str(obj: &Value, key: &str) -> Result<String, ServiceError> {
    opt_str(obj, key)?
        .ok_or_else(|| ServiceError::bad_request(format!("missing required field '{key}'")))
}

/// Required integer field.
pub fn req_usize(obj: &Value, key: &str) -> Result<usize, ServiceError> {
    opt_usize(obj, key)?
        .ok_or_else(|| ServiceError::bad_request(format!("missing required field '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(s: &str) -> Value {
        parse_object(s.as_bytes()).unwrap()
    }

    #[test]
    fn parse_object_accepts_only_objects() {
        assert!(parse_object(b"{\"a\": 1}").is_ok());
        assert!(parse_object(b"[1,2]")
            .unwrap_err()
            .message
            .contains("object"));
        assert!(parse_object(b"").unwrap_err().message.contains("empty"));
        assert!(parse_object(b"{oops").unwrap_err().message.contains("JSON"));
        assert!(parse_object(&[0xFF, 0xFE])
            .unwrap_err()
            .message
            .contains("UTF-8"));
    }

    #[test]
    fn typed_accessors_extract_and_reject() {
        let v = obj(r#"{"s": "x", "n": 3, "f": 0.5, "b": true, "neg": -1, "frac": 1.5}"#);
        assert_eq!(opt_str(&v, "s").unwrap(), Some("x".to_string()));
        assert_eq!(opt_usize(&v, "n").unwrap(), Some(3));
        assert_eq!(opt_u64(&v, "n").unwrap(), Some(3));
        assert_eq!(opt_f64(&v, "f").unwrap(), Some(0.5));
        assert_eq!(opt_bool(&v, "b").unwrap(), Some(true));
        assert_eq!(opt_str(&v, "missing").unwrap(), None);
        assert!(opt_usize(&v, "neg").is_err());
        assert!(opt_usize(&v, "frac").is_err());
        assert!(opt_str(&v, "n").is_err());
        assert!(opt_bool(&v, "s").is_err());
    }

    #[test]
    fn null_fields_read_as_absent() {
        let v = obj(r#"{"x": null}"#);
        assert_eq!(opt_str(&v, "x").unwrap(), None);
        assert_eq!(opt_usize(&v, "x").unwrap(), None);
    }

    #[test]
    fn required_accessors_name_the_field() {
        let v = obj(r#"{"a": 1}"#);
        assert!(req_str(&v, "graph")
            .unwrap_err()
            .message
            .contains("'graph'"));
        assert_eq!(req_usize(&v, "a").unwrap(), 1);
    }
}
