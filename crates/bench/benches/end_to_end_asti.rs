//! End-to-end bench: a full adaptive run to η = 5% of n on the standard
//! bench graph — miniature of Figures 5/7, covering ASTI, ASTI-4, and the
//! AdaptIM baseline under both models.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_core::{adapt_im, asti, AdaptImParams, AstiParams};
use smin_diffusion::{Model, Realization, RealizationOracle};
use std::hint::black_box;

fn bench_asti(c: &mut Criterion) {
    let g = common::bench_graph();
    let eta = g.n() / 20;
    let mut group = c.benchmark_group("end_to_end");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for model in [Model::IC, Model::LT] {
        let mut rng = SmallRng::seed_from_u64(10);
        let phi = Realization::sample(&g, model, &mut rng);
        for &b in &[1usize, 4] {
            let name = if b == 1 {
                format!("asti/{model}")
            } else {
                format!("asti_b{b}/{model}")
            };
            group.bench_function(name, |bench| {
                let params = AstiParams::batched(0.5, b);
                let mut rng = SmallRng::seed_from_u64(11);
                bench.iter(|| {
                    let mut oracle = RealizationOracle::new(&g, phi.clone());
                    let report =
                        asti(&g, model, eta, &params, &mut oracle, &mut rng).expect("valid");
                    black_box(report.num_seeds())
                });
            });
        }
        group.bench_function(format!("adapt_im/{model}"), |bench| {
            let params = AdaptImParams::with_eps(0.5);
            let mut rng = SmallRng::seed_from_u64(11);
            bench.iter(|| {
                let mut oracle = RealizationOracle::new(&g, phi.clone());
                let report =
                    adapt_im(&g, model, eta, &params, &mut oracle, &mut rng).expect("valid");
                black_box(report.num_seeds())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_asti);
criterion_main!(benches);
