//! Ablation bench (§3.3 Remark): the randomized rounding of the mRR root
//! count versus the fixed `⌊n/η⌋` and `⌊n/η⌋ + 1` variants.
//!
//! Time differences are marginal (the fixed-ceil variant samples one extra
//! root); what the Remark is about is estimator *accuracy* — the companion
//! integration test `tests/theorem33_bounds.rs` verifies the
//! `[1 − 1/e, 1]` vs `[1 − 1/√e, 1]` vs `[1 − 1/e, 2]` ranges. This bench
//! pins down that the accuracy win is not paid for in sampling time.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{Model, ResidualState};
use smin_sampling::{MrrSampler, RootCountDist};
use std::hint::black_box;

fn bench_rounding(c: &mut Criterion) {
    let g = common::bench_graph();
    let n = g.n();
    let mut group = c.benchmark_group("ablation_rounding");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for (name, dist) in [
        ("randomized", RootCountDist::Randomized),
        ("fixed_floor", RootCountDist::FixedFloor),
        ("fixed_ceil", RootCountDist::FixedCeil),
    ] {
        for &eta in &[30usize, 300] {
            group.bench_with_input(BenchmarkId::new(name, eta), &eta, |bench, &eta| {
                let residual = ResidualState::new(n);
                let mut sampler = MrrSampler::new(n);
                let mut rng = SmallRng::seed_from_u64(9);
                let mut out = Vec::new();
                bench.iter(|| {
                    sampler.sample_into(&g, Model::IC, &residual, eta, dist, &mut rng, &mut out);
                    black_box(out.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rounding);
criterion_main!(benches);
