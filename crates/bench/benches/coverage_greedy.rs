//! Microbench: argmax + greedy maximum coverage over a sketch pool (TRIM
//! Line 7 / TRIM-B Line 8) across batch sizes and pool sizes.
//!
//! Three contenders per configuration:
//!
//! * `naive` — the pre-refactor baseline reconstructed here: `Vec<Vec<u32>>`
//!   inverted index, full rescans (no exhausted-node compaction);
//! * `eager` — the arena pool + compacted-scan eager greedy;
//! * `celf`  — the arena pool + CELF lazy greedy (the engine default).
//!
//! The pool-size sweep also reports `SketchPool::heap_bytes()` next to the
//! naive layout's footprint, so both the speed and the memory side of the
//! arena layout stay visible in CI's bench smoke run.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{Model, ResidualState};
use smin_sampling::{
    greedy_max_coverage, lazy_greedy_max_coverage, CoverageEngine, MrrSampler, RootCountDist,
    SketchPool,
};
use std::hint::black_box;

/// Pre-refactor pool layout and greedy, kept verbatim as the regression
/// baseline the arena engine is measured against.
struct NaivePool {
    node_sets: Vec<Vec<u32>>,
    sets: Vec<Vec<u32>>,
    coverage: Vec<u32>,
    touched: Vec<u32>,
}

impl NaivePool {
    fn new(n: usize) -> Self {
        NaivePool {
            node_sets: vec![Vec::new(); n],
            sets: Vec::new(),
            coverage: vec![0; n],
            touched: Vec::new(),
        }
    }

    fn add_set(&mut self, nodes: &[u32]) {
        let id = self.sets.len() as u32;
        for &v in nodes {
            self.node_sets[v as usize].push(id);
            if self.coverage[v as usize] == 0 {
                self.touched.push(v);
            }
            self.coverage[v as usize] += 1;
        }
        self.sets.push(nodes.to_vec());
    }

    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_vec = size_of::<Vec<u32>>();
        self.node_sets.capacity() * per_vec
            + self
                .node_sets
                .iter()
                .map(|v| v.capacity() * 4)
                .sum::<usize>()
            + self.sets.capacity() * per_vec
            + self.sets.iter().map(|v| v.capacity() * 4).sum::<usize>()
            + self.coverage.capacity() * 4
            + self.touched.capacity() * 4
    }

    /// The seed repo's `greedy_max_coverage`: rescans every touched node on
    /// every pick, `Vec<bool>` covered mask.
    fn greedy(&self, b: usize) -> u32 {
        let mut marginal = self.coverage.clone();
        let mut set_covered = vec![false; self.sets.len()];
        let mut covered = 0u32;
        for _ in 0..b {
            let mut best: Option<(u32, u32)> = None;
            for &v in &self.touched {
                let c = marginal[v as usize];
                if c > 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
                    best = Some((v, c));
                }
            }
            let Some((v, gain)) = best else { break };
            covered += gain;
            for &s in &self.node_sets[v as usize] {
                if !set_covered[s as usize] {
                    set_covered[s as usize] = true;
                    for &u in &self.sets[s as usize] {
                        marginal[u as usize] -= 1;
                    }
                }
            }
        }
        covered
    }
}

fn build_pools(sets: usize) -> (SketchPool, NaivePool) {
    let g = common::bench_graph();
    let n = g.n();
    let residual = ResidualState::new(n);
    let mut sampler = MrrSampler::new(n);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut pool = SketchPool::new(n);
    let mut naive = NaivePool::new(n);
    let mut out = Vec::new();
    for _ in 0..sets {
        sampler.sample_into(
            &g,
            Model::IC,
            &residual,
            100,
            RootCountDist::Randomized,
            &mut rng,
            &mut out,
        );
        pool.add_set(&out);
        naive.add_set(&out);
    }
    (pool, naive)
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_greedy");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);

    // Pool-size sweep at a fixed mid batch, reporting memory footprints.
    for &sets in &[1_024usize, 4_096, 16_384] {
        let (pool, naive) = build_pools(sets);
        println!(
            "pool {sets:>6} sets: arena heap = {:>9} B, naive heap = {:>9} B",
            pool.heap_bytes(),
            naive.heap_bytes()
        );
        // arena vs naive must agree before we time anything
        assert_eq!(greedy_max_coverage(&pool, 8).covered, naive.greedy(8));
        group.bench_with_input(BenchmarkId::new("naive/b8", sets), &sets, |bench, _| {
            bench.iter(|| black_box(naive.greedy(8)))
        });
        group.bench_with_input(BenchmarkId::new("eager/b8", sets), &sets, |bench, _| {
            bench.iter(|| black_box(greedy_max_coverage(&pool, 8).covered))
        });
        group.bench_with_input(BenchmarkId::new("celf/b8", sets), &sets, |bench, _| {
            bench.iter(|| black_box(lazy_greedy_max_coverage(&pool, 8).covered))
        });
    }

    // Batch sweep on the standard pool: argmax + all three strategies, the
    // engine reused across iterations the way TrimScratch holds it.
    let (pool, naive) = build_pools(4_096);
    let mut engine = CoverageEngine::new();
    group.bench_function("argmax", |bench| {
        bench.iter(|| black_box(engine.argmax(&pool)))
    });
    for &b in &[1usize, 2, 4, 8, 32] {
        assert_eq!(lazy_greedy_max_coverage(&pool, b).covered, naive.greedy(b));
        group.bench_with_input(BenchmarkId::new("naive", b), &b, |bench, &b| {
            bench.iter(|| black_box(naive.greedy(b)));
        });
        group.bench_with_input(BenchmarkId::new("eager", b), &b, |bench, &b| {
            bench.iter(|| black_box(engine.select_eager(&pool, b).covered));
        });
        group.bench_with_input(BenchmarkId::new("celf", b), &b, |bench, &b| {
            bench.iter(|| black_box(engine.select(&pool, b).covered));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
