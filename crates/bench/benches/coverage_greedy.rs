//! Microbench: greedy maximum coverage over a sketch pool (TRIM-B Line 8)
//! across batch sizes — confirms the `O(b·n + Σ|R|)` scaling.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{Model, ResidualState};
use smin_sampling::{greedy_max_coverage, MrrSampler, RootCountDist, SketchPool};
use std::hint::black_box;

fn build_pool(sets: usize) -> SketchPool {
    let g = common::bench_graph();
    let n = g.n();
    let residual = ResidualState::new(n);
    let mut sampler = MrrSampler::new(n);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut pool = SketchPool::new(n);
    let mut out = Vec::new();
    for _ in 0..sets {
        sampler.sample_into(&g, Model::IC, &residual, 100, RootCountDist::Randomized, &mut rng, &mut out);
        pool.add_set(&out);
    }
    pool
}

fn bench_greedy(c: &mut Criterion) {
    let pool = build_pool(4_096);
    let mut group = c.benchmark_group("coverage_greedy");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &b in &[1usize, 2, 4, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, &b| {
            bench.iter(|| black_box(greedy_max_coverage(&pool, b).covered));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
