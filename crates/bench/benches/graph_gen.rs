//! Microbench: synthetic graph generation and CSR assembly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_graph::generators::{assemble, barabasi_albert, chung_lu_directed, erdos_renyi};
use smin_graph::WeightModel;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_gen");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &(n, m) in &[(2_000usize, 8_000usize), (10_000, 40_000)] {
        group.bench_with_input(
            BenchmarkId::new("chung_lu", n),
            &(n, m),
            |bench, &(n, m)| {
                let mut rng = SmallRng::seed_from_u64(8);
                bench.iter(|| black_box(chung_lu_directed(n, m, 2.1, &mut rng).len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("erdos_renyi", n),
            &(n, m),
            |bench, &(n, m)| {
                let mut rng = SmallRng::seed_from_u64(8);
                bench.iter(|| black_box(erdos_renyi(n, m, &mut rng).len()));
            },
        );
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |bench, &n| {
            let mut rng = SmallRng::seed_from_u64(8);
            bench.iter(|| black_box(barabasi_albert(n, 4, &mut rng).len()));
        });
        group.bench_with_input(
            BenchmarkId::new("assemble_wc", n),
            &(n, m),
            |bench, &(n, m)| {
                let mut rng = SmallRng::seed_from_u64(8);
                let pairs = chung_lu_directed(n, m, 2.1, &mut rng);
                bench.iter(|| {
                    let g =
                        assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap();
                    black_box(g.m())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
