//! Microbench: one full TRIM round (Algorithm 2) and one TRIM-B round
//! (Algorithm 3, b ∈ {2, 8}) on the standard bench graph — the unit of work
//! behind Figures 5 and 7 — swept across sketch-generation thread counts.
//! Selections are bit-identical across the sweep (counter-derived per-set
//! RNG streams), so the thread axis isolates pure wall-clock speedup.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_core::trim::{trim, TrimScratch};
use smin_core::trim_b::trim_b;
use smin_core::TrimParams;
use smin_diffusion::{Model, ResidualState};
use std::hint::black_box;

/// Thread counts swept by every group in this bench.
const THREADS: &[usize] = &[1, 2, 4];

fn bench_trim(c: &mut Criterion) {
    let g = common::bench_graph();
    let n = g.n();
    let mut group = c.benchmark_group("trim_round");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for &threads in THREADS {
        let params = TrimParams::with_eps(0.5).with_threads(threads);
        for &eta in &[100usize, 400] {
            group.bench_with_input(
                BenchmarkId::new(format!("trim/t{threads}"), eta),
                &eta,
                |bench, &eta| {
                    let mut scratch = TrimScratch::new(n);
                    let mut rng = SmallRng::seed_from_u64(3);
                    bench.iter(|| {
                        let residual = ResidualState::new(n);
                        let out = trim(
                            &g,
                            Model::IC,
                            &residual,
                            eta,
                            &params,
                            &mut scratch,
                            &mut rng,
                        )
                        .expect("valid");
                        black_box(out.node)
                    });
                },
            );
            for &b in &[2usize, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("trim_b{b}/t{threads}"), eta),
                    &eta,
                    |bench, &eta| {
                        let mut scratch = TrimScratch::new(n);
                        let mut rng = SmallRng::seed_from_u64(3);
                        bench.iter(|| {
                            let residual = ResidualState::new(n);
                            let out = trim_b(
                                &g,
                                Model::IC,
                                &residual,
                                eta,
                                b,
                                &params,
                                &mut scratch,
                                &mut rng,
                            )
                            .expect("valid");
                            black_box(out.seeds.len())
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trim);
criterion_main!(benches);
