//! Microbench: forward propagation — realization sampling, realization
//! spread queries, and fresh-coin simulation (the observe step's cost).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{ForwardSim, Model, Realization};
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let g = common::bench_graph();
    let n = g.n();
    let mut group = c.benchmark_group("forward_sim");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);

    for model in [Model::IC, Model::LT] {
        group.bench_function(format!("sample_realization/{model}"), |bench| {
            let mut rng = SmallRng::seed_from_u64(5);
            bench.iter(|| black_box(Realization::sample(&g, model, &mut rng).live_edge_count()));
        });
    }

    let mut rng = SmallRng::seed_from_u64(6);
    let phi = Realization::sample(&g, Model::IC, &mut rng);
    let seeds: Vec<u32> = (0..16).map(|i| i * 37 % n as u32).collect();
    group.bench_function("realization_spread/16_seeds", |bench| {
        let mut sim = ForwardSim::new(n);
        bench.iter(|| black_box(sim.spread(&g, &phi, &seeds)));
    });

    for model in [Model::IC, Model::LT] {
        group.bench_function(format!("fresh_coin_sim/{model}"), |bench| {
            let mut sim = ForwardSim::new(n);
            let mut rng = SmallRng::seed_from_u64(7);
            bench.iter(|| black_box(sim.simulate(&g, model, &seeds, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
