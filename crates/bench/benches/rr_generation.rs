//! Microbench: classic single-root RR sets (the baselines' sampler) vs the
//! multi-root sampler at matched graph size — quantifies the per-sample cost
//! the mRR estimator pays for its accuracy.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{Model, ResidualState};
use smin_sampling::{MrrSampler, ReverseSampler};
use std::hint::black_box;

fn bench_rr(c: &mut Criterion) {
    let g = common::bench_graph();
    let n = g.n();
    let mut group = c.benchmark_group("rr_generation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);

    for model in [Model::IC, Model::LT] {
        group.bench_function(format!("single_root/{model}"), |bench| {
            let mut sampler = ReverseSampler::new(n);
            let mut residual = ResidualState::new(n);
            let mut rng = SmallRng::seed_from_u64(2);
            let mut out = Vec::new();
            let mut roots = Vec::new();
            bench.iter(|| {
                residual.sample_k_distinct(1, &mut rng, &mut roots);
                sampler.sample_into(
                    &g,
                    model,
                    Some(residual.alive_mask()),
                    &roots,
                    &mut rng,
                    &mut out,
                );
                black_box(out.len())
            });
        });
        group.bench_function(format!("multi_root_eta100/{model}"), |bench| {
            let mut sampler = MrrSampler::new(n);
            let residual = ResidualState::new(n);
            let mut rng = SmallRng::seed_from_u64(2);
            let mut out = Vec::new();
            bench.iter(|| {
                sampler.sample_into(
                    &g,
                    model,
                    &residual,
                    100,
                    smin_sampling::RootCountDist::Randomized,
                    &mut rng,
                    &mut out,
                );
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rr);
criterion_main!(benches);
