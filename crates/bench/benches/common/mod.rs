//! Shared fixtures for the Criterion microbenches: a NetHEPT-scale-down
//! Chung–Lu graph with WC weights (n = 2000, m = 8000 directed).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_graph::generators::{assemble, chung_lu_directed};
use smin_graph::{Graph, WeightModel};

/// Standard bench graph: power-law, WC-weighted, deterministic.
pub fn bench_graph() -> Graph {
    bench_graph_sized(2_000, 8_000)
}

/// Bench graph with explicit size.
pub fn bench_graph_sized(n: usize, m: usize) -> Graph {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    let pairs = chung_lu_directed(n, m, 2.1, &mut rng);
    assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("valid generator output")
}
