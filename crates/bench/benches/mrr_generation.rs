//! Microbench: mRR-set generation cost per sample, across η (root count
//! `E[k] = n/η` shrinks as η grows — Lemma 3.8's EPT trade-off) and models
//! (LT sets are cheaper: one in-edge per node).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{Model, ResidualState};
use smin_sampling::{MrrSampler, RootCountDist};
use std::hint::black_box;

fn bench_mrr(c: &mut Criterion) {
    let g = common::bench_graph();
    let n = g.n();
    let mut group = c.benchmark_group("mrr_generation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for &eta in &[20usize, 100, 400] {
        for model in [Model::IC, Model::LT] {
            group.bench_with_input(
                BenchmarkId::new(format!("{model}"), eta),
                &eta,
                |bench, &eta| {
                    let mut residual = ResidualState::new(n);
                    let mut sampler = MrrSampler::new(n);
                    let mut rng = SmallRng::seed_from_u64(1);
                    let mut out = Vec::new();
                    bench.iter(|| {
                        sampler.sample_into(
                            &g,
                            model,
                            &mut residual,
                            eta,
                            RootCountDist::Randomized,
                            &mut rng,
                            &mut out,
                        );
                        black_box(out.len())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mrr);
criterion_main!(benches);
