//! Shared figure-generation logic: the η-sweep grid behind Figures 4–7 and
//! 9, and the specialized protocols of Table 3, Figure 8, and Figure 10.

use crate::args::Args;
use crate::datasets::{build_dataset, dataset_specs, DatasetSpec};
use crate::harness::{run_algo, sample_realizations, Algo, RunResult};
use crate::table::{format_table, na_or};
use smin_diffusion::Model;

/// Which metric a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Figures 4 / 6: mean number of seeds.
    Seeds,
    /// Figures 5 / 7: mean selection time (seconds).
    TimeSecs,
    /// Figure 9: mean realized spread.
    Spread,
}

impl Metric {
    fn extract(&self, r: &RunResult) -> f64 {
        match self {
            Metric::Seeds => r.seeds_mean,
            Metric::TimeSecs => r.time_mean_s,
            Metric::Spread => r.spread_mean,
        }
    }

    fn decimals(&self) -> usize {
        match self {
            Metric::Seeds => 1,
            Metric::TimeSecs => 3,
            Metric::Spread => 1,
        }
    }
}

/// Runs the full η-sweep for one dataset under `model` and returns the raw
/// results (algorithms × thresholds).
pub fn sweep_dataset(
    spec: &DatasetSpec,
    model: Model,
    args: &Args,
    algos: &[Algo],
) -> Vec<RunResult> {
    let g = build_dataset(spec, args);
    let reps = args.num_realizations();
    let phis = sample_realizations(&g, model, reps, args.seed);
    let mut out = Vec::new();
    for &frac in spec.eta_fracs {
        let eta = ((spec.n as f64) * frac).round().max(1.0) as usize;
        for &algo in algos {
            eprintln!(
                "  {} | {} | η/n = {frac} (η = {eta}) | {} ...",
                spec.name,
                model,
                algo.name()
            );
            out.push(run_algo(
                &g, model, eta, frac, algo, &phis, spec.name, args.eps, args.seed,
            ));
        }
    }
    out
}

/// Renders one dataset's sweep as the paper's figure series: one row per
/// η/n, one column per algorithm.
pub fn render_series(results: &[RunResult], metric: Metric) -> String {
    let mut algos: Vec<String> = Vec::new();
    for r in results {
        if !algos.contains(&r.algo) {
            algos.push(r.algo.clone());
        }
    }
    let mut fracs: Vec<f64> = Vec::new();
    for r in results {
        if !fracs.contains(&r.eta_frac) {
            fracs.push(r.eta_frac);
        }
    }
    let mut rows = Vec::new();
    let mut header = vec!["eta/n".to_string()];
    header.extend(algos.iter().cloned());
    rows.push(header);
    for &frac in &fracs {
        let mut row = vec![format!("{frac}")];
        for algo in &algos {
            let cell = results
                .iter()
                .find(|r| r.eta_frac == frac && &r.algo == algo)
                .map(|r| {
                    let v = metric.extract(r);
                    // Figures mark infeasible non-adaptive points; we keep
                    // the number but annotate with '*'.
                    if r.always_feasible() {
                        format!("{v:.prec$}", prec = metric.decimals())
                    } else {
                        format!("{v:.prec$}*", prec = metric.decimals())
                    }
                })
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        rows.push(row);
    }
    format_table(&rows)
}

/// Full figure: sweep every selected dataset, print the series, return all
/// results for JSON dumping.
pub fn run_figure(
    title: &str,
    model: Model,
    metric: Metric,
    args: &Args,
    algos: &[Algo],
) -> Vec<RunResult> {
    println!(
        "== {title} [{} tier, {} realizations, ε = {}] ==",
        args.tier,
        args.num_realizations(),
        args.eps
    );
    let mut all = Vec::new();
    for spec in dataset_specs(args.tier) {
        if !args.selects(spec.name) {
            continue;
        }
        let results = sweep_dataset(&spec, model, args, algos);
        println!("\n[{} | {model}]", spec.name);
        println!("{}", render_series(&results, metric));
        if metric == Metric::Seeds {
            println!("(* = failed to reach η on ≥ 1 realization — non-adaptive only)");
        }
        all.extend(results);
    }
    all
}

/// Table 3: improvement ratio of ASTI over ATEUC on seeds, with N/A when
/// ATEUC misses the threshold on any realization.
pub fn table3_rows(results: &[RunResult]) -> Vec<Vec<String>> {
    let mut fracs: Vec<f64> = Vec::new();
    for r in results {
        if !fracs.contains(&r.eta_frac) {
            fracs.push(r.eta_frac);
        }
    }
    let mut datasets: Vec<String> = Vec::new();
    for r in results {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
    }
    let mut rows = Vec::new();
    let mut header = vec!["dataset".to_string()];
    header.extend(fracs.iter().map(|f| format!("η/n={f}")));
    rows.push(header);
    for ds in &datasets {
        let mut row = vec![ds.clone()];
        for &frac in &fracs {
            let asti = results
                .iter()
                .find(|r| &r.dataset == ds && r.eta_frac == frac && r.algo == "ASTI");
            let ateuc = results
                .iter()
                .find(|r| &r.dataset == ds && r.eta_frac == frac && r.algo == "ATEUC");
            let cell = match (asti, ateuc) {
                (Some(a), Some(t)) => {
                    let improvement = (t.seeds_mean - a.seeds_mean) / a.seeds_mean.max(1.0) * 100.0;
                    na_or(improvement, t.always_feasible(), 1)
                }
                _ => "-".to_string(),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Tier;

    fn fake(
        algo: &str,
        ds: &str,
        frac: f64,
        seeds: f64,
        feasible: usize,
        runs: usize,
    ) -> RunResult {
        RunResult {
            algo: algo.to_string(),
            dataset: ds.to_string(),
            model: "IC".to_string(),
            eta: 10,
            eta_frac: frac,
            seeds_mean: seeds,
            time_mean_s: 0.5,
            time_p50_s: 0.5,
            time_p95_s: 0.5,
            spread_mean: 12.0,
            feasible,
            runs,
            per_realization: Vec::new(),
        }
    }

    #[test]
    fn render_series_layout() {
        let results = vec![
            fake("ASTI", "d", 0.01, 3.0, 2, 2),
            fake("ATEUC", "d", 0.01, 5.0, 1, 2),
            fake("ASTI", "d", 0.05, 9.0, 2, 2),
            fake("ATEUC", "d", 0.05, 13.0, 2, 2),
        ];
        let s = render_series(&results, Metric::Seeds);
        assert!(s.contains("eta/n"));
        assert!(s.contains("ASTI"));
        assert!(s.contains("5.0*"), "infeasible point must be starred: {s}");
        assert!(s.contains("13.0"));
    }

    #[test]
    fn table3_improvement_and_na() {
        let results = vec![
            fake("ASTI", "d", 0.01, 10.0, 2, 2),
            fake("ATEUC", "d", 0.01, 14.0, 2, 2),
            fake("ASTI", "d", 0.05, 10.0, 2, 2),
            fake("ATEUC", "d", 0.05, 14.0, 1, 2),
        ];
        let rows = table3_rows(&results);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], "40.0"); // (14-10)/10
        assert_eq!(rows[1][2], "N/A");
    }

    #[test]
    fn smoke_sweep_single_point() {
        // End-to-end smoke: one tiny dataset, one eta, two algorithms.
        let args = Args {
            tier: Tier::Smoke,
            realizations: Some(1),
            ..Args::default()
        };
        let mut spec = dataset_specs(Tier::Smoke)[0].clone();
        spec.eta_fracs = &[0.05];
        let results = sweep_dataset(&spec, Model::IC, &args, &[Algo::Asti { b: 1 }]);
        assert_eq!(results.len(), 1);
        assert!(results[0].always_feasible());
    }
}
