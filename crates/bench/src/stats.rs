//! Latency/order statistics shared by the harness reporting and the
//! `svc_load` service load generator.
//!
//! The percentile definition is nearest-rank on a sorted sample
//! (`ceil(q·N)`-th smallest, 1-indexed): every reported value is an actual
//! observation, which is the convention load-testing tools use for tail
//! latencies — no interpolation between two samples that never happened.

/// The nearest-rank `q`-quantile (`0 < q ≤ 1`) of an **ascending-sorted**
/// sample. `None` on an empty sample; a single-sample distribution returns
/// that sample for every `q`.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile requires an ascending-sorted sample"
    );
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Summary statistics of a latency sample: count, extremes, mean, and the
/// p50/p95/p99 tail percentiles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// Summarizes a sample (sorted internally; input order is irrelevant).
/// `None` on an empty sample.
pub fn summarize(samples: &[f64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    Some(LatencySummary {
        count: sorted.len(),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: percentile(&sorted, 0.50).expect("non-empty"),
        p95: percentile(&sorted, 0.95).expect("non-empty"),
        p99: percentile(&sorted, 0.99).expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_percentiles() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = summarize(&[7.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.p99, 7.5);
    }

    #[test]
    fn nearest_rank_on_known_sample() {
        // 1..=100: nearest-rank pX is exactly X.
        let sorted: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), Some(50.0));
        assert_eq!(percentile(&sorted, 0.95), Some(95.0));
        assert_eq!(percentile(&sorted, 0.99), Some(99.0));
        assert_eq!(percentile(&sorted, 1.0), Some(100.0));
    }

    #[test]
    fn two_samples_split_at_the_median() {
        let sorted = [1.0, 2.0];
        assert_eq!(percentile(&sorted, 0.50), Some(1.0));
        assert_eq!(percentile(&sorted, 0.51), Some(2.0));
        assert_eq!(percentile(&sorted, 0.99), Some(2.0));
    }

    #[test]
    fn summarize_is_order_independent() {
        let a = summarize(&[3.0, 1.0, 2.0]).unwrap();
        let b = summarize(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, 2.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert!((a.mean - 2.0).abs() < 1e-12);
    }
}
