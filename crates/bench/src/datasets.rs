//! Dataset registry: the four evaluation datasets of Table 2 and their
//! synthetic stand-ins.
//!
//! | dataset | n | m | type |
//! |---|---|---|---|
//! | NetHEPT | 15.2K | 31.4K | undirected |
//! | Epinions | 132K | 841K | directed |
//! | Youtube | 1.13M | 2.99M | undirected |
//! | LiveJournal | 4.85M | 69.0M | directed |
//!
//! Stand-ins are directed Chung–Lu power-law graphs matched on `n`, `m`
//! (after mirroring undirected edges) and tail exponent, with the paper's
//! weighted-cascade probabilities. When a `--snap` directory is supplied and
//! contains `<name>.smg` (preferred, instant binary load) or `<name>.txt`,
//! the real edge list is loaded instead.

use crate::args::{Args, Tier};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_graph::generators::{assemble, chung_lu_directed};
use smin_graph::{io, Graph, WeightModel};

/// Which generator family backs the stand-in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Directed Chung–Lu with the given power-law exponent.
    ChungLu { gamma_milli: u32 },
}

/// One evaluation dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Stand-in name, e.g. `nethept-like`.
    pub name: &'static str,
    /// SNAP base name for `--snap` loading, e.g. `nethept`.
    pub snap_name: &'static str,
    /// Nodes in the stand-in at this tier.
    pub n: usize,
    /// *Directed* edges in the stand-in at this tier (undirected datasets
    /// are already mirrored in this count).
    pub m: usize,
    /// Whether the original dataset is directed (Table 2's "Type").
    pub directed: bool,
    /// Generator family.
    pub kind: GeneratorKind,
    /// Threshold fractions `η/n` swept in the figures (§6.1: small-η setting
    /// for LiveJournal, large-η for the rest).
    pub eta_fracs: &'static [f64],
}

/// Large-η sweep (NetHEPT, Epinions, Youtube).
pub const LARGE_ETA: &[f64] = &[0.01, 0.05, 0.10, 0.15, 0.20];
/// Small-η sweep (LiveJournal).
pub const SMALL_ETA: &[f64] = &[0.01, 0.02, 0.03, 0.04, 0.05];

/// The dataset list for a tier. Paper tier matches Table 2 exactly; quick
/// and smoke tiers shrink `n`/`m` proportionally (the sweeps are in `η/n`,
/// so every figure's shape is preserved).
pub fn dataset_specs(tier: Tier) -> Vec<DatasetSpec> {
    let gamma = GeneratorKind::ChungLu { gamma_milli: 2100 };
    match tier {
        Tier::Paper => vec![
            DatasetSpec {
                name: "nethept-like",
                snap_name: "nethept",
                n: 15_200,
                m: 62_800,
                directed: false,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "epinions-like",
                snap_name: "epinions",
                n: 132_000,
                m: 841_000,
                directed: true,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "youtube-like",
                snap_name: "youtube",
                n: 1_130_000,
                m: 5_980_000,
                directed: false,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "livejournal-like",
                snap_name: "livejournal",
                n: 4_850_000,
                m: 69_000_000,
                directed: true,
                kind: gamma,
                eta_fracs: SMALL_ETA,
            },
        ],
        Tier::Quick => vec![
            DatasetSpec {
                name: "nethept-like",
                snap_name: "nethept",
                n: 15_200,
                m: 62_800,
                directed: false,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "epinions-like",
                snap_name: "epinions",
                n: 26_400,
                m: 168_200,
                directed: true,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "youtube-like",
                snap_name: "youtube",
                n: 45_200,
                m: 239_200,
                directed: false,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "livejournal-like",
                snap_name: "livejournal",
                n: 48_500,
                m: 690_000,
                directed: true,
                kind: gamma,
                eta_fracs: SMALL_ETA,
            },
        ],
        Tier::Smoke => vec![
            DatasetSpec {
                name: "nethept-like",
                snap_name: "nethept",
                n: 1_520,
                m: 6_280,
                directed: false,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "epinions-like",
                snap_name: "epinions",
                n: 2_640,
                m: 16_820,
                directed: true,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "youtube-like",
                snap_name: "youtube",
                n: 4_520,
                m: 23_920,
                directed: false,
                kind: gamma,
                eta_fracs: LARGE_ETA,
            },
            DatasetSpec {
                name: "livejournal-like",
                snap_name: "livejournal",
                n: 4_850,
                m: 69_000,
                directed: true,
                kind: gamma,
                eta_fracs: SMALL_ETA,
            },
        ],
    }
}

/// Materializes a dataset: from `--snap` when available (a packed
/// `<name>.smg` snapshot loads in milliseconds and is preferred over the
/// `<name>.txt` edge list), otherwise the Chung–Lu stand-in. WC weights
/// either way (§6.1). Deterministic in `args.seed`.
pub fn build_dataset(spec: &DatasetSpec, args: &Args) -> Graph {
    if let Some(dir) = &args.snap_dir {
        // Preference order: `asm pack`ed binary snapshot first, raw SNAP
        // text second. Both carry structural (p = 1) edges; WC weights are
        // applied here so the two paths produce identical graphs.
        let smg = format!("{dir}/{}.smg", spec.snap_name);
        let txt = format!("{dir}/{}.txt", spec.snap_name);
        let structural = if std::path::Path::new(&smg).exists() {
            Some(
                smin_graph::store::read_smg_path(&smg)
                    .unwrap_or_else(|e| panic!("failed to read {smg}: {e}")),
            )
        } else if std::path::Path::new(&txt).exists() {
            let el = io::read_edge_list_path(&txt)
                .unwrap_or_else(|e| panic!("failed to read {txt}: {e}"));
            Some(
                el.into_graph(spec.directed, 1.0)
                    .unwrap_or_else(|e| panic!("failed to build graph from {txt}: {e}")),
            )
        } else {
            None
        };
        if let Some(structural) = structural {
            let mut rng = SmallRng::seed_from_u64(args.seed);
            return smin_graph::weights::apply_weights(
                &structural,
                WeightModel::WeightedCascade,
                &mut rng,
            );
        }
        eprintln!(
            "note: neither {smg} nor {txt} found; using synthetic stand-in for {}",
            spec.name
        );
    }

    let mut rng = SmallRng::seed_from_u64(args.seed ^ fxhash(spec.name));
    let GeneratorKind::ChungLu { gamma_milli } = spec.kind;
    let gamma = gamma_milli as f64 / 1000.0;
    // The generator produces directed pairs; undirected datasets are modeled
    // by mirroring half as many pairs.
    if spec.directed {
        let pairs = chung_lu_directed(spec.n, spec.m, gamma, &mut rng);
        assemble(spec.n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
            .expect("generator produces valid edges")
    } else {
        let pairs = chung_lu_directed(spec.n, spec.m / 2, gamma, &mut rng);
        assemble(
            spec.n,
            &pairs,
            false,
            WeightModel::WeightedCascade,
            &mut rng,
        )
        .expect("generator produces valid edges")
    }
}

/// Tiny deterministic string hash for per-dataset seed derivation.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tier_matches_table2() {
        let specs = dataset_specs(Tier::Paper);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].n, 15_200);
        assert_eq!(specs[1].m, 841_000);
        assert!(!specs[2].directed);
        assert_eq!(specs[3].eta_fracs, SMALL_ETA);
    }

    #[test]
    fn smoke_builds_and_is_wc_weighted() {
        let args = Args {
            tier: Tier::Smoke,
            ..Args::default()
        };
        let specs = dataset_specs(Tier::Smoke);
        let g = build_dataset(&specs[0], &args);
        assert_eq!(g.n(), 1_520);
        // Mirroring can collapse a handful of mutual pairs, so the directed
        // edge count is within a fraction of a percent of the target.
        assert!(
            (g.m() as f64 - 6_280.0).abs() / 6_280.0 < 0.01,
            "m = {}",
            g.m()
        );
        // WC weights: every edge into v carries 1/indeg(v)
        for v in 0..50u32 {
            for (_, p, _) in g.in_edges(v) {
                assert!((p - 1.0 / g.in_degree(v) as f64).abs() < 1e-12);
            }
        }
        assert!(g.is_valid_lt(), "WC weights must form a valid LT instance");
    }

    #[test]
    fn undirected_standins_are_mirrored() {
        let args = Args {
            tier: Tier::Smoke,
            ..Args::default()
        };
        let spec = &dataset_specs(Tier::Smoke)[0]; // nethept-like, undirected
        let g = build_dataset(spec, &args);
        let mut mirrored = 0usize;
        let mut total = 0usize;
        for (u, v, _) in g.edges().take(500) {
            total += 1;
            if g.has_edge(v, u) {
                mirrored += 1;
            }
        }
        assert_eq!(mirrored, total, "every undirected edge appears both ways");
    }

    #[test]
    fn snap_dir_prefers_packed_smg_snapshot() {
        let dir = std::env::temp_dir().join(format!("smin_bench_smg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp snap dir");
        let spec = &dataset_specs(Tier::Smoke)[0]; // nethept-like
        let args = Args {
            tier: Tier::Smoke,
            snap_dir: Some(dir.to_string_lossy().into_owned()),
            ..Args::default()
        };
        // Pack a small structural (p = 1) graph as <snap_name>.smg.
        let mut rng = SmallRng::seed_from_u64(7);
        let pairs = chung_lu_directed(300, 1200, 2.1, &mut rng);
        let structural = assemble(300, &pairs, true, WeightModel::Trivalency, &mut rng)
            .expect("generator produces valid edges");
        let smg = dir.join(format!("{}.smg", spec.snap_name));
        smin_graph::store::write_smg_path(&structural, &smg).expect("write snapshot");

        let g = build_dataset(spec, &args);
        // The snapshot (n = 300) won over both the missing .txt and the
        // synthetic stand-in (n = 1520), and WC weights were applied on top.
        assert_eq!(g.n(), 300);
        assert_eq!(g.m(), structural.m());
        for v in 0..g.n() as u32 {
            for (_, p, _) in g.in_edges(v) {
                assert!((p - 1.0 / g.in_degree(v) as f64).abs() < 1e-12);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_given_seed() {
        let args = Args {
            tier: Tier::Smoke,
            ..Args::default()
        };
        let spec = &dataset_specs(Tier::Smoke)[1];
        let g1 = build_dataset(spec, &args);
        let g2 = build_dataset(spec, &args);
        assert_eq!(g1.m(), g2.m());
        let e1: Vec<_> = g1.edges().take(100).collect();
        let e2: Vec<_> = g2.edges().take(100).collect();
        assert_eq!(e1, e2);
    }
}
