//! Figure 6: number of seed nodes vs threshold η/n under the LT model.

use smin_bench::figures::{run_figure, Metric};
use smin_bench::{write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let results = run_figure(
        "Figure 6: #seeds vs threshold (LT)",
        Model::LT,
        Metric::Seeds,
        &args,
        &Algo::evaluation_set(),
    );
    let _ = write_json(&args.out_dir, "fig6_seeds_lt", &results);
}
