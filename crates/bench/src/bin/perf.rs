//! `perf` — the coverage/selection kernel harness behind the recorded perf
//! trajectory.
//!
//! Builds mRR sketch pools at pinned seeds (the `coverage_greedy` bench
//! fixture: Chung–Lu 2k/8k WC graph, `MrrSampler` at η = 100) for pool
//! sizes 1k/4k/16k, times the coverage kernels on each, and emits two
//! hand-formatted trajectory artifacts in the `BENCH_graph_load.json`
//! style:
//!
//! * `BENCH_coverage.json` — the per-pick kernels: the argmax candidate
//!   scan and the b = 8 greedy strategies (eager compacted scan vs CELF),
//!   plus `SketchPool::heap_bytes()` per pool size. Also folds in the two
//!   Criterion-only fixtures so their medians ride the recorded
//!   trajectory: `trim_round` (Algorithms 2/3 across thread counts, the
//!   `trim_round` bench fixture) and `rounding` (the §3.3 root-count
//!   rounding ablation, the `ablation_rounding` bench fixture);
//! * `BENCH_select.json` — deep selections (b = 64) where `commit_pick`
//!   and the CELF reheap dominate, plus the CELF heap-operation counts
//!   that pin the single-winner fast path.
//!
//! ```text
//! perf [--smoke] [--iters K] [--out-dir DIR]
//! ```
//!
//! `--smoke` drops to 5 iterations per measurement (CI's quick mode); the
//! pool sizes stay identical so `asm bench-check` can compare a smoke run
//! against the committed full-run baselines. The bin records — the
//! regression *gate* is `asm bench-check` downstream.

use smin_bench::stats;
use std::time::Instant;

/// Pool sizes swept by both artifacts. Fixed: `asm bench-check` compares
/// runs structurally, so every run must sweep the same sizes.
const POOL_SIZES: [usize; 3] = [1_024, 4_096, 16_384];

struct PerfArgs {
    iters: usize,
    smoke: bool,
    out_dir: String,
}

const USAGE: &str = "\
perf — coverage/selection kernel benchmark harness

USAGE:
  perf [--smoke] [--iters K] [--out-dir DIR]

Defaults: --iters 9 (5 with --smoke) --out-dir .
Writes BENCH_coverage.json and BENCH_select.json into --out-dir.";

fn parse_args() -> Result<PerfArgs, String> {
    let mut out = PerfArgs {
        iters: 0, // resolved after --smoke is known
        smoke: false,
        out_dir: ".".to_string(),
    };
    let mut iters: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => out.smoke = true,
            "--iters" => {
                iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("bad value for --iters: {e}"))?,
                )
            }
            "--out-dir" => out.out_dir = value("--out-dir")?.clone(),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    out.iters = iters.unwrap_or(if out.smoke { 5 } else { 9 });
    if out.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    Ok(out)
}

/// One timed metric: ascending-sorted per-iteration microseconds.
struct Dist {
    sorted_us: Vec<f64>,
}

impl Dist {
    fn median(&self) -> f64 {
        stats::percentile(&self.sorted_us, 0.50).expect("non-empty sample")
    }

    /// `{ "median": m, "min": a, "max": b }` — the trajectory leaf format
    /// `asm bench-check` consumes.
    fn json(&self) -> String {
        format!(
            "{{ \"median\": {:.3}, \"min\": {:.3}, \"max\": {:.3} }}",
            self.median(),
            self.sorted_us[0],
            self.sorted_us[self.sorted_us.len() - 1],
        )
    }
}

/// Times `iters` measurements of `reps` back-to-back runs of `f`,
/// reporting per-run microseconds. `reps > 1` keeps sub-microsecond
/// kernels (argmax) above timer resolution.
fn time_us(iters: usize, reps: usize, mut f: impl FnMut()) -> Dist {
    let mut sorted_us: Vec<f64> = (0..iters)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..reps {
                f();
            }
            started.elapsed().as_secs_f64() * 1e6 / reps as f64
        })
        .collect();
    sorted_us.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    Dist { sorted_us }
}

/// The shared bench graph (the Criterion `common::bench_graph` fixture):
/// a pinned 2k/8k Chung–Lu WC graph.
fn bench_graph() -> smin_graph::Graph {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::generators::{assemble, chung_lu_directed};
    use smin_graph::WeightModel;

    let n = 2_000;
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    let pairs = chung_lu_directed(n, 8_000, 2.1, &mut rng);
    assemble(n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .expect("valid generator output")
}

/// The `coverage_greedy` bench fixture, reproduced without Criterion: the
/// pinned bench graph and an mRR pool of exactly `sets` sketches.
fn build_pool(sets: usize) -> smin_sampling::SketchPool {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::{Model, ResidualState};
    use smin_sampling::{MrrSampler, RootCountDist, SketchPool};

    let g = bench_graph();
    let n = g.n();
    let residual = ResidualState::new(n);
    let mut sampler = MrrSampler::new(n);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut pool = SketchPool::new(n);
    let mut out = Vec::new();
    for _ in 0..sets {
        sampler.sample_into(
            &g,
            Model::IC,
            &residual,
            100,
            RootCountDist::Randomized,
            &mut rng,
            &mut out,
        );
        pool.add_set(&out);
    }
    pool
}

fn run(args: &PerfArgs) -> Result<(), String> {
    use smin_sampling::CoverageEngine;

    let mut coverage_rows = Vec::new();
    let mut select_rows = Vec::new();

    for &sets in &POOL_SIZES {
        eprintln!("building pool: {sets} sets ...");
        let pool = build_pool(sets);
        let mut engine = CoverageEngine::new();

        // Per-pick kernels: the argmax candidate scan (averaged over 64
        // back-to-back runs — single runs sit at timer resolution) and the
        // b = 8 strategies.
        let argmax = time_us(args.iters, 64, || {
            std::hint::black_box(engine.argmax(&pool));
        });
        let eager_b8 = time_us(args.iters, 1, || {
            std::hint::black_box(engine.select_eager(&pool, 8).covered);
        });
        let celf_b8 = time_us(args.iters, 1, || {
            std::hint::black_box(engine.select(&pool, 8).covered);
        });

        // Deep selections: commit_pick and the CELF reheap dominate.
        let eager_b64 = time_us(args.iters, 1, || {
            std::hint::black_box(engine.select_eager(&pool, 64).covered);
        });
        let celf_b64 = time_us(args.iters, 1, || {
            std::hint::black_box(engine.select(&pool, 64).covered);
        });

        println!(
            "pool {sets:>6}: argmax {:9.1} us | b8 eager {:9.1} us, celf {:9.1} us | b64 eager {:9.1} us, celf {:9.1} us | heap {} B",
            argmax.median(),
            eager_b8.median(),
            celf_b8.median(),
            eager_b64.median(),
            celf_b64.median(),
            pool.heap_bytes(),
        );

        coverage_rows.push(format!(
            "    {{\n      \
               \"sets\": {sets},\n      \
               \"heap_bytes\": {heap},\n      \
               \"argmax_us\": {argmax},\n      \
               \"eager_b8_us\": {eager},\n      \
               \"celf_b8_us\": {celf}\n    }}",
            heap = pool.heap_bytes(),
            argmax = argmax.json(),
            eager = eager_b8.json(),
            celf = celf_b8.json(),
        ));
        select_rows.push(format!(
            "    {{\n      \
               \"sets\": {sets},\n      \
               \"eager_b64_us\": {eager},\n      \
               \"celf_b64_us\": {celf}\n    }}",
            eager = eager_b64.json(),
            celf = celf_b64.json(),
        ));
    }

    let trim_rows = time_trim_rounds(args.iters);
    let rounding_rows = time_rounding(args.iters);

    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| format!("create --out-dir {}: {e}", args.out_dir))?;
    let write = |name: &str, bench: &str, rows: &[String], extra: &str| -> Result<(), String> {
        let path = std::path::Path::new(&args.out_dir).join(name);
        let json = format!(
            "{{\n  \
               \"bench\": \"{bench}\",\n  \
               \"iters\": {iters},\n  \
               \"smoke\": {smoke},\n  \
               \"pools\": [\n{rows}\n  ]{extra}\n}}\n",
            iters = args.iters,
            smoke = args.smoke,
            rows = rows.join(",\n"),
        );
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        Ok(())
    };
    let coverage_extra = format!(
        ",\n  \"trim_round\": [\n{}\n  ],\n  \"rounding\": [\n{}\n  ]",
        trim_rows.join(",\n"),
        rounding_rows.join(",\n"),
    );
    write(
        "BENCH_coverage.json",
        "coverage",
        &coverage_rows,
        &coverage_extra,
    )?;
    write("BENCH_select.json", "select", &select_rows, "")?;
    Ok(())
}

/// The `trim_round` Criterion fixture without Criterion: one full TRIM
/// round (Algorithm 2) and one TRIM-B round (Algorithm 3, b ∈ {2, 8})
/// on the bench graph, across sketch-generation thread counts.
fn time_trim_rounds(iters: usize) -> Vec<String> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_core::trim::{trim, TrimScratch};
    use smin_core::trim_b::trim_b;
    use smin_core::TrimParams;
    use smin_diffusion::{Model, ResidualState};

    let g = bench_graph();
    let n = g.n();
    let mut rows = Vec::new();
    for &threads in &[1usize, 4] {
        let params = TrimParams::with_eps(0.5).with_threads(threads);
        for &eta in &[100usize, 400] {
            eprintln!("timing trim rounds: threads={threads} eta={eta} ...");
            let mut scratch = TrimScratch::new(n);
            let mut rng = SmallRng::seed_from_u64(3);
            let trim_d = time_us(iters, 1, || {
                let residual = ResidualState::new(n);
                let out = trim(
                    &g,
                    Model::IC,
                    &residual,
                    eta,
                    &params,
                    &mut scratch,
                    &mut rng,
                )
                .expect("valid");
                std::hint::black_box(out.node);
            });
            let mut b_dists = Vec::new();
            for &b in &[2usize, 8] {
                let mut scratch = TrimScratch::new(n);
                let mut rng = SmallRng::seed_from_u64(3);
                b_dists.push(time_us(iters, 1, || {
                    let residual = ResidualState::new(n);
                    let out = trim_b(
                        &g,
                        Model::IC,
                        &residual,
                        eta,
                        b,
                        &params,
                        &mut scratch,
                        &mut rng,
                    )
                    .expect("valid");
                    std::hint::black_box(out.seeds.len());
                }));
            }
            println!(
                "trim t{threads} eta {eta:>3}: trim {:9.1} us | b2 {:9.1} us | b8 {:9.1} us",
                trim_d.median(),
                b_dists[0].median(),
                b_dists[1].median(),
            );
            rows.push(format!(
                "    {{\n      \
                   \"threads\": {threads},\n      \
                   \"eta\": {eta},\n      \
                   \"trim_us\": {trim},\n      \
                   \"trim_b2_us\": {b2},\n      \
                   \"trim_b8_us\": {b8}\n    }}",
                trim = trim_d.json(),
                b2 = b_dists[0].json(),
                b8 = b_dists[1].json(),
            ));
        }
    }
    rows
}

/// The `ablation_rounding` Criterion fixture without Criterion: mRR
/// sampling time under the three §3.3 root-count rounding variants.
fn time_rounding(iters: usize) -> Vec<String> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::{Model, ResidualState};
    use smin_sampling::{MrrSampler, RootCountDist};

    let g = bench_graph();
    let n = g.n();
    let mut rows = Vec::new();
    for (name, dist) in [
        ("randomized", RootCountDist::Randomized),
        ("fixed_floor", RootCountDist::FixedFloor),
        ("fixed_ceil", RootCountDist::FixedCeil),
    ] {
        for &eta in &[30usize, 300] {
            let residual = ResidualState::new(n);
            let mut sampler = MrrSampler::new(n);
            let mut rng = SmallRng::seed_from_u64(9);
            let mut out = Vec::new();
            let d = time_us(iters, 1, || {
                sampler.sample_into(&g, Model::IC, &residual, eta, dist, &mut rng, &mut out);
                std::hint::black_box(out.len());
            });
            println!("rounding {name:>11} eta {eta:>3}: {:9.1} us", d.median());
            rows.push(format!(
                "    {{ \"dist\": \"{name}\", \"eta\": {eta}, \"sample_us\": {} }}",
                d.json(),
            ));
        }
    }
    rows
}

fn main() {
    let result = parse_args().and_then(|args| run(&args));
    if let Err(e) = result {
        eprintln!("perf error: {e}");
        std::process::exit(1);
    }
}
