//! Figure 9 (Appendix C): realized spread vs threshold under the IC model.
//!
//! Expected shape: all algorithms comparable; ASTI-8 overshoots at small η
//! (a whole batch fires even when a fraction suffices); ATEUC slightly
//! larger spread at large η (it over-selects seeds).

use smin_bench::figures::{run_figure, Metric};
use smin_bench::{write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let results = run_figure(
        "Figure 9: spread vs threshold (IC)",
        Model::IC,
        Metric::Spread,
        &args,
        &Algo::evaluation_set(),
    );
    let _ = write_json(&args.out_dir, "fig9_spread_vs_threshold", &results);
}
