//! Figure 10 (Appendix D): marginal (truncated) spread of each selected seed
//! against its selection index, per realization, under the IC model at the
//! largest threshold of each dataset.
//!
//! Expected shape: decreasing in the seed index (adaptive submodularity)
//! with realization-level noise.

use smin_bench::harness::{run_algo, sample_realizations};
use smin_bench::{build_dataset, dataset_specs, format_table, write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "== Figure 10: marginal spread vs seed index (IC) [{} tier] ==",
        args.tier
    );
    let mut json = Vec::new();
    for spec in dataset_specs(args.tier) {
        if !args.selects(spec.name) {
            continue;
        }
        let frac = *spec.eta_fracs.last().expect("non-empty sweep");
        let eta = ((spec.n as f64) * frac).round() as usize;
        eprintln!("building {} ...", spec.name);
        let g = build_dataset(&spec, &args);
        let phis = sample_realizations(&g, Model::IC, args.num_realizations(), args.seed);
        let res = run_algo(
            &g,
            Model::IC,
            eta,
            frac,
            Algo::Asti { b: 1 },
            &phis,
            spec.name,
            args.eps,
            args.seed,
        );

        println!("\n[{} | η/n = {frac} (η = {eta})]", spec.name);
        let longest = res
            .per_realization
            .iter()
            .map(|r| r.marginal_spreads.len())
            .max()
            .unwrap_or(0);
        let mut rows = vec![{
            let mut h = vec!["seed idx".to_string()];
            h.extend((1..=res.runs).map(|r| format!("real.{r}")));
            h.push("mean".to_string());
            h
        }];
        // print a subsampled set of indices to keep the table readable
        let step = (longest / 20).max(1);
        for idx in (0..longest).step_by(step) {
            let mut row = vec![(idx + 1).to_string()];
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for r in &res.per_realization {
                match r.marginal_spreads.get(idx) {
                    Some(&m) => {
                        row.push(m.to_string());
                        sum += m as f64;
                        cnt += 1;
                    }
                    None => row.push("-".to_string()),
                }
            }
            row.push(if cnt > 0 {
                format!("{:.1}", sum / cnt as f64)
            } else {
                "-".into()
            });
            rows.push(row);
        }
        println!("{}", format_table(&rows));

        // diminishing-returns check: mean of first third vs last third
        let mut all_first: Vec<usize> = Vec::new();
        let mut all_last: Vec<usize> = Vec::new();
        for r in &res.per_realization {
            let len = r.marginal_spreads.len();
            if len >= 3 {
                all_first.extend(&r.marginal_spreads[..len / 3]);
                all_last.extend(&r.marginal_spreads[len - len / 3..]);
            }
        }
        if !all_first.is_empty() && !all_last.is_empty() {
            let mf: f64 = all_first.iter().map(|&x| x as f64).sum::<f64>() / all_first.len() as f64;
            let ml: f64 = all_last.iter().map(|&x| x as f64).sum::<f64>() / all_last.len() as f64;
            println!(
                "mean marginal spread: first third = {mf:.1}, last third = {ml:.1} (diminishing ✓)"
            );
        }
        json.push(res);
    }
    let _ = write_json(&args.out_dir, "fig10_marginal_spread", &json);
}
