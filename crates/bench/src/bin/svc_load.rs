//! `svc_load` — keep-alive load generator for the `asm serve` service.
//!
//! Modes:
//!
//! * **Smoke** (`--smoke`): one `/healthz`, one graph registration, one
//!   `/v1/select`; exits non-zero on any non-2xx status or malformed JSON.
//!   CI runs this against a freshly started `asm serve` to pin the wire
//!   contract end to end.
//! * **Load** (default): registers a BA graph once, then `--clients`
//!   concurrent keep-alive connections fire `--requests` selections total,
//!   reporting p50/p95/p99 latency (shared nearest-rank helper in
//!   `smin_bench::stats`), requests/sec, cache behavior, and the cold→warm
//!   ratio between the first and second request — the registry+recycled-pool
//!   payoff the service exists for.
//!
//! Two add-on phases extend a load run (and its `--out` artifact):
//!
//! * `--connections N` opens N keep-alive connections and holds **all of
//!   them open at once** while pinging `/healthz` on each — the epoll
//!   event loop's whole point (the threaded transport pins one worker per
//!   connection and would wedge long before N = 512 on 4 threads). Any
//!   connect or ping failure exits non-zero.
//! * `--batch K` measures the `/v1/select-batch` amortization: the same
//!   uncached selections fired one-per-request and then K-per-batch, on a
//!   small fixed graph where per-request overhead (framing, dispatch,
//!   round trip, session checkout) dominates per-item compute. Reports
//!   per-item medians and their ratio; `--batch-min-speedup F` turns the
//!   ratio into a hard gate.
//!
//! Every load run ends with a `GET /metrics` scrape; the request and
//! transport-error (408/429/504) counters land in the `--out` artifact's
//! `metrics` section as informational leaves.
//!
//! ```text
//! svc_load --addr 127.0.0.1:7878 --smoke
//! svc_load --addr 127.0.0.1:7878 --requests 100 --n 10000 --eta 500
//! svc_load --addr 127.0.0.1:7878 --requests 64 --clients 4 --distinct-seeds
//! ```
//!
//! By default every request carries the same body, so requests after the
//! first exercise the memoized path (cold compute vs. warm HITs);
//! `--distinct-seeds` gives each request its own world seed so every
//! request computes on the warm session shelf instead.

use smin_bench::stats;
use smin_service::{Client, ClientResponse};
use std::time::Instant;

struct LoadArgs {
    addr: String,
    smoke: bool,
    requests: usize,
    clients: usize,
    n: usize,
    attach: usize,
    eta: usize,
    eps: f64,
    seed: u64,
    distinct_seeds: bool,
    no_cache: bool,
    connections: usize,
    batch: usize,
    batch_min_speedup: f64,
    out: Option<String>,
}

const USAGE: &str = "\
svc_load — load generator for `asm serve`

USAGE:
  svc_load --addr HOST:PORT [--smoke]
           [--requests N] [--clients C] [--n NODES] [--attach K]
           [--eta N] [--eps F] [--seed N] [--distinct-seeds] [--no-cache]
           [--connections N] [--batch K] [--batch-min-speedup F]
           [--out FILE]

--connections N   hold N keep-alive connections open simultaneously and
                  ping /healthz on every one (exits non-zero on any error)
--batch K         compare uncached per-item latency of /v1/select vs
                  /v1/select-batch with K items per batch
--batch-min-speedup F  fail unless batch speedup >= F (e.g. 2.0)

--out (load mode) also writes the run as a JSON trajectory artifact
(latency percentiles, req/s, cold->warm split, plus `connections` and
`batch` sections when those phases ran, and a `metrics` section with
request/error counters scraped from GET /metrics) in the BENCH_*.json
style consumed by `asm bench-check`.";

fn parse_args() -> Result<LoadArgs, String> {
    let mut out = LoadArgs {
        addr: String::new(),
        smoke: false,
        requests: 100,
        clients: 1,
        n: 10_000,
        attach: 4,
        eta: 0, // default derived from n below
        eps: 0.5,
        seed: 42,
        distinct_seeds: false,
        no_cache: false,
        connections: 0,
        batch: 0,
        batch_min_speedup: 0.0,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => out.smoke = true,
            "--distinct-seeds" => out.distinct_seeds = true,
            "--no-cache" => out.no_cache = true,
            "--addr" => out.addr = value("--addr")?.clone(),
            "--requests" => out.requests = parse(value("--requests")?, "--requests")?,
            "--clients" => out.clients = parse(value("--clients")?, "--clients")?,
            "--n" => out.n = parse(value("--n")?, "--n")?,
            "--attach" => out.attach = parse(value("--attach")?, "--attach")?,
            "--eta" => out.eta = parse(value("--eta")?, "--eta")?,
            "--eps" => out.eps = parse(value("--eps")?, "--eps")?,
            "--seed" => out.seed = parse(value("--seed")?, "--seed")?,
            "--connections" => out.connections = parse(value("--connections")?, "--connections")?,
            "--batch" => out.batch = parse(value("--batch")?, "--batch")?,
            "--batch-min-speedup" => {
                out.batch_min_speedup = parse(value("--batch-min-speedup")?, "--batch-min-speedup")?
            }
            "--out" => out.out = Some(value("--out")?.clone()),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("missing required --addr\n{USAGE}"));
    }
    if out.requests == 0 || out.clients == 0 || out.n == 0 {
        return Err("--requests, --clients, and --n must be at least 1".into());
    }
    if out.eta == 0 {
        out.eta = (out.n / 20).max(1);
    }
    if out.batch_min_speedup > 0.0 && out.batch == 0 {
        return Err("--batch-min-speedup needs --batch K".into());
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse::<T>()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}

/// Asserts a 2xx status and a parseable JSON body; returns the body.
fn expect_json(
    what: &str,
    resp: Result<ClientResponse, String>,
) -> Result<serde_json::Value, String> {
    let resp = resp.map_err(|e| format!("{what}: {e}"))?;
    if !(200..300).contains(&resp.status) {
        return Err(format!("{what}: HTTP {} — {}", resp.status, resp.text()));
    }
    resp.json().map_err(|e| format!("{what}: {e}"))
}

fn smoke(args: &LoadArgs) -> Result<(), String> {
    let mut c = Client::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    let health = expect_json("GET /healthz", c.get("/healthz"))?;
    let health_text = serde_json::to_string(&health).expect("re-serialize");
    if !health_text.contains("\"status\":\"ok\"") {
        return Err(format!("healthz not ok: {health_text}"));
    }

    let body = r#"{"id":"smoke","generate":{"kind":"er","n":200,"m":600,"seed":1}}"#;
    let resp = c
        .post("/v1/graphs", body)
        .map_err(|e| format!("POST /v1/graphs: {e}"))?;
    // 409 = a previous smoke already registered it on this server; fine.
    if resp.status != 201 && resp.status != 409 {
        return Err(format!(
            "POST /v1/graphs: HTTP {} — {}",
            resp.status,
            resp.text()
        ));
    }

    let select = expect_json(
        "POST /v1/select",
        c.post("/v1/select", r#"{"graph":"smoke","eta":20,"seed":1}"#),
    )?;
    let select_text = serde_json::to_string(&select).expect("re-serialize");
    for needle in ["\"seeds\":[", "\"reached\":true", "\"num_rounds\":"] {
        if !select_text.contains(needle) {
            return Err(format!("select response missing {needle}: {select_text}"));
        }
    }
    println!(
        "SMOKE OK: healthz + register + select against {}",
        args.addr
    );
    Ok(())
}

struct ClientOutcome {
    latencies_us: Vec<f64>,
    cache_hits: usize,
    failures: Vec<String>,
}

fn run_client(
    args: &LoadArgs,
    graph_id: &str,
    request_indices: std::ops::Range<usize>,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_us: Vec::with_capacity(request_indices.len()),
        cache_hits: 0,
        failures: Vec::new(),
    };
    let mut c = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            outcome.failures.push(format!("connect: {e}"));
            return outcome;
        }
    };
    for i in request_indices {
        let seed = if args.distinct_seeds {
            args.seed + i as u64
        } else {
            args.seed
        };
        let body = format!(
            r#"{{"graph":"{graph_id}","eta":{},"eps":{},"seed":{seed},"cache":{}}}"#,
            args.eta, args.eps, !args.no_cache,
        );
        let started = Instant::now();
        match c.post("/v1/select", &body) {
            Ok(resp) if resp.status == 200 => {
                outcome
                    .latencies_us
                    .push(started.elapsed().as_secs_f64() * 1e6);
                if resp.header("X-Cache") == Some("HIT") {
                    outcome.cache_hits += 1;
                }
                if resp.json().is_err() {
                    outcome
                        .failures
                        .push(format!("request {i}: malformed JSON"));
                }
            }
            Ok(resp) => outcome.failures.push(format!(
                "request {i}: HTTP {} — {}",
                resp.status,
                resp.text()
            )),
            Err(e) => {
                outcome.failures.push(format!("request {i}: {e}"));
                return outcome; // connection state unknown — stop this client
            }
        }
    }
    outcome
}

struct ConnectionsStats {
    count: usize,
    healthz_us: Vec<f64>,
}

/// Opens `--connections` keep-alive connections, keeps every one of them
/// open simultaneously, then pings `/healthz` on each. Fails fast on any
/// connect or request error: the acceptance bar is "N concurrent idle
/// connections, zero errors", not a best-effort count.
fn connections_phase(args: &LoadArgs) -> Result<ConnectionsStats, String> {
    println!(
        "connections: opening {} simultaneous keep-alive connections...",
        args.connections
    );
    let mut clients = Vec::with_capacity(args.connections);
    for i in 0..args.connections {
        let c = Client::connect(&args.addr)
            .map_err(|e| format!("connections: connect #{i} (of {}): {e}", args.connections))?;
        clients.push(c);
    }
    // All sockets are open and idle now; every one must still be usable.
    let mut healthz_us = Vec::with_capacity(clients.len());
    for (i, c) in clients.iter_mut().enumerate() {
        let started = Instant::now();
        let resp = c
            .get("/healthz")
            .map_err(|e| format!("connections: healthz on #{i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "connections: healthz on #{i}: HTTP {} — {}",
                resp.status,
                resp.text()
            ));
        }
        healthz_us.push(started.elapsed().as_secs_f64() * 1e6);
    }
    let summary = stats::summarize(&healthz_us).ok_or("connections: no pings completed")?;
    println!(
        "connections: {} open at once, {} healthz ok, p50 = {:.1} us, max = {:.1} us",
        clients.len(),
        healthz_us.len(),
        summary.p50,
        summary.max,
    );
    Ok(ConnectionsStats {
        count: clients.len(),
        healthz_us,
    })
}

struct BatchStats {
    k: usize,
    items: usize,
    single_item_us: Vec<f64>,
    batch_item_us: Vec<f64>,
    speedup: f64,
}

/// Number of `/v1/select-batch` requests the batch phase fires (the single
/// phase fires `BATCH_ROUNDS * k` individual selects over the same seeds).
const BATCH_ROUNDS: usize = 8;

/// Measures the select-batch amortization on a small fixed graph where
/// per-request overhead dominates per-item compute. Both passes run the
/// identical uncached selections (same seeds, same graph), so the only
/// difference is how many HTTP requests, dispatches, and session
/// checkouts carry them.
fn batch_phase(args: &LoadArgs) -> Result<BatchStats, String> {
    let k = args.batch;
    let items = BATCH_ROUNDS * k;
    let mut c = Client::connect(&args.addr).map_err(|e| format!("batch: connect: {e}"))?;

    // A deliberately tiny workload: the phase measures how well the batch
    // endpoint amortizes *per-request* costs (framing, dispatch handoffs,
    // round trips, session checkout), so per-item compute is pinned far
    // below them via a small graph and a hard theta cap.
    let graph_id = "svc-load-batch";
    let register =
        format!(r#"{{"id":"{graph_id}","generate":{{"kind":"er","n":32,"m":64,"seed":11}}}}"#);
    let resp = c
        .post("/v1/graphs", &register)
        .map_err(|e| format!("batch: POST /v1/graphs: {e}"))?;
    if resp.status != 201 && resp.status != 409 {
        return Err(format!(
            "batch: POST /v1/graphs: HTTP {} — {}",
            resp.status,
            resp.text()
        ));
    }

    // threads:1 keeps sketch generation inline — per-item compute lands
    // around tens of microseconds, so the per-request machinery being
    // amortized (not the selection kernel) is what the ratio measures.
    let item_fields = |i: usize| {
        format!(
            r#""eta":4,"theta_cap":8,"threads":1,"seed":{},"cache":false"#,
            args.seed + i as u64
        )
    };
    let expect_200 = |what: &str, resp: Result<ClientResponse, String>| -> Result<(), String> {
        let resp = resp.map_err(|e| format!("{what}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{what}: HTTP {} — {}", resp.status, resp.text()));
        }
        Ok(())
    };

    // Warm the session shelf untimed so neither pass pays first-touch
    // pool-construction costs.
    for w in 0..2 {
        let body = format!(r#"{{"graph":"{graph_id}",{}}}"#, item_fields(1_000_000 + w));
        expect_200("batch: warmup select", c.post("/v1/select", &body))?;
    }

    println!("batch: {items} uncached selects one-per-request...");
    let mut single_item_us = Vec::with_capacity(items);
    for i in 0..items {
        let body = format!(r#"{{"graph":"{graph_id}",{}}}"#, item_fields(i));
        let started = Instant::now();
        expect_200("batch: single select", c.post("/v1/select", &body))?;
        single_item_us.push(started.elapsed().as_secs_f64() * 1e6);
    }

    println!("batch: the same {items} selects as {BATCH_ROUNDS} batches of {k}...");
    let mut batch_item_us = Vec::with_capacity(BATCH_ROUNDS);
    for b in 0..BATCH_ROUNDS {
        let body_items: Vec<String> = (b * k..(b + 1) * k)
            .map(|i| format!("{{{}}}", item_fields(i)))
            .collect();
        let body = format!(
            r#"{{"graph":"{graph_id}","items":[{}]}}"#,
            body_items.join(",")
        );
        let started = Instant::now();
        expect_200("batch: select-batch", c.post("/v1/select-batch", &body))?;
        batch_item_us.push(started.elapsed().as_secs_f64() * 1e6 / k as f64);
    }

    let single = stats::summarize(&single_item_us).ok_or("batch: no single selects completed")?;
    let batched = stats::summarize(&batch_item_us).ok_or("batch: no batches completed")?;
    let speedup = single.p50 / batched.p50.max(1e-9);
    println!(
        "batch: per-item p50 {:.1} us single vs {:.1} us batched (k={k}) = {speedup:.2}x",
        single.p50, batched.p50,
    );
    if args.batch_min_speedup > 0.0 && speedup < args.batch_min_speedup {
        return Err(format!(
            "batch: speedup {speedup:.2}x below required {:.2}x",
            args.batch_min_speedup
        ));
    }
    Ok(BatchStats {
        k,
        items,
        single_item_us,
        batch_item_us,
        speedup,
    })
}

/// Counters scraped from `GET /metrics` once every phase has finished.
/// Counters are server-lifetime, not per-run: against a warm server they can
/// exceed this run's request count (CI starts a fresh server and asserts
/// equality there). Recorded in the `--out` artifact as informational
/// (non-`median`) leaves so `asm bench-check` never gates on them.
struct ScrapedMetrics {
    requests_select: u64,
    requests_select_batch: u64,
    errors_408: u64,
    errors_429: u64,
    errors_504: u64,
}

/// Extracts one sample from a Prometheus text exposition. `series` is the
/// full sample name including its label set, e.g.
/// `smin_http_errors_total{status="408"}`; the exposition emits every series
/// unconditionally (zeros included), so a missing line is a contract break.
fn counter_sample(body: &str, series: &str) -> Result<u64, String> {
    let prefix = format!("{series} ");
    body.lines()
        .find_map(|l| l.strip_prefix(prefix.as_str()))
        .ok_or_else(|| format!("metrics: series {series} missing from exposition"))?
        .trim()
        .parse::<u64>()
        .map_err(|e| format!("metrics: bad sample for {series}: {e}"))
}

fn metrics_phase(args: &LoadArgs) -> Result<ScrapedMetrics, String> {
    let mut c = Client::connect(&args.addr).map_err(|e| format!("metrics: connect: {e}"))?;
    let resp = c
        .get("/metrics")
        .map_err(|e| format!("GET /metrics: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "GET /metrics: HTTP {} — {}",
            resp.status,
            resp.text()
        ));
    }
    let body = resp.text();
    let scraped = ScrapedMetrics {
        requests_select: counter_sample(&body, "smin_http_requests_total{route=\"select\"}")?,
        requests_select_batch: counter_sample(
            &body,
            "smin_http_requests_total{route=\"select_batch\"}",
        )?,
        errors_408: counter_sample(&body, "smin_http_errors_total{status=\"408\"}")?,
        errors_429: counter_sample(&body, "smin_http_errors_total{status=\"429\"}")?,
        errors_504: counter_sample(&body, "smin_http_errors_total{status=\"504\"}")?,
    };
    println!(
        "metrics: server-lifetime selects = {} single + {} batch; errors 408/429/504 = {}/{}/{}",
        scraped.requests_select,
        scraped.requests_select_batch,
        scraped.errors_408,
        scraped.errors_429,
        scraped.errors_504,
    );
    Ok(scraped)
}

fn load(args: &LoadArgs) -> Result<(), String> {
    let mut c = Client::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    expect_json("GET /healthz", c.get("/healthz"))?;

    let graph_id = format!("svc-load-ba-{}", args.n);
    let register = format!(
        r#"{{"id":"{graph_id}","generate":{{"kind":"ba","n":{},"attach":{},"seed":7}}}}"#,
        args.n, args.attach,
    );
    let resp = c
        .post("/v1/graphs", &register)
        .map_err(|e| format!("POST /v1/graphs: {e}"))?;
    match resp.status {
        201 => println!(
            "registered {graph_id}: {}",
            resp.text().trim_start_matches('{').trim_end_matches('}')
        ),
        409 => println!("reusing already-registered {graph_id} (warm server)"),
        s => return Err(format!("POST /v1/graphs: HTTP {s} — {}", resp.text())),
    }
    drop(c);

    println!(
        "firing {} requests over {} keep-alive client(s): eta={}, eps={}, {}, cache {}",
        args.requests,
        args.clients,
        args.eta,
        args.eps,
        if args.distinct_seeds {
            "distinct seeds"
        } else {
            "one repeated body"
        },
        if args.no_cache { "bypassed" } else { "enabled" },
    );

    let started = Instant::now();
    let per_client = args.requests.div_ceil(args.clients);
    let graph_id = graph_id.as_str();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|k| {
                let lo = (k * per_client).min(args.requests);
                let hi = ((k + 1) * per_client).min(args.requests);
                scope.spawn(move || run_client(args, graph_id, lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut failures: Vec<String> = Vec::new();
    let mut all_us: Vec<f64> = Vec::new();
    let mut cache_hits = 0usize;
    for o in &outcomes {
        all_us.extend_from_slice(&o.latencies_us);
        cache_hits += o.cache_hits;
        failures.extend(o.failures.iter().cloned());
    }
    let completed = all_us.len();

    // Cold→warm: the first client's first two requests, in arrival order.
    let first_two = outcomes
        .first()
        .map(|o| o.latencies_us.as_slice())
        .unwrap_or(&[]);
    if let [first, second, ..] = first_two {
        println!(
            "cold -> warm: request 1 = {:.1} ms, request 2 = {:.1} ms ({:.1}x faster)",
            first / 1e3,
            second / 1e3,
            first / second.max(1.0),
        );
    }

    let summary = stats::summarize(&all_us)
        .ok_or_else(|| format!("no request completed; first failure: {failures:?}"))?;
    println!(
        "latency: p50 = {:.1} ms, p95 = {:.1} ms, p99 = {:.1} ms (min {:.1}, max {:.1}, mean {:.1})",
        summary.p50 / 1e3,
        summary.p95 / 1e3,
        summary.p99 / 1e3,
        summary.min / 1e3,
        summary.max / 1e3,
        summary.mean / 1e3,
    );
    println!(
        "throughput: {completed}/{} ok in {wall_s:.2}s = {:.1} req/s ({cache_hits} cache hits)",
        args.requests,
        completed as f64 / wall_s.max(1e-9),
    );

    if !failures.is_empty() {
        return Err(format!(
            "{} request(s) failed; first: {}",
            failures.len(),
            failures[0]
        ));
    }

    let conn_stats = if args.connections > 0 {
        Some(connections_phase(args)?)
    } else {
        None
    };
    let batch_stats = if args.batch > 0 {
        Some(batch_phase(args)?)
    } else {
        None
    };
    // Always last, so the scraped counters cover every phase above.
    let scraped = metrics_phase(args)?;

    if let Some(path) = &args.out {
        // Hand-formatted like the other BENCH_*.json artifacts. Only the
        // "median" leaf gates under `asm bench-check`; the tail percentiles,
        // throughput, and cold->warm split are informational (tails and
        // req/s are too machine-sensitive to fail CI on).
        let cold_warm = match first_two {
            [first, second, ..] => format!(
                "{{ \"cold_us\": {first:.1}, \"warm_us\": {second:.1}, \"speedup\": {:.2} }}",
                first / second.max(1.0)
            ),
            _ => "null".to_string(),
        };
        let mut extra = String::new();
        if let Some(conn) = &conn_stats {
            let s = stats::summarize(&conn.healthz_us).ok_or("connections: empty stats")?;
            extra.push_str(&format!(
                ",\n  \"connections\": {{ \"count\": {}, \"healthz_us\": {{ \"median\": {:.1}, \"max\": {:.1} }} }}",
                conn.count, s.p50, s.max,
            ));
        }
        if let Some(b) = &batch_stats {
            let single = stats::summarize(&b.single_item_us).ok_or("batch: empty stats")?;
            let batched = stats::summarize(&b.batch_item_us).ok_or("batch: empty stats")?;
            extra.push_str(&format!(
                ",\n  \"batch\": {{ \"k\": {}, \"items\": {}, \"single_per_item_us\": {{ \"median\": {:.1} }}, \"batch_per_item_us\": {{ \"median\": {:.1} }}, \"speedup\": {:.2} }}",
                b.k, b.items, single.p50, batched.p50, b.speedup,
            ));
        }
        // Server-lifetime counters from the final /metrics scrape. All
        // informational: no "median" leaves, so bench-check ignores them.
        extra.push_str(&format!(
            ",\n  \"metrics\": {{ \"requests_select\": {}, \"requests_select_batch\": {}, \"errors\": {{ \"408\": {}, \"429\": {}, \"504\": {} }} }}",
            scraped.requests_select,
            scraped.requests_select_batch,
            scraped.errors_408,
            scraped.errors_429,
            scraped.errors_504,
        ));
        let json = format!(
            "{{\n  \
               \"bench\": \"svc_load\",\n  \
               \"requests\": {requests},\n  \
               \"clients\": {clients},\n  \
               \"n\": {n},\n  \
               \"eta\": {eta},\n  \
               \"distinct_seeds\": {distinct},\n  \
               \"cache\": {cache},\n  \
               \"completed\": {completed},\n  \
               \"cache_hits\": {cache_hits},\n  \
               \"req_per_s\": {rps:.1},\n  \
               \"latency_us\": {{ \"median\": {p50:.1}, \"p95\": {p95:.1}, \"p99\": {p99:.1}, \"min\": {min:.1}, \"max\": {max:.1}, \"mean\": {mean:.1} }},\n  \
               \"cold_to_warm\": {cold_warm}{extra}\n}}\n",
            requests = args.requests,
            clients = args.clients,
            n = args.n,
            eta = args.eta,
            distinct = args.distinct_seeds,
            cache = !args.no_cache,
            rps = completed as f64 / wall_s.max(1e-9),
            p50 = summary.p50,
            p95 = summary.p95,
            p99 = summary.p99,
            min = summary.min,
            max = summary.max,
            mean = summary.mean,
        );
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn main() {
    let result = parse_args().and_then(|args| {
        if args.smoke {
            smoke(&args)
        } else {
            load(&args)
        }
    });
    if let Err(e) = result {
        eprintln!("svc_load error: {e}");
        std::process::exit(1);
    }
}
