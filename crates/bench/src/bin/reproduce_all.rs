//! Runs every table and figure in sequence, writing all JSON artifacts to
//! the output directory. `--smoke` finishes in ~a minute; `--quick` in tens
//! of minutes; `--paper` reproduces the full §6 grid (hours).

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table2_datasets",
        "fig3_degree_dist",
        "fig4_seeds_ic",
        "fig5_time_ic",
        "fig6_seeds_lt",
        "fig7_time_lt",
        "table3_improvement",
        "fig8_spread_dist",
        "fig9_spread_vs_threshold",
        "fig10_marginal_spread",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e} (build with --bins first)"));
        if !status.success() {
            eprintln!("{bin} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments completed");
}
