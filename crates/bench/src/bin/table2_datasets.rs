//! Table 2: dataset details — n, m, type, average degree, LWCC size.
//!
//! On the synthetic stand-ins this prints the *generated* statistics next to
//! the paper's published numbers so the match quality is visible.

use smin_bench::{build_dataset, dataset_specs, format_table, write_json, Args};
use smin_graph::components::weakly_connected_components;
use smin_graph::degree::average_out_degree;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    println!("== Table 2: dataset details [{} tier] ==", args.tier);
    let mut rows = vec![vec![
        "dataset".to_string(),
        "n".to_string(),
        "m (directed)".to_string(),
        "type".to_string(),
        "avg out-deg".to_string(),
        "LWCC size".to_string(),
        "LWCC frac".to_string(),
    ]];
    let mut json = Vec::new();
    for spec in dataset_specs(args.tier) {
        if !args.selects(spec.name) {
            continue;
        }
        eprintln!("building {} ...", spec.name);
        let g = build_dataset(&spec, &args);
        let wcc = weakly_connected_components(&g);
        let avg = average_out_degree(&g);
        rows.push(vec![
            spec.name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            if spec.directed {
                "directed"
            } else {
                "undirected"
            }
            .to_string(),
            format!("{avg:.2}"),
            wcc.largest.to_string(),
            format!("{:.3}", wcc.largest as f64 / g.n() as f64),
        ]);
        json.push(serde_json::json!({
            "dataset": spec.name,
            "n": g.n(),
            "m": g.m(),
            "directed": spec.directed,
            "avg_out_degree": avg,
            "lwcc": wcc.largest,
            "wcc_count": wcc.count,
        }));
    }
    println!("{}", format_table(&rows));
    println!("paper (Table 2): NetHEPT 15.2K/31.4K undirected avg 4.18 LWCC 6.80K;");
    println!("Epinions 132K/841K directed avg 13.4 LWCC 119K; Youtube 1.13M/2.99M");
    println!(
        "undirected avg 5.29 LWCC 1.13M; LiveJournal 4.85M/69.0M directed avg 28.5 LWCC 4.84M."
    );
    let _ = write_json(&args.out_dir, "table2_datasets", &json);
}
