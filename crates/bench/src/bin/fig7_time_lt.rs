//! Figure 7: running time vs threshold η/n under the LT model.
//!
//! Expected shape (§6.3): same conclusions as Figure 5 but uniformly faster
//! (LT mRR sets are cheaper to generate — at most one in-edge per node).

use smin_bench::figures::{run_figure, Metric};
use smin_bench::{write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let results = run_figure(
        "Figure 7: running time vs threshold (LT)",
        Model::LT,
        Metric::TimeSecs,
        &args,
        &Algo::evaluation_set(),
    );
    let _ = write_json(&args.out_dir, "fig7_time_lt", &results);
}
