//! Table 3: improvement ratio of ASTI over ATEUC on the number of seed
//! nodes, under both IC and LT, with "N/A" wherever ATEUC fails to reach the
//! threshold on some realization.

use smin_bench::figures::{sweep_dataset, table3_rows};
use smin_bench::{dataset_specs, format_table, write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "== Table 3: improvement ratio of ASTI over ATEUC [{} tier, {} realizations] ==",
        args.tier,
        args.num_realizations()
    );
    let algos = [Algo::Asti { b: 1 }, Algo::Ateuc];
    let mut json = Vec::new();
    for model in [Model::IC, Model::LT] {
        let mut results = Vec::new();
        for spec in dataset_specs(args.tier) {
            if !args.selects(spec.name) {
                continue;
            }
            results.extend(sweep_dataset(&spec, model, &args, &algos));
        }
        println!("\n[{model} model] (N/A: ATEUC missed η on ≥ 1 realization)");
        println!("{}", format_table(&table3_rows(&results)));
        json.extend(results);
    }
    let _ = write_json(&args.out_dir, "table3_improvement", &json);
}
