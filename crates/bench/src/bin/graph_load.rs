//! `graph_load` — pins the text-parse vs. binary-snapshot load gap.
//!
//! Generates a Chung–Lu graph (default 200K nodes / 1M directed edges, WC
//! weights), materializes it both as a `u v p` text edge list and as a
//! packed `.smg` CSR snapshot, then times `--iters` full loads of each and
//! reports nearest-rank medians. The loaded graphs are asserted bit-equal so
//! the two paths are doing the same work.
//!
//! ```text
//! graph_load [--n N] [--m M] [--seed S] [--iters K] [--out FILE] [--keep]
//! ```
//!
//! Results land in `BENCH_graph_load.json` (hand-formatted, fixed field
//! order) so CI can archive the perf trajectory run over run. The bin never
//! fails on the speedup itself — it records; the ISSUE-level ≥20× gate is a
//! human/CI decision on the artifact.

use smin_bench::stats;
use std::io::Write as _;
use std::time::Instant;

struct LoadArgs {
    n: usize,
    m: usize,
    seed: u64,
    iters: usize,
    out: String,
    keep: bool,
}

const USAGE: &str = "\
graph_load — text-parse vs binary-snapshot load benchmark

USAGE:
  graph_load [--n NODES] [--m EDGES] [--seed N] [--iters K]
             [--out FILE] [--keep]

Defaults: --n 200000 --m 1000000 --seed 42 --iters 5
          --out BENCH_graph_load.json
--keep leaves the generated graph.txt / graph.smg pair on disk.";

fn parse_args() -> Result<LoadArgs, String> {
    let mut out = LoadArgs {
        n: 200_000,
        m: 1_000_000,
        seed: 42,
        iters: 5,
        out: "BENCH_graph_load.json".to_string(),
        keep: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--keep" => out.keep = true,
            "--n" => out.n = parse(value("--n")?, "--n")?,
            "--m" => out.m = parse(value("--m")?, "--m")?,
            "--seed" => out.seed = parse(value("--seed")?, "--seed")?,
            "--iters" => out.iters = parse(value("--iters")?, "--iters")?,
            "--out" => out.out = value("--out")?.clone(),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if out.n < 2 || out.m == 0 || out.iters == 0 {
        return Err("--n must be >= 2, --m and --iters at least 1".into());
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse::<T>()
        .map_err(|e| format!("bad value for {flag}: {e}"))
}

/// Times `iters` runs of `load`, returning ascending-sorted milliseconds.
/// Every run's edge count is checked against `reference` (node counts can
/// legitimately differ: the text format drops isolated nodes on relabeling,
/// while the snapshot preserves them).
fn time_loads(
    iters: usize,
    reference: &smin_graph::Graph,
    mut load: impl FnMut() -> smin_graph::Graph,
) -> Vec<f64> {
    let mut ms: Vec<f64> = (0..iters)
        .map(|_| {
            let started = Instant::now();
            let g = load();
            let elapsed = started.elapsed().as_secs_f64() * 1e3;
            assert_eq!(g.m(), reference.m(), "loaded graph must match");
            assert!(g.n() <= reference.n(), "loaded graph must match");
            elapsed
        })
        .collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    ms
}

fn run(args: &LoadArgs) -> Result<(), String> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::generators::{assemble, chung_lu_directed};
    use smin_graph::{io, store, WeightModel};

    eprintln!(
        "generating chung-lu graph: n = {}, m = {}, seed = {}",
        args.n, args.m, args.seed
    );
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let pairs = chung_lu_directed(args.n, args.m, 2.1, &mut rng);
    let g = assemble(args.n, &pairs, true, WeightModel::WeightedCascade, &mut rng)
        .map_err(|e| format!("assemble: {e}"))?;

    let dir = std::env::temp_dir().join(format!("smin_graph_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let txt = dir.join("graph.txt");
    let smg = dir.join("graph.smg");
    {
        let f = std::fs::File::create(&txt).map_err(|e| format!("create graph.txt: {e}"))?;
        let mut w = std::io::BufWriter::new(f);
        io::write_edge_list(&g, &mut w).map_err(|e| format!("write graph.txt: {e}"))?;
        w.flush().map_err(|e| format!("flush graph.txt: {e}"))?;
    }
    store::write_smg_path(&g, &smg).map_err(|e| format!("write graph.smg: {e}"))?;
    let txt_bytes = std::fs::metadata(&txt).map_err(|e| e.to_string())?.len();
    let smg_bytes = std::fs::metadata(&smg).map_err(|e| e.to_string())?.len();
    eprintln!(
        "materialized: graph.txt = {txt_bytes} bytes, graph.smg = {smg_bytes} bytes; timing {} loads of each",
        args.iters
    );

    let text_ms = time_loads(args.iters, &g, || {
        io::read_edge_list_path(&txt)
            .expect("read text edge list")
            .into_graph(true, 1.0)
            .expect("build graph from text")
    });
    let binary_ms = time_loads(args.iters, &g, || {
        store::read_smg_path(&smg).expect("read snapshot")
    });

    let median = |sorted: &[f64]| stats::percentile(sorted, 0.50).expect("non-empty sample");
    let text_median = median(&text_ms);
    let binary_median = median(&binary_ms);
    let speedup = text_median / binary_median.max(1e-9);

    // Hand-formatted so the field order is deterministic run over run; only
    // the measured values change between machines.
    let json = format!(
        "{{\n  \
           \"bench\": \"graph_load\",\n  \
           \"n\": {n},\n  \
           \"m\": {m},\n  \
           \"seed\": {seed},\n  \
           \"iters\": {iters},\n  \
           \"text_bytes\": {txt_bytes},\n  \
           \"smg_bytes\": {smg_bytes},\n  \
           \"text_parse_ms\": {{ \"median\": {tm:.3}, \"min\": {tmin:.3}, \"max\": {tmax:.3} }},\n  \
           \"binary_load_ms\": {{ \"median\": {bm:.3}, \"min\": {bmin:.3}, \"max\": {bmax:.3} }},\n  \
           \"speedup_median\": {speedup:.1}\n}}\n",
        n = args.n,
        m = args.m,
        seed = args.seed,
        iters = args.iters,
        tm = text_median,
        tmin = text_ms[0],
        tmax = text_ms[text_ms.len() - 1],
        bm = binary_median,
        bmin = binary_ms[0],
        bmax = binary_ms[binary_ms.len() - 1],
    );
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;

    println!(
        "text parse:  median {text_median:.1} ms over {} iters",
        args.iters
    );
    println!(
        "binary load: median {binary_median:.1} ms over {} iters",
        args.iters
    );
    println!("speedup: {speedup:.1}x  (recorded in {})", args.out);

    if args.keep {
        eprintln!("kept {} and {}", txt.display(), smg.display());
    } else {
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}

fn main() {
    let result = parse_args().and_then(|args| run(&args));
    if let Err(e) = result {
        eprintln!("graph_load error: {e}");
        std::process::exit(1);
    }
}
