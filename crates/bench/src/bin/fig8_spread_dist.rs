//! Figure 8: spread achieved on each of the sampled realizations by ASTI vs
//! ATEUC on NetHEPT (η/n = 0.01 → η = 153 at paper scale), under IC and LT.
//!
//! Expected shape: ASTI lands on-or-just-above the threshold on *every*
//! realization; ATEUC under-shoots some and over-shoots others.

use smin_bench::figures::sweep_dataset;
use smin_bench::{dataset_specs, format_table, write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    println!(
        "== Figure 8: per-realization spread, ASTI vs ATEUC (NetHEPT-like) [{} tier] ==",
        args.tier
    );
    let mut spec = dataset_specs(args.tier)
        .into_iter()
        .find(|s| s.name == "nethept-like")
        .expect("nethept-like always present");
    spec.eta_fracs = &[0.01];
    let eta = ((spec.n as f64) * 0.01).round() as usize;
    let algos = [Algo::Asti { b: 1 }, Algo::Ateuc];

    let mut json = Vec::new();
    for model in [Model::IC, Model::LT] {
        let results = sweep_dataset(&spec, model, &args, &algos);
        println!("\n[{model} model] threshold η = {eta}");
        let mut rows = vec![vec![
            "realization".to_string(),
            "ASTI spread".to_string(),
            "ATEUC spread".to_string(),
            "ATEUC status".to_string(),
        ]];
        let asti = &results[0];
        let ateuc = &results[1];
        for i in 0..asti.per_realization.len() {
            let a = asti.per_realization[i].spread;
            let t = ateuc.per_realization[i].spread;
            let status = if t < eta {
                "MISS"
            } else if t as f64 > 1.5 * eta as f64 {
                "OVER (>150%)"
            } else {
                "ok"
            };
            rows.push(vec![
                (i + 1).to_string(),
                a.to_string(),
                t.to_string(),
                status.to_string(),
            ]);
        }
        println!("{}", format_table(&rows));
        let misses = ateuc
            .per_realization
            .iter()
            .filter(|r| r.spread < eta)
            .count();
        println!(
            "ATEUC missed η on {misses}/{} realizations; ASTI on {}/{} (always 0 by construction).",
            ateuc.runs,
            asti.runs - asti.feasible,
            asti.runs
        );
        json.extend(results);
    }
    let _ = write_json(&args.out_dir, "fig8_spread_dist", &json);
}
