//! Figure 4: number of seed nodes vs threshold η/n under the IC model,
//! for ASTI, ASTI-2/4/8, AdaptIM, and ATEUC.

use smin_bench::figures::{run_figure, Metric};
use smin_bench::{write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let results = run_figure(
        "Figure 4: #seeds vs threshold (IC)",
        Model::IC,
        Metric::Seeds,
        &args,
        &Algo::evaluation_set(),
    );
    let _ = write_json(&args.out_dir, "fig4_seeds_ic", &results);
}
