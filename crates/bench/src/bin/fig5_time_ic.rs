//! Figure 5: running time vs threshold η/n under the IC model.
//!
//! Expected shape (§6.2): ASTI fastest among adaptive algorithms; ASTI-2/4/8
//! cut time to roughly 30%/10%/5% of ASTI; AdaptIM 10–20× slower than ASTI;
//! ATEUC's time *decreases* with η.

use smin_bench::figures::{run_figure, Metric};
use smin_bench::{write_json, Algo, Args};
use smin_diffusion::Model;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let results = run_figure(
        "Figure 5: running time vs threshold (IC)",
        Model::IC,
        Metric::TimeSecs,
        &args,
        &Algo::evaluation_set(),
    );
    let _ = write_json(&args.out_dir, "fig5_time_ic", &results);
}
