//! Figure 3: degree distribution (log-log `degree → fraction of nodes`).
//!
//! Prints log-binned series per dataset plus the fitted log-log slope —
//! the stand-ins must show the same power-law decay as the SNAP originals.

use smin_bench::{build_dataset, dataset_specs, format_table, write_json, Args};
use smin_graph::degree::{degree_distribution, degree_fractions, log_log_slope, DegreeKind};

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    println!("== Figure 3: degree distributions [{} tier] ==", args.tier);
    let mut json = Vec::new();
    for spec in dataset_specs(args.tier) {
        if !args.selects(spec.name) {
            continue;
        }
        eprintln!("building {} ...", spec.name);
        let g = build_dataset(&spec, &args);
        let fracs = degree_fractions(&g, DegreeKind::Total);
        let dist = degree_distribution(&g, DegreeKind::Total);
        let slope = log_log_slope(&dist);

        // log-2 binning for a compact printout
        let mut rows = vec![vec![
            "degree bin".to_string(),
            "fraction of nodes".to_string(),
        ]];
        let mut bin_start = 1usize;
        while bin_start <= fracs.last().map(|&(d, _)| d).unwrap_or(0) {
            let bin_end = bin_start * 2;
            let f: f64 = fracs
                .iter()
                .filter(|&&(d, _)| d >= bin_start && d < bin_end)
                .map(|&(_, f)| f)
                .sum();
            if f > 0.0 {
                rows.push(vec![format!("[{bin_start}, {bin_end})"), format!("{f:.6}")]);
            }
            bin_start = bin_end;
        }
        println!(
            "\n[{}] log-log slope ≈ {:.2} (power-law decay)",
            spec.name,
            slope.unwrap_or(f64::NAN)
        );
        println!("{}", format_table(&rows));
        json.push(serde_json::json!({
            "dataset": spec.name,
            "slope": slope,
            "series": fracs.iter().map(|&(d, f)| serde_json::json!([d, f])).collect::<Vec<_>>(),
        }));
    }
    let _ = write_json(&args.out_dir, "fig3_degree_dist", &json);
}
