//! # smin-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§6). Each `src/bin/*` binary regenerates one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `table2_datasets` | Table 2 (dataset statistics) |
//! | `fig3_degree_dist` | Figure 3 (degree distributions) |
//! | `fig4_seeds_ic` | Figure 4 (#seeds vs η, IC) |
//! | `fig5_time_ic` | Figure 5 (running time vs η, IC) |
//! | `fig6_seeds_lt` | Figure 6 (#seeds vs η, LT) |
//! | `fig7_time_lt` | Figure 7 (running time vs η, LT) |
//! | `table3_improvement` | Table 3 (ASTI vs ATEUC improvement / N/A) |
//! | `fig8_spread_dist` | Figure 8 (per-realization spread) |
//! | `fig9_spread_vs_threshold` | Figure 9 (spread vs η, IC) |
//! | `fig10_marginal_spread` | Figure 10 (marginal spread vs seed index) |
//! | `reproduce_all` | everything above, writing JSON to `results/` |
//!
//! The SNAP datasets are substituted by structurally matched Chung–Lu
//! stand-ins (see `DESIGN.md` §3); pass `--snap <dir>` to run on real SNAP
//! edge lists instead. Three size tiers: `--smoke` (seconds), `--quick`
//! (default, minutes, scaled-down graphs), `--paper` (full Table 2 sizes and
//! 20 realizations).

#![forbid(unsafe_code)]

pub mod args;
pub mod datasets;
pub mod figures;
pub mod harness;
pub mod stats;
pub mod table;

pub use args::{Args, Tier};
pub use datasets::{build_dataset, dataset_specs, DatasetSpec, GeneratorKind};
pub use harness::{run_algo, Algo, RealizationResult, RunResult};
pub use stats::{percentile, summarize, LatencySummary};
pub use table::{format_table, write_json};
