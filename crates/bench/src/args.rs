//! Minimal hand-rolled CLI parsing (no external dependency).

use std::fmt;

/// Experiment size tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Tiny graphs, 2 realizations — smoke-testing the harness itself.
    Smoke,
    /// Scaled-down graphs, 3 realizations — the default; finishes in minutes
    /// on a laptop core while preserving every qualitative shape.
    Quick,
    /// Paper-size graphs and 20 realizations (§6.1 protocol).
    Paper,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Smoke => write!(f, "smoke"),
            Tier::Quick => write!(f, "quick"),
            Tier::Paper => write!(f, "paper"),
        }
    }
}

/// Parsed harness arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Size tier.
    pub tier: Tier,
    /// Restrict to datasets whose name contains one of these (empty = all).
    pub datasets: Vec<String>,
    /// Base RNG seed (default 42; the paper protocol derives realization
    /// seeds from it).
    pub seed: u64,
    /// Override the number of realizations.
    pub realizations: Option<usize>,
    /// Approximation parameter ε (default 0.5, §6.1).
    pub eps: f64,
    /// Optional directory of real SNAP edge lists (named `<dataset>.txt`).
    pub snap_dir: Option<String>,
    /// Output directory for JSON results (default `results`).
    pub out_dir: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            tier: Tier::Quick,
            datasets: Vec::new(),
            seed: 42,
            realizations: None,
            eps: 0.5,
            snap_dir: None,
            out_dir: "results".to_string(),
        }
    }
}

impl Args {
    /// Parses from an iterator of argument strings (without the program
    /// name). Returns an error message on unknown or malformed flags.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => out.tier = Tier::Smoke,
                "--quick" => out.tier = Tier::Quick,
                "--paper" => out.tier = Tier::Paper,
                "--dataset" | "-d" => {
                    let v = it.next().ok_or("--dataset needs a value")?;
                    out.datasets.push(v.to_lowercase());
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--realizations" | "-r" => {
                    out.realizations = Some(
                        it.next()
                            .ok_or("--realizations needs a value")?
                            .parse()
                            .map_err(|e| format!("bad --realizations: {e}"))?,
                    );
                }
                "--eps" => {
                    out.eps = it
                        .next()
                        .ok_or("--eps needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --eps: {e}"))?;
                }
                "--snap" => out.snap_dir = Some(it.next().ok_or("--snap needs a directory")?),
                "--out" => out.out_dir = it.next().ok_or("--out needs a directory")?,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
            }
        }
        Ok(out)
    }

    /// Parses `std::env::args()`.
    pub fn from_env() -> Result<Args, String> {
        Args::parse(std::env::args().skip(1))
    }

    /// Number of realizations for this tier (§6: the paper uses 20).
    pub fn num_realizations(&self) -> usize {
        self.realizations.unwrap_or(match self.tier {
            Tier::Smoke => 2,
            Tier::Quick => 3,
            Tier::Paper => 20,
        })
    }

    /// `true` if `name` is selected by the `--dataset` filters.
    pub fn selects(&self, name: &str) -> bool {
        self.datasets.is_empty()
            || self
                .datasets
                .iter()
                .any(|d| name.to_lowercase().contains(d))
    }
}

/// Usage string shared by all binaries.
pub const USAGE: &str = "usage: <bin> [--smoke|--quick|--paper] [--dataset NAME]... \
[--seed N] [--realizations N] [--eps F] [--snap DIR] [--out DIR]";

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &[&str]) -> Result<Args, String> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = p(&[]).unwrap();
        assert_eq!(a.tier, Tier::Quick);
        assert_eq!(a.seed, 42);
        assert_eq!(a.num_realizations(), 3);
        assert!(a.selects("anything"));
    }

    #[test]
    fn tier_flags() {
        assert_eq!(p(&["--paper"]).unwrap().tier, Tier::Paper);
        assert_eq!(p(&["--paper"]).unwrap().num_realizations(), 20);
        assert_eq!(p(&["--smoke"]).unwrap().num_realizations(), 2);
    }

    #[test]
    fn dataset_filter() {
        let a = p(&["--dataset", "NetHEPT"]).unwrap();
        assert!(a.selects("nethept-like"));
        assert!(!a.selects("epinions-like"));
    }

    #[test]
    fn numeric_flags() {
        let a = p(&["--seed", "7", "--realizations", "9", "--eps", "0.25"]).unwrap();
        assert_eq!(a.seed, 7);
        assert_eq!(a.num_realizations(), 9);
        assert_eq!(a.eps, 0.25);
    }

    #[test]
    fn rejects_unknown() {
        assert!(p(&["--bogus"]).is_err());
        assert!(p(&["--seed"]).is_err());
        assert!(p(&["--seed", "x"]).is_err());
    }
}
