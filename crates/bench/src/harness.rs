//! Algorithm runner implementing the paper's evaluation protocol (§6):
//! sample a fixed batch of realizations per dataset, run every algorithm on
//! each, and report means.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use smin_core::{
    adapt_im, asti, ateuc, evaluate_on_realizations, AdaptImParams, AstiParams, AteucParams,
};
use smin_diffusion::{Model, Realization, RealizationOracle};
use smin_graph::Graph;
use std::time::Instant;

/// Algorithms of §6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// ASTI with batch size `b` (`b = 1` is plain ASTI/TRIM; 2/4/8 are
    /// ASTI-2/4/8 via TRIM-B).
    Asti { b: usize },
    /// AdaptIM baseline (adaptive, vanilla marginal spread).
    AdaptIm,
    /// ATEUC baseline (non-adaptive).
    Ateuc,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Algo::Asti { b: 1 } => "ASTI".to_string(),
            Algo::Asti { b } => format!("ASTI-{b}"),
            Algo::AdaptIm => "AdaptIM".to_string(),
            Algo::Ateuc => "ATEUC".to_string(),
        }
    }

    /// The six algorithms evaluated in Figures 4–7.
    pub fn evaluation_set() -> Vec<Algo> {
        vec![
            Algo::Asti { b: 1 },
            Algo::Asti { b: 2 },
            Algo::Asti { b: 4 },
            Algo::Asti { b: 8 },
            Algo::AdaptIm,
            Algo::Ateuc,
        ]
    }
}

/// Outcome on one realization.
#[derive(Clone, Debug, Serialize)]
pub struct RealizationResult {
    /// Seeds used (adaptive: actually selected; ATEUC: the fixed set size).
    pub seeds: usize,
    /// Selection wall-clock seconds (ATEUC: amortized over realizations is
    /// *not* done — the one-shot cost is repeated so means stay comparable).
    pub time_s: f64,
    /// Nodes actually activated on this realization.
    pub spread: usize,
    /// Whether the spread reached η on this realization.
    pub reached: bool,
    /// Newly activated nodes per round, in order (Figure 10's series).
    pub marginal_spreads: Vec<usize>,
}

/// Aggregate over the realization batch.
#[derive(Clone, Debug, Serialize)]
pub struct RunResult {
    pub algo: String,
    pub dataset: String,
    pub model: String,
    pub eta: usize,
    pub eta_frac: f64,
    pub seeds_mean: f64,
    pub time_mean_s: f64,
    /// Median and tail selection latency over the realization batch
    /// (nearest-rank, [`crate::stats`]); 0 when the batch is empty.
    pub time_p50_s: f64,
    pub time_p95_s: f64,
    pub spread_mean: f64,
    /// Realizations on which the spread reached η; `< runs` flags the
    /// Table 3 "N/A" condition.
    pub feasible: usize,
    pub runs: usize,
    pub per_realization: Vec<RealizationResult>,
}

impl RunResult {
    /// `true` when every realization reached η (adaptive algorithms, by
    /// construction).
    pub fn always_feasible(&self) -> bool {
        self.feasible == self.runs
    }
}

/// Samples the fixed realization batch for a dataset (§6: "we first randomly
/// generate 20 possible realizations for each dataset").
pub fn sample_realizations(
    g: &Graph,
    model: Model,
    count: usize,
    base_seed: u64,
) -> Vec<Realization> {
    (0..count)
        .map(|r| {
            let mut rng = SmallRng::seed_from_u64(base_seed.wrapping_add(1000 + r as u64));
            Realization::sample(g, model, &mut rng)
        })
        .collect()
}

/// Runs one algorithm at one threshold over the realization batch.
#[allow(clippy::too_many_arguments)]
pub fn run_algo(
    g: &Graph,
    model: Model,
    eta: usize,
    eta_frac: f64,
    algo: Algo,
    realizations: &[Realization],
    dataset: &str,
    eps: f64,
    seed: u64,
) -> RunResult {
    let mut per = Vec::with_capacity(realizations.len());
    match algo {
        Algo::Asti { b } => {
            let params = AstiParams::batched(eps, b);
            for (r, phi) in realizations.iter().enumerate() {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(77 * r as u64 + 1));
                let mut oracle = RealizationOracle::new(g, phi.clone());
                let started = Instant::now();
                let report =
                    asti(g, model, eta, &params, &mut oracle, &mut rng).expect("valid parameters");
                per.push(RealizationResult {
                    seeds: report.num_seeds(),
                    time_s: started.elapsed().as_secs_f64(),
                    spread: report.total_activated,
                    reached: report.reached,
                    marginal_spreads: report.marginal_spreads(),
                });
            }
        }
        Algo::AdaptIm => {
            let params = AdaptImParams {
                eps,
                theta_cap: Some(4_000_000),
            };
            for (r, phi) in realizations.iter().enumerate() {
                let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(77 * r as u64 + 1));
                let mut oracle = RealizationOracle::new(g, phi.clone());
                let started = Instant::now();
                let report = adapt_im(g, model, eta, &params, &mut oracle, &mut rng)
                    .expect("valid parameters");
                per.push(RealizationResult {
                    seeds: report.num_seeds(),
                    time_s: started.elapsed().as_secs_f64(),
                    spread: report.total_activated,
                    reached: report.reached,
                    marginal_spreads: report.marginal_spreads(),
                });
            }
        }
        Algo::Ateuc => {
            // Non-adaptive: one selection, evaluated on every realization.
            let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(13));
            let started = Instant::now();
            let out =
                ateuc(g, model, eta, &AteucParams::default(), &mut rng).expect("valid parameters");
            let select_time = started.elapsed().as_secs_f64();
            let spreads = evaluate_on_realizations(g, &out.seeds, realizations);
            for spread in spreads {
                per.push(RealizationResult {
                    seeds: out.seeds.len(),
                    time_s: select_time,
                    spread,
                    reached: spread >= eta,
                    marginal_spreads: Vec::new(),
                });
            }
        }
    }

    let runs = per.len();
    let feasible = per.iter().filter(|r| r.reached).count();
    let times: Vec<f64> = per.iter().map(|r| r.time_s).collect();
    let time_summary = crate::stats::summarize(&times);
    RunResult {
        algo: algo.name(),
        dataset: dataset.to_string(),
        model: model.to_string(),
        eta,
        eta_frac,
        seeds_mean: mean(per.iter().map(|r| r.seeds as f64)),
        time_mean_s: time_summary.map_or(0.0, |s| s.mean),
        time_p50_s: time_summary.map_or(0.0, |s| s.p50),
        time_p95_s: time_summary.map_or(0.0, |s| s.p95),
        spread_mean: mean(per.iter().map(|r| r.spread as f64)),
        feasible,
        runs,
        per_realization: per,
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for x in it {
        sum += x;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smin_graph::generators::{assemble, chung_lu_directed};
    use smin_graph::WeightModel;

    fn tiny_graph() -> Graph {
        let mut rng = SmallRng::seed_from_u64(5);
        let pairs = chung_lu_directed(300, 1500, 2.1, &mut rng);
        assemble(300, &pairs, true, WeightModel::WeightedCascade, &mut rng).unwrap()
    }

    #[test]
    fn algo_names_match_paper() {
        assert_eq!(Algo::Asti { b: 1 }.name(), "ASTI");
        assert_eq!(Algo::Asti { b: 8 }.name(), "ASTI-8");
        assert_eq!(Algo::AdaptIm.name(), "AdaptIM");
        assert_eq!(Algo::Ateuc.name(), "ATEUC");
        assert_eq!(Algo::evaluation_set().len(), 6);
    }

    #[test]
    fn asti_run_is_always_feasible() {
        let g = tiny_graph();
        let phis = sample_realizations(&g, Model::IC, 3, 42);
        let res = run_algo(
            &g,
            Model::IC,
            30,
            0.1,
            Algo::Asti { b: 1 },
            &phis,
            "tiny",
            0.5,
            42,
        );
        assert_eq!(res.runs, 3);
        assert!(res.always_feasible());
        assert!(res.seeds_mean >= 1.0);
        assert!(res.spread_mean >= 30.0);
    }

    #[test]
    fn ateuc_run_reports_feasibility_per_realization() {
        let g = tiny_graph();
        let phis = sample_realizations(&g, Model::IC, 4, 42);
        let res = run_algo(&g, Model::IC, 30, 0.1, Algo::Ateuc, &phis, "tiny", 0.5, 42);
        assert_eq!(res.runs, 4);
        assert!(res.feasible <= res.runs);
        // non-adaptive: same seed count on every realization
        let first = res.per_realization[0].seeds;
        assert!(res.per_realization.iter().all(|r| r.seeds == first));
    }

    #[test]
    fn realization_batch_is_deterministic() {
        let g = tiny_graph();
        let a = sample_realizations(&g, Model::IC, 2, 7);
        let b = sample_realizations(&g, Model::IC, 2, 7);
        assert_eq!(a[0].live_edge_count(), b[0].live_edge_count());
        assert_eq!(a[1].live_edge_count(), b[1].live_edge_count());
        // different indices -> different worlds (overwhelmingly)
        assert_ne!(a[0].live_edge_count(), a[1].live_edge_count());
    }

    #[test]
    fn batched_asti_uses_multiples_of_b_seeds() {
        let g = tiny_graph();
        let phis = sample_realizations(&g, Model::IC, 2, 42);
        let res = run_algo(
            &g,
            Model::IC,
            40,
            0.13,
            Algo::Asti { b: 4 },
            &phis,
            "tiny",
            0.5,
            42,
        );
        for r in &res.per_realization {
            assert_eq!(r.seeds % 4, 0, "TRIM-B selects whole batches");
        }
    }
}
