//! Plain-text table/series formatting and JSON result dumping.

use serde::Serialize;
use std::path::Path;

/// Formats rows as an aligned text table. The first row is the header.
pub fn format_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        out = out.trim_end().to_string();
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Serializes `value` as pretty JSON under `dir/name.json`, creating `dir`.
pub fn write_json(dir: &str, name: &str, value: &impl Serialize) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(&path, json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Convenience: `f64` with fixed decimals, or "N/A" when the flag is false
/// (Table 3's marker for ATEUC missing the threshold).
pub fn na_or(v: f64, ok: bool, decimals: usize) -> String {
    if ok {
        format!("{v:.decimals$}")
    } else {
        "N/A".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_columns() {
        let t = format_table(&[
            vec!["a".into(), "long-header".into()],
            vec!["xxxx".into(), "1".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn na_marker() {
        assert_eq!(na_or(12.3456, true, 1), "12.3");
        assert_eq!(na_or(12.3456, false, 1), "N/A");
    }

    #[test]
    fn empty_table() {
        assert_eq!(format_table(&[]), "");
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("smin_bench_test");
        let dir = dir.to_str().unwrap();
        write_json(dir, "probe", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(format!("{dir}/probe.json")).unwrap();
        let back: Vec<i32> = serde_json::from_str(&content).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
