//! Coverage engine: greedy maximum coverage over a sketch pool (TRIM-B
//! Line 8) and the argmax shared with TRIM.
//!
//! The classic greedy algorithm guarantees covering at least
//! `ρ_b = 1 − (1 − 1/b)^b` of the optimum for `b` picks (Vazirani 2003),
//! which is the factor TRIM-B's stopping rule divides by.
//!
//! All selection paths — TRIM's argmax, eager greedy, CELF lazy greedy, and
//! the bound-driven `greedy_until` loops of the non-adaptive baselines —
//! share one marginal-maintenance implementation ([`CoverageEngine`]) and
//! one tie-breaking rule (higher gain first, then smaller node id), so every
//! algorithm returns identical selections on identical pools. CELF is the
//! default strategy ([`CoverageEngine::select`]); the eager scan survives as
//! the reference implementation and as the small-`b` fast path.
//!
//! The hot paths run on word-parallel kernels: `commit_pick` batches newly
//! covered sets 64 at a time against the covered mask's words before
//! touching marginals, the candidate scans walk in unrolled 4-wide strides,
//! and the CELF reheap takes a single-winner fast path when a refreshed top
//! still beats the rest of the heap — all bit-identical to the scalar
//! reference scans they replaced (same tie-breaking total order).

use crate::pool::SketchPool;
use smin_graph::cast::u32_of;
use smin_graph::{FixedBitSet, NodeId, Ones};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a greedy cover run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyCover {
    /// Selected nodes in pick order (may be shorter than `b` if the pool is
    /// exhausted).
    pub seeds: Vec<NodeId>,
    /// Number of sets covered by `seeds`.
    pub covered: u32,
}

/// The shared tie-breaking rule as a two-candidate merge: `b` replaces `a`
/// iff it has strictly higher gain, or equal gain and a smaller node id.
/// On candidates with distinct ids this is the max of a strict total order
/// (gain descending, id ascending), so merges associate and commute — the
/// unrolled scans below may fold lanes in any order.
#[inline]
fn better(a: (NodeId, u32), b: (NodeId, u32)) -> (NodeId, u32) {
    if b.1 > a.1 || (b.1 == a.1 && b.0 < a.0) {
        b
    } else {
        a
    }
}

/// Sentinel that loses [`better`] to every real candidate (real candidates
/// carry positive gain; zero-gain nodes are never offered as candidates).
const NO_PICK: (NodeId, u32) = (NodeId::MAX, 0);

/// Scalar reference for [`best_node`]: the one-at-a-time scan the unrolled
/// kernel must agree with on every input (debug builds assert it; the
/// kernel-equivalence proptests pin it from the outside).
fn best_node_reference(nodes: &[NodeId], gain: &[u32]) -> Option<(NodeId, u32)> {
    let mut best: Option<(NodeId, u32)> = None;
    for &v in nodes {
        let c = gain[v as usize];
        if c != 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
            best = Some((v, c));
        }
    }
    best
}

/// Packs a candidate into one orderable word: gain in the high half, the
/// bitwise NOT of the id in the low half. `max` over packed keys is exactly
/// the shared tie-breaking rule — higher gain wins, equal gain falls to the
/// larger `!id`, i.e. the smaller id — so the argmax scan runs branchless.
#[inline]
fn pack(v: NodeId, c: u32) -> u64 {
    (u64::from(c) << 32) | u64::from(!v)
}

/// Inverse of [`pack`]; `None` when the key carries zero gain (either the
/// zeroed sentinel lane, or only exhausted candidates were offered).
#[inline]
fn unpack(key: u64) -> Option<(NodeId, u32)> {
    let c = u32_of((key >> 32) as usize);
    (c != 0).then(|| (!u32_of((key & u64::from(u32::MAX)) as usize), c))
}

/// The shared tie-breaking scan: the entry of `nodes` with the largest
/// positive `gain`, ties toward the smaller node id; `None` when no entry
/// has positive gain. This one function defines the selection order for
/// every coverage consumer (TRIM argmax included).
///
/// Walks `nodes` in unrolled 4-wide strides, each stride lane max-folding a
/// packed `(gain, ¬id)` key into its own accumulator — branchless, and the
/// four gain loads of one iteration don't serialize on a single
/// best-so-far register.
#[inline]
pub(crate) fn best_node(nodes: &[NodeId], gain: &[u32]) -> Option<(NodeId, u32)> {
    let mut lanes = [0u64; 4];
    let mut chunks = nodes.chunks_exact(4);
    for chunk in &mut chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane).max(pack(v, gain[v as usize]));
        }
    }
    let mut best = lanes.into_iter().fold(0, u64::max);
    for &v in chunks.remainder() {
        best = best.max(pack(v, gain[v as usize]));
    }
    let result = unpack(best);
    debug_assert_eq!(result, best_node_reference(nodes, gain));
    result
}

/// Compacting candidate scan shared by the eager strategies: drops
/// permanently-exhausted nodes (zero marginal — submodularity keeps them
/// zero) out of `scan` in place while tracking the best candidate in four
/// independent lanes, exactly like [`best_node`]. Returns the pick with
/// the shared tie-breaking, or `None` when no live candidate remains.
fn scan_best(scan: &mut Vec<NodeId>, gain: &[u32]) -> Option<(NodeId, u32)> {
    let mut lanes = [NO_PICK; 4];
    let mut live = 0usize;
    let len = scan.len();
    let mut r = 0usize;
    while r + 4 <= len {
        // fixed-trip inner loop: unrolled, no per-element bounds checks on
        // the lane accumulators
        for lane in 0..4 {
            let v = scan[r + lane];
            let c = gain[v as usize];
            if c != 0 {
                scan[live] = v;
                live += 1;
                lanes[lane] = better(lanes[lane], (v, c));
            }
        }
        r += 4;
    }
    while r < len {
        let v = scan[r];
        let c = gain[v as usize];
        if c != 0 {
            scan[live] = v;
            live += 1;
            lanes[0] = better(lanes[0], (v, c));
        }
        r += 1;
    }
    scan.truncate(live);
    let best = lanes.into_iter().fold(NO_PICK, better);
    (best.1 != 0).then_some(best)
}

/// Reusable marginal-coverage maintenance shared by every greedy/argmax
/// consumer. All buffers are retained across calls, so a `CoverageEngine`
/// embedded in per-round scratch (e.g. `TrimScratch`) makes repeated
/// selection allocation-free after the first round.
#[derive(Default)]
pub struct CoverageEngine {
    /// Marginal coverage of each node under the current partial selection.
    marginal: Vec<u32>,
    /// Sets already covered by the current partial selection.
    set_covered: FixedBitSet,
    /// CELF priority queue: (cached gain, Reverse(node)) — pops highest
    /// gain, then smallest id, matching [`best_node`] exactly.
    heap: BinaryHeap<(u32, Reverse<NodeId>)>,
    /// Round in which each node's cached gain was recomputed (CELF).
    fresh_round: Vec<u32>,
    /// Compact scan list for the eager path: nodes whose marginal is still
    /// positive. Exhausted nodes are swapped out during the scan and never
    /// revisited — submodularity guarantees a zero marginal stays zero.
    scan: Vec<NodeId>,
    /// Nodes examined by the most recent eager select (instrumentation; the
    /// compaction regression test pins this).
    pub last_scanned: usize,
    /// `(word index, mask)` batches of the pick being committed: the set-id
    /// list of the picked node compressed 64 ids per word.
    word_buf: Vec<(u32, u64)>,
    /// Heap pops by the most recent [`CoverageEngine::select`]
    /// (instrumentation; the fast-path regression test pins this).
    pub last_heap_pops: usize,
    /// Heap re-pushes by the most recent [`CoverageEngine::select`] —
    /// refreshed entries that could not take the single-winner fast path.
    pub last_heap_pushes: usize,
}

/// Instrumentation counters of the most recent coverage selection — CELF
/// heap traffic and eager-scan volume, surfaced as one typed snapshot so
/// the session layer can report them without reaching into engine fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectTraffic {
    /// Heap pops by the most recent [`CoverageEngine::select`].
    pub heap_pops: usize,
    /// Heap re-pushes by the most recent [`CoverageEngine::select`].
    pub heap_pushes: usize,
    /// Nodes examined by the most recent [`CoverageEngine::select_eager`].
    pub scanned: usize,
}

impl CoverageEngine {
    /// A fresh engine; buffers are sized lazily per pool.
    pub fn new() -> Self {
        CoverageEngine::default()
    }

    /// The instrumentation counters of the most recent selection.
    pub fn select_traffic(&self) -> SelectTraffic {
        SelectTraffic {
            heap_pops: self.last_heap_pops,
            heap_pushes: self.last_heap_pushes,
            scanned: self.last_scanned,
        }
    }

    /// Loads `pool`'s coverage counts into the marginal buffer and clears
    /// the covered-set mask.
    fn begin(&mut self, pool: &SketchPool) {
        self.marginal.clear();
        self.marginal.extend_from_slice(pool.coverage_counts());
        self.set_covered.grow(pool.len());
        self.set_covered.clear();
    }

    /// Commits `v` into the partial selection: marks its sets covered and
    /// decrements every co-member's marginal. The single mutation point all
    /// strategies share.
    ///
    /// Word-parallel: `v`'s set-id list arrives in strictly increasing order
    /// (insertion order), so it compresses into one `(word, mask)` pair per
    /// touched word of the covered mask. Each batch then hits `set_covered`
    /// with a single [`FixedBitSet::insert_word`] — up to 64 membership
    /// tests in one fetch/or — and only the returned freshly-set bits walk
    /// their set members to decrement marginals.
    fn commit_pick(&mut self, pool: &SketchPool, v: NodeId) {
        self.word_buf.clear();
        let word_buf = &mut self.word_buf;
        // for_each drives SetsOf's chunked fold — one arena-chunk slice at a
        // time instead of per-id iterator stepping.
        pool.sets_of(v).for_each(|s| {
            let wi = s >> 6;
            let bit = 1u64 << (s & 63);
            match word_buf.last_mut() {
                Some((w, mask)) if *w == wi => *mask |= bit,
                _ => word_buf.push((wi, bit)),
            }
        });
        let marginal = &mut self.marginal;
        let set_covered = &mut self.set_covered;
        for &(wi, mask) in self.word_buf.iter() {
            let mut fresh = set_covered.insert_word(wi as usize, mask);
            while fresh != 0 {
                let s = (wi << 6) | fresh.trailing_zeros();
                fresh &= fresh - 1;
                for &u in pool.set(s) {
                    marginal[u as usize] -= 1;
                }
            }
        }
        debug_assert_eq!(self.marginal[v as usize], 0);
    }

    /// Sets covered by the most recent selection, as a word-skipping
    /// iterator of set ids over the engine's covered mask.
    pub fn covered_sets(&self) -> Ones<'_> {
        self.set_covered.ones()
    }

    /// `argmax_v Λ_R(v)` with the shared tie-breaking; `None` when the pool
    /// covers nothing. This is exactly the first pick of a greedy run.
    pub fn argmax(&self, pool: &SketchPool) -> Option<(NodeId, u32)> {
        best_node(pool.touched_nodes(), pool.coverage_counts())
    }

    /// Picks up to `b` nodes greedily maximizing marginal set coverage —
    /// CELF lazy greedy (Leskovec et al. 2007), the default strategy.
    ///
    /// Identical output to [`CoverageEngine::select_eager`] (same
    /// tie-breaking) but skips recomputing marginals that submodularity
    /// proves stale; wins when `b` is large relative to how quickly gains
    /// decay.
    pub fn select(&mut self, pool: &SketchPool, b: usize) -> GreedyCover {
        self.begin(pool);
        self.heap.clear();
        for &v in pool.touched_nodes() {
            self.heap.push((self.marginal[v as usize], Reverse(v)));
        }
        self.fresh_round.clear();
        self.fresh_round.resize(pool.n(), 0);
        self.last_heap_pops = 0;
        self.last_heap_pushes = 0;

        let mut seeds = Vec::with_capacity(b);
        let mut covered = 0u32;
        for round in 1..=u32_of(b) {
            let picked = loop {
                let Some(&(gain, Reverse(v))) = self.heap.peek() else {
                    break None;
                };
                if gain == 0 {
                    break None;
                }
                let current = self.marginal[v as usize];
                if self.fresh_round[v as usize] == round || current == gain {
                    // cached value is exact for this round
                    self.heap.pop();
                    self.last_heap_pops += 1;
                    break Some((v, current));
                }
                self.heap.pop();
                self.last_heap_pops += 1;
                self.fresh_round[v as usize] = round;
                if current == 0 {
                    continue;
                }
                // Single-winner fast path: the heap holds at most one entry
                // per node and the keys are a strict total order, so if the
                // refreshed entry still beats the next top it would survive
                // the push + re-pop round-trip untouched — commit directly.
                match self.heap.peek() {
                    Some(&top) if (current, Reverse(v)) < top => {
                        self.heap.push((current, Reverse(v)));
                        self.last_heap_pushes += 1;
                    }
                    _ => break Some((v, current)),
                }
            };
            let Some((v, gain)) = picked else { break };
            seeds.push(v);
            covered += gain;
            self.commit_pick(pool, v);
        }
        GreedyCover { seeds, covered }
    }

    /// Eager greedy: rescans the live candidate list every pick, compacting
    /// out nodes whose marginal has dropped to zero so exhausted nodes are
    /// never rescanned. Runs in `O(b·|live| + Σ|R|)`.
    pub fn select_eager(&mut self, pool: &SketchPool, b: usize) -> GreedyCover {
        self.begin(pool);
        self.scan.clear();
        self.scan.extend_from_slice(pool.touched_nodes());
        self.last_scanned = 0;

        let mut seeds = Vec::with_capacity(b);
        let mut covered = 0u32;
        for _ in 0..b {
            self.last_scanned += self.scan.len();
            let Some((v, gain)) = scan_best(&mut self.scan, &self.marginal) else {
                break;
            };
            seeds.push(v);
            covered += gain;
            self.commit_pick(pool, v);
        }
        GreedyCover { seeds, covered }
    }

    /// Greedy picks until `bound(Λ(S))` reaches `target` or coverage runs
    /// out (the stopping rule of the non-adaptive baselines). Returns the
    /// cover and whether the target was reached.
    pub fn select_until(
        &mut self,
        pool: &SketchPool,
        target: f64,
        bound: impl Fn(f64) -> f64,
    ) -> (GreedyCover, bool) {
        self.begin(pool);
        self.scan.clear();
        self.scan.extend_from_slice(pool.touched_nodes());

        let mut seeds = Vec::new();
        let mut covered = 0u32;
        let reached = loop {
            if bound(covered as f64) >= target {
                break true;
            }
            let Some((v, gain)) = scan_best(&mut self.scan, &self.marginal) else {
                break false;
            };
            seeds.push(v);
            covered += gain;
            self.commit_pick(pool, v);
        };
        (GreedyCover { seeds, covered }, reached)
    }
}

/// Picks up to `b` nodes greedily maximizing marginal set coverage (eager
/// reference scan; see [`CoverageEngine::select_eager`]).
pub fn greedy_max_coverage(pool: &SketchPool, b: usize) -> GreedyCover {
    CoverageEngine::new().select_eager(pool, b)
}

/// CELF-style lazy greedy: identical output to [`greedy_max_coverage`]
/// (same tie-breaking) via [`CoverageEngine::select`].
pub fn lazy_greedy_max_coverage(pool: &SketchPool, b: usize) -> GreedyCover {
    CoverageEngine::new().select(pool, b)
}

/// `ρ_b = 1 − (1 − 1/b)^b`, the greedy max-coverage guarantee for batch size
/// `b` (`ρ_1 = 1`, decreasing toward `1 − 1/e`).
pub fn rho_b(b: usize) -> f64 {
    assert!(b >= 1, "batch size must be at least 1");
    1.0 - (1.0 - 1.0 / b as f64).powi(b as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_from(sets: &[&[NodeId]], n: usize) -> SketchPool {
        let mut p = SketchPool::new(n);
        for s in sets {
            p.add_set(s);
        }
        p
    }

    #[test]
    fn single_pick_is_argmax() {
        let pool = pool_from(&[&[0, 1], &[1], &[2]], 3);
        let g = greedy_max_coverage(&pool, 1);
        assert_eq!(g.seeds, vec![1]);
        assert_eq!(g.covered, 2);
        let engine = CoverageEngine::new();
        assert_eq!(engine.argmax(&pool), Some((1, 2)));
        assert_eq!(engine.argmax(&pool), pool.argmax());
    }

    #[test]
    fn marginal_gains_respected() {
        // node 0 covers sets {A, B}; node 1 covers {A, C}; node 2 covers {D}.
        // Greedy picks 0 (gain 2) then 1 (marginal gain 1 from C, not 2).
        let pool = pool_from(&[&[0, 1], &[0], &[1], &[2]], 3);
        let g = greedy_max_coverage(&pool, 2);
        assert_eq!(g.seeds[0], 0);
        assert_eq!(g.covered, 3);
    }

    #[test]
    fn exhausted_pool_stops_early() {
        let pool = pool_from(&[&[0], &[0]], 2);
        let g = greedy_max_coverage(&pool, 3);
        assert_eq!(g.seeds, vec![0]);
        assert_eq!(g.covered, 2);
    }

    #[test]
    fn covers_everything_when_b_large() {
        let pool = pool_from(&[&[0], &[1], &[2]], 3);
        let g = greedy_max_coverage(&pool, 3);
        assert_eq!(g.covered, 3);
        assert_eq!(g.seeds.len(), 3);
    }

    #[test]
    fn greedy_meets_rho_b_guarantee_exhaustive() {
        // Brute-force optimum over all size-b subsets on a small instance
        // and check covered ≥ ρ_b · OPT.
        let sets: Vec<Vec<NodeId>> = vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![0, 4],
            vec![1, 3],
            vec![5],
        ];
        let refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();
        let pool = pool_from(&refs, 6);
        for b in 1..=3usize {
            let g = greedy_max_coverage(&pool, b);
            // brute force optimum
            let mut opt = 0u32;
            let nodes: Vec<NodeId> = (0..6).collect();
            fn rec(
                nodes: &[NodeId],
                pool: &SketchPool,
                b: usize,
                start: usize,
                cur: &mut Vec<NodeId>,
                opt: &mut u32,
            ) {
                if cur.len() == b {
                    *opt = (*opt).max(pool.coverage_of_set(cur));
                    return;
                }
                for i in start..nodes.len() {
                    cur.push(nodes[i]);
                    rec(nodes, pool, b, i + 1, cur, opt);
                    cur.pop();
                }
            }
            let mut cur = Vec::new();
            rec(&nodes, &pool, b, 0, &mut cur, &mut opt);
            assert!(
                g.covered as f64 >= rho_b(b) * opt as f64 - 1e-9,
                "b = {b}: greedy {} < ρ_b·OPT = {}",
                g.covered,
                rho_b(b) * opt as f64
            );
        }
    }

    #[test]
    fn lazy_greedy_matches_simple_greedy_exactly() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for case in 0..30 {
            let n = 2 + (case % 20);
            let sets = 1 + (case * 7) % 50;
            let mut pool = SketchPool::new(n);
            for _ in 0..sets {
                let size = 1 + rng.random_range(0..n.min(5));
                let mut s: Vec<NodeId> = (0..size).map(|_| rng.random_range(0..n as u32)).collect();
                s.sort_unstable();
                s.dedup();
                pool.add_set(&s);
            }
            for b in [1usize, 2, 3, 8] {
                let simple = greedy_max_coverage(&pool, b);
                let lazy = lazy_greedy_max_coverage(&pool, b);
                assert_eq!(simple, lazy, "case {case}, b = {b}");
            }
        }
    }

    #[test]
    fn engine_reuse_across_pools_is_clean() {
        // One engine serving different pools back to back (the TrimScratch
        // pattern) must never leak covered-set or marginal state.
        let mut engine = CoverageEngine::new();
        let big = pool_from(&[&[0, 1], &[1, 2], &[2], &[3]], 4);
        let small = pool_from(&[&[0]], 2);
        for _ in 0..3 {
            let g = engine.select(&big, 2);
            assert_eq!(g, lazy_greedy_max_coverage(&big, 2));
            let g = engine.select(&small, 1);
            assert_eq!(g.seeds, vec![0]);
            assert_eq!(g.covered, 1);
            let g = engine.select_eager(&big, 4);
            assert_eq!(g.covered, 4);
        }
    }

    #[test]
    fn eager_scan_compacts_exhausted_nodes() {
        // 20 clusters: hub i covers that cluster's 50 sets, and each set
        // carries a unique leaf. Greedy picks the 20 hubs; once a hub is
        // picked its 50 leaves are permanently zero and must drop out of
        // later scans. Without compaction every round rescans all 1020
        // nodes (20 × 1020 = 20400 node visits); with it the scan shrinks by
        // 51 nodes per round.
        let clusters = 20usize;
        let sets_per = 50usize;
        let n = clusters + clusters * sets_per;
        let mut pool = SketchPool::new(n);
        for c in 0..clusters {
            let hub = c as NodeId;
            for s in 0..sets_per {
                let leaf = (clusters + c * sets_per + s) as NodeId;
                pool.add_set(&[hub, leaf]);
            }
        }
        let mut engine = CoverageEngine::new();
        let g = engine.select_eager(&pool, clusters);
        assert_eq!(g.seeds.len(), clusters);
        assert_eq!(g.covered as usize, clusters * sets_per);
        let naive_visits = clusters * n;
        assert!(
            engine.last_scanned < naive_visits * 6 / 10,
            "compaction regressed: scanned {} of naive {}",
            engine.last_scanned,
            naive_visits
        );
        // and the compacted scan returns exactly what CELF returns
        assert_eq!(g, engine.select(&pool, clusters));
    }

    #[test]
    fn select_until_reaches_target_or_exhausts() {
        let pool = pool_from(&[&[0], &[0], &[1], &[2]], 3);
        let mut engine = CoverageEngine::new();
        // identity bound: stop once 3 sets are covered
        let (g, reached) = engine.select_until(&pool, 3.0, |c| c);
        assert!(reached);
        assert_eq!(g.seeds, vec![0, 1]);
        assert_eq!(g.covered, 3);
        // unreachable target: exhausts coverage and reports failure
        let (g, reached) = engine.select_until(&pool, 100.0, |c| c);
        assert!(!reached);
        assert_eq!(g.covered, 4);
        assert_eq!(g.seeds, vec![0, 1, 2]);
        // already-satisfied target picks nothing
        let (g, reached) = engine.select_until(&pool, 0.0, |c| c);
        assert!(reached);
        assert!(g.seeds.is_empty());
    }

    #[test]
    fn lazy_greedy_empty_pool() {
        let pool = SketchPool::new(4);
        let g = lazy_greedy_max_coverage(&pool, 3);
        assert!(g.seeds.is_empty());
        assert_eq!(g.covered, 0);
    }

    #[test]
    fn rho_values() {
        assert!((rho_b(1) - 1.0).abs() < 1e-12);
        assert!((rho_b(2) - 0.75).abs() < 1e-12);
        assert!(rho_b(8) > 1.0 - 1.0 / std::f64::consts::E);
        assert!(rho_b(1000) > 1.0 - 1.0 / std::f64::consts::E - 1e-3);
    }
}
