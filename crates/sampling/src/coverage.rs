//! Greedy maximum coverage over a sketch pool (TRIM-B Line 8).
//!
//! The classic greedy algorithm guarantees covering at least
//! `ρ_b = 1 − (1 − 1/b)^b` of the optimum for `b` picks (Vazirani 2003),
//! which is the factor TRIM-B's stopping rule divides by.

use crate::pool::SketchPool;
use smin_graph::NodeId;

/// Result of a greedy cover run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyCover {
    /// Selected nodes in pick order (may be shorter than `b` if the pool is
    /// exhausted).
    pub seeds: Vec<NodeId>,
    /// Number of sets covered by `seeds`.
    pub covered: u32,
}

/// Picks up to `b` nodes greedily maximizing marginal set coverage.
///
/// Runs in `O(b·n + Σ|R|)`: marginal coverages are maintained exactly by
/// decrementing the counts of every node sharing a newly covered set.
pub fn greedy_max_coverage(pool: &SketchPool, b: usize) -> GreedyCover {
    let mut marginal: Vec<u32> = pool.coverage_counts().to_vec();
    let mut set_covered = vec![false; pool.len()];
    let mut seeds = Vec::with_capacity(b);
    let mut covered = 0u32;

    for _ in 0..b {
        let mut best: Option<(NodeId, u32)> = None;
        for &v in pool.touched_nodes() {
            let c = marginal[v as usize];
            // ties break toward the smaller node id (matches the CELF
            // variant so both algorithms return identical selections)
            if c > 0 && best.is_none_or(|(bv, bc)| c > bc || (c == bc && v < bv)) {
                best = Some((v, c));
            }
        }
        let Some((v, gain)) = best else { break };
        seeds.push(v);
        covered += gain;
        for &s in pool.sets_of(v) {
            if !set_covered[s as usize] {
                set_covered[s as usize] = true;
                for &u in pool.set(s) {
                    marginal[u as usize] -= 1;
                }
            }
        }
        debug_assert_eq!(marginal[v as usize], 0);
    }

    GreedyCover { seeds, covered }
}

/// `ρ_b = 1 − (1 − 1/b)^b`, the greedy max-coverage guarantee for batch size
/// `b` (`ρ_1 = 1`, decreasing toward `1 − 1/e`).
pub fn rho_b(b: usize) -> f64 {
    assert!(b >= 1, "batch size must be at least 1");
    1.0 - (1.0 - 1.0 / b as f64).powi(b as i32)
}

/// CELF-style lazy greedy (Leskovec et al. 2007): identical output to
/// [`greedy_max_coverage`] (same tie-breaking: higher gain first, then
/// smaller node id) but skips recomputing marginals that submodularity
/// proves stale. Wins when `b` is large relative to how quickly gains decay.
pub fn lazy_greedy_max_coverage(pool: &SketchPool, b: usize) -> GreedyCover {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut marginal: Vec<u32> = pool.coverage_counts().to_vec();
    let mut set_covered = vec![false; pool.len()];
    // (cached gain, Reverse(node)): max-heap pops highest gain, smallest id.
    let mut heap: BinaryHeap<(u32, Reverse<NodeId>)> = pool
        .touched_nodes()
        .iter()
        .map(|&v| (marginal[v as usize], Reverse(v)))
        .collect();
    // round in which each node's cached gain was computed
    let mut fresh_round: Vec<u32> = vec![0; pool.n()];
    let mut seeds = Vec::with_capacity(b);
    let mut covered = 0u32;

    for round in 1..=b as u32 {
        let picked = loop {
            let Some(&(gain, Reverse(v))) = heap.peek() else {
                break None;
            };
            if gain == 0 {
                break None;
            }
            let current = marginal[v as usize];
            if fresh_round[v as usize] == round || current == gain {
                // cached value is exact for this round
                heap.pop();
                break Some((v, current));
            }
            heap.pop();
            fresh_round[v as usize] = round;
            if current > 0 {
                heap.push((current, Reverse(v)));
            }
            continue;
        };
        let Some((v, gain)) = picked else { break };
        seeds.push(v);
        covered += gain;
        for &s in pool.sets_of(v) {
            if !set_covered[s as usize] {
                set_covered[s as usize] = true;
                for &u in pool.set(s) {
                    marginal[u as usize] -= 1;
                }
            }
        }
    }

    GreedyCover { seeds, covered }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_from(sets: &[&[NodeId]], n: usize) -> SketchPool {
        let mut p = SketchPool::new(n);
        for s in sets {
            p.add_set(s);
        }
        p
    }

    #[test]
    fn single_pick_is_argmax() {
        let pool = pool_from(&[&[0, 1], &[1], &[2]], 3);
        let g = greedy_max_coverage(&pool, 1);
        assert_eq!(g.seeds, vec![1]);
        assert_eq!(g.covered, 2);
    }

    #[test]
    fn marginal_gains_respected() {
        // node 0 covers sets {A, B}; node 1 covers {A, C}; node 2 covers {D}.
        // Greedy picks 0 (gain 2) then 1 (marginal gain 1 from C, not 2).
        let pool = pool_from(&[&[0, 1], &[0], &[1], &[2]], 3);
        let g = greedy_max_coverage(&pool, 2);
        assert_eq!(g.seeds[0], 0);
        assert_eq!(g.covered, 3);
    }

    #[test]
    fn exhausted_pool_stops_early() {
        let pool = pool_from(&[&[0], &[0]], 2);
        let g = greedy_max_coverage(&pool, 3);
        assert_eq!(g.seeds, vec![0]);
        assert_eq!(g.covered, 2);
    }

    #[test]
    fn covers_everything_when_b_large() {
        let pool = pool_from(&[&[0], &[1], &[2]], 3);
        let g = greedy_max_coverage(&pool, 3);
        assert_eq!(g.covered, 3);
        assert_eq!(g.seeds.len(), 3);
    }

    #[test]
    fn greedy_meets_rho_b_guarantee_exhaustive() {
        // Brute-force optimum over all size-b subsets on a small instance
        // and check covered ≥ ρ_b · OPT.
        let sets: Vec<Vec<NodeId>> = vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![0, 4],
            vec![1, 3],
            vec![5],
        ];
        let refs: Vec<&[NodeId]> = sets.iter().map(|s| s.as_slice()).collect();
        let pool = pool_from(&refs, 6);
        for b in 1..=3usize {
            let g = greedy_max_coverage(&pool, b);
            // brute force optimum
            let mut opt = 0u32;
            let nodes: Vec<NodeId> = (0..6).collect();
            let mut comb = vec![0usize; b];
            fn rec(
                nodes: &[NodeId],
                pool: &SketchPool,
                b: usize,
                start: usize,
                cur: &mut Vec<NodeId>,
                opt: &mut u32,
            ) {
                if cur.len() == b {
                    *opt = (*opt).max(pool.coverage_of_set(cur));
                    return;
                }
                for i in start..nodes.len() {
                    cur.push(nodes[i]);
                    rec(nodes, pool, b, i + 1, cur, opt);
                    cur.pop();
                }
            }
            comb.clear();
            let mut cur = Vec::new();
            rec(&nodes, &pool, b, 0, &mut cur, &mut opt);
            assert!(
                g.covered as f64 >= rho_b(b) * opt as f64 - 1e-9,
                "b = {b}: greedy {} < ρ_b·OPT = {}",
                g.covered,
                rho_b(b) * opt as f64
            );
        }
    }

    #[test]
    fn lazy_greedy_matches_simple_greedy_exactly() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for case in 0..30 {
            let n = 2 + (case % 20);
            let sets = 1 + (case * 7) % 50;
            let mut pool = SketchPool::new(n);
            for _ in 0..sets {
                let size = 1 + rng.random_range(0..n.min(5));
                let mut s: Vec<NodeId> = (0..size).map(|_| rng.random_range(0..n as u32)).collect();
                s.sort_unstable();
                s.dedup();
                pool.add_set(&s);
            }
            for b in [1usize, 2, 3, 8] {
                let simple = greedy_max_coverage(&pool, b);
                let lazy = lazy_greedy_max_coverage(&pool, b);
                assert_eq!(simple, lazy, "case {case}, b = {b}");
            }
        }
    }

    #[test]
    fn lazy_greedy_empty_pool() {
        let pool = SketchPool::new(4);
        let g = lazy_greedy_max_coverage(&pool, 3);
        assert!(g.seeds.is_empty());
        assert_eq!(g.covered, 0);
    }

    #[test]
    fn rho_values() {
        assert!((rho_b(1) - 1.0).abs() < 1e-12);
        assert!((rho_b(2) - 0.75).abs() < 1e-12);
        assert!(rho_b(8) > 1.0 - 1.0 / std::f64::consts::E);
        assert!(rho_b(1000) > 1.0 - 1.0 / std::f64::consts::E - 1e-3);
    }
}
