//! Reverse reachable (RR) set sampling.
//!
//! A random RR set rooted at `v` contains every node that reaches `v` in a
//! random realization; `E[I(S)] = n · Pr[RR ∩ S ≠ ∅]` (Borgs et al., §3.2).
//! The sampler performs a *stochastic* reverse BFS, drawing each random
//! choice on first examination (principle of deferred decisions), so no
//! realization is ever materialized:
//!
//! * **IC** — each incoming edge is flipped independently the first time its
//!   head node is dequeued; since every node is dequeued at most once, each
//!   edge is examined at most once and the merged multi-root search remains
//!   consistent with a single underlying realization (§3.3's requirement);
//! * **LT** — the dequeued node draws its single live in-edge.
//!
//! The sampler honors a residual alive-mask so the same code serves rounds
//! `i > 1` on `G_i`.

use rand::Rng;
use smin_graph::{FixedBitSet, Graph, NodeId};

/// Reusable scratch for reverse stochastic BFS on one graph.
pub struct ReverseSampler {
    /// Word-packed frontier membership: 8× denser than the former
    /// `Vec<bool>`, so the mask for a million-node graph stays cache-resident
    /// across the thousands of samples each doubling round draws.
    visited: FixedBitSet,
    queue: Vec<NodeId>,
}

impl ReverseSampler {
    /// Scratch for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        ReverseSampler {
            visited: FixedBitSet::new(n),
            queue: Vec::new(),
        }
    }

    /// Samples one RR/mRR set from `roots` into `out` (cleared first).
    ///
    /// Dead roots (per `alive`) are skipped. The returned set lists every
    /// alive node that reaches some root in the sampled world, roots
    /// included. Returns the number of edges examined (the sampler's cost,
    /// used by the EPT accounting in benchmarks).
    pub fn sample_into(
        &mut self,
        g: &Graph,
        model: smin_diffusion::Model,
        alive: Option<&[bool]>,
        roots: &[NodeId],
        rng: &mut impl Rng,
        out: &mut Vec<NodeId>,
    ) -> usize {
        out.clear();
        self.queue.clear();
        let is_alive = |u: NodeId| alive.is_none_or(|a| a[u as usize]);
        for &r in roots {
            if is_alive(r) && self.visited.insert(r as usize) {
                out.push(r);
                self.queue.push(r);
            }
        }
        let mut edges_examined = 0usize;
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            match model {
                smin_diffusion::Model::IC => {
                    for (u, p, _) in g.in_edges(v) {
                        if !is_alive(u) {
                            continue;
                        }
                        edges_examined += 1;
                        if !self.visited.contains(u as usize) && rng.random::<f64>() < p {
                            self.visited.insert(u as usize);
                            out.push(u);
                            self.queue.push(u);
                        }
                    }
                }
                smin_diffusion::Model::LT => {
                    // v keeps exactly one live in-edge with prob p(u, v); if
                    // the chosen source is dead the choice maps to "none",
                    // which is exactly the induced-subgraph distribution.
                    let mut r = rng.random::<f64>();
                    for (u, p, _) in g.in_edges(v) {
                        edges_examined += 1;
                        if r < p {
                            if is_alive(u) && self.visited.insert(u as usize) {
                                out.push(u);
                                self.queue.push(u);
                            }
                            break;
                        }
                        r -= p;
                    }
                }
            }
        }
        // O(|set|) cleanup keeps repeated sampling allocation-free.
        for &u in out.iter() {
            self.visited.remove(u as usize);
        }
        edges_examined
    }

    /// Convenience wrapper allocating a fresh vector.
    pub fn sample(
        &mut self,
        g: &Graph,
        model: smin_diffusion::Model,
        alive: Option<&[bool]>,
        roots: &[NodeId],
        rng: &mut impl Rng,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.sample_into(g, model, alive, roots, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::Model;
    use smin_graph::GraphBuilder;

    fn path3(p: f64) -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, p).unwrap();
        b.add_edge_p(1, 2, p).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn p1_gives_full_ancestor_closure() {
        let g = path3(1.0);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut rr = s.sample(&g, Model::IC, None, &[2], &mut rng);
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
    }

    #[test]
    fn tiny_p_gives_root_only() {
        let g = path3(1e-12);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let rr = s.sample(&g, Model::IC, None, &[2], &mut rng);
        assert_eq!(rr, vec![2]);
    }

    #[test]
    fn root_always_present() {
        let g = path3(0.5);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let rr = s.sample(&g, Model::IC, None, &[1], &mut rng);
            assert!(rr.contains(&1));
        }
    }

    #[test]
    fn membership_rate_equals_reach_probability() {
        // P[0 ∈ RR(2)] = P[0 reaches 2] = p².
        let g = path3(0.5);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 40_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            if s.sample(&g, Model::IC, None, &[2], &mut rng).contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn alive_mask_blocks_dead_nodes() {
        let g = path3(1.0);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let alive = vec![true, false, true];
        // node 1 is dead: 0 can no longer reach 2 inside the residual graph
        let rr = s.sample(&g, Model::IC, Some(&alive), &[2], &mut rng);
        assert_eq!(rr, vec![2]);
        // a dead root yields an empty set
        let rr = s.sample(&g, Model::IC, Some(&alive), &[1], &mut rng);
        assert!(rr.is_empty());
    }

    #[test]
    fn multi_root_is_union_like() {
        let g = path3(1.0);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut rr = s.sample(&g, Model::IC, None, &[0, 2], &mut rng);
        rr.sort_unstable();
        assert_eq!(rr, vec![0, 1, 2]);
        // duplicated roots are not double-counted
        let rr = s.sample(&g, Model::IC, None, &[0, 0], &mut rng);
        assert_eq!(rr, vec![0]);
    }

    #[test]
    fn lt_membership_rate_matches_choice_probability() {
        // v2 has two parents each with p = 0.3; P[0 ∈ RR(2)] = 0.3.
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 2, 0.3).unwrap();
        b.add_edge_p(1, 2, 0.3).unwrap();
        let g = b.build().unwrap();
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(6);
        let trials = 40_000;
        let mut hit0 = 0usize;
        let mut both = 0usize;
        for _ in 0..trials {
            let rr = s.sample(&g, Model::LT, None, &[2], &mut rng);
            if rr.contains(&0) {
                hit0 += 1;
            }
            if rr.contains(&0) && rr.contains(&1) {
                both += 1;
            }
        }
        let rate = hit0 as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
        assert_eq!(both, 0, "LT keeps at most one live in-edge");
    }

    #[test]
    fn lt_dead_chosen_source_maps_to_none() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut s = ReverseSampler::new(2);
        let mut rng = SmallRng::seed_from_u64(7);
        let alive = vec![false, true];
        let rr = s.sample(&g, Model::LT, Some(&alive), &[1], &mut rng);
        assert_eq!(rr, vec![1]);
    }

    #[test]
    fn scratch_is_clean_between_samples() {
        let g = path3(1.0);
        let mut s = ReverseSampler::new(3);
        let mut rng = SmallRng::seed_from_u64(8);
        let a = s.sample(&g, Model::IC, None, &[2], &mut rng);
        assert_eq!(a.len(), 3);
        let b = s.sample(&g, Model::IC, None, &[0], &mut rng);
        assert_eq!(b, vec![0]);
        let c = s.sample(&g, Model::IC, None, &[2], &mut rng);
        assert_eq!(c.len(), 3);
    }
}
