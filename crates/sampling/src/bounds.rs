//! Martingale concentration bounds (Appendix A).
//!
//! Lemma A.2 turns an observed coverage count `Λ_R(v)` into high-probability
//! bounds on the *expected* coverage `E[Λ_R(v)]`, each holding with failure
//! probability `e^{−a}`:
//!
//! ```text
//! lower:  E[Λ] ≥ (√(Λ + 2a/9) − √(a/2))² − a/18
//! upper:  E[Λ] ≤ (√(Λ + a/2) + √(a/2))²
//! ```
//!
//! These drive the stopping conditions of TRIM (Algorithm 2, Lines 9–11) and
//! TRIM-B (Algorithm 3).

/// Lower bound `Λ^l` of Lemma A.2 / Algorithm 2 Line 9 (clamped at 0).
pub fn coverage_lower_bound(observed: f64, a: f64) -> f64 {
    assert!(observed >= 0.0 && a >= 0.0, "inputs must be non-negative");
    let root = (observed + 2.0 * a / 9.0).sqrt() - (a / 2.0).sqrt();
    // When a dominates the observation the bound goes negative; expected
    // coverage is non-negative, so clamp.
    (root * root - a / 18.0).max(0.0)
}

/// Upper bound `Λ^u` of Lemma A.2 / Algorithm 2 Line 10.
pub fn coverage_upper_bound(observed: f64, a: f64) -> f64 {
    assert!(observed >= 0.0 && a >= 0.0, "inputs must be non-negative");
    let root = (observed + a / 2.0).sqrt() + (a / 2.0).sqrt();
    root * root
}

/// Chernoff-style sufficient sample size (Lemma A.1 rearranged): number of
/// Bernoulli samples with mean `mu` needed to have relative error at most
/// `eps` with probability `1 − delta`. Used to size the verification pools
/// of the baselines.
pub fn chernoff_samples(mu: f64, eps: f64, delta: f64) -> f64 {
    assert!(mu > 0.0 && eps > 0.0 && delta > 0.0 && delta < 1.0);
    (2.0 + 2.0 * eps / 3.0) * (1.0 / delta).ln() / (eps * eps * mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_below_observation_upper_above() {
        for &obs in &[0.0, 1.0, 10.0, 1000.0, 1e7] {
            for &a in &[0.1, 1.0, 5.0, 20.0] {
                let lo = coverage_lower_bound(obs, a);
                let hi = coverage_upper_bound(obs, a);
                assert!(lo <= obs + 1e-9, "lower({obs}, {a}) = {lo} > obs");
                assert!(hi >= obs - 1e-9, "upper({obs}, {a}) = {hi} < obs");
                assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn bounds_tighten_as_a_shrinks() {
        let obs = 500.0;
        let (lo1, hi1) = (
            coverage_lower_bound(obs, 10.0),
            coverage_upper_bound(obs, 10.0),
        );
        let (lo2, hi2) = (
            coverage_lower_bound(obs, 1.0),
            coverage_upper_bound(obs, 1.0),
        );
        assert!(lo2 > lo1);
        assert!(hi2 < hi1);
    }

    #[test]
    fn zero_a_is_exact() {
        assert_eq!(coverage_lower_bound(42.0, 0.0), 42.0);
        assert_eq!(coverage_upper_bound(42.0, 0.0), 42.0);
    }

    #[test]
    fn ratio_converges_with_scale() {
        // With fixed a, lower/upper ratio -> 1 as the observation grows: the
        // stopping rule of TRIM will eventually fire.
        let a = 12.0;
        let small = coverage_lower_bound(50.0, a) / coverage_upper_bound(50.0, a);
        let big = coverage_lower_bound(50_000.0, a) / coverage_upper_bound(50_000.0, a);
        assert!(big > small);
        assert!(big > 0.95, "ratio at 50k = {big}");
    }

    #[test]
    fn lower_bound_clamped_at_zero() {
        assert!(coverage_lower_bound(0.0, 100.0) < 1e-9);
    }

    #[test]
    fn empirical_coverage_lower_bound_holds() {
        // Monte-Carlo sanity check: Bernoulli(p), the lower bound on T·p̂
        // should rarely exceed T·p.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        let p = 0.1;
        let t = 2_000usize;
        let a = 6.0; // failure probability e^-6 ≈ 0.0025
        let mut violations = 0usize;
        let runs = 400;
        for _ in 0..runs {
            let hits = (0..t).filter(|_| rng.random::<f64>() < p).count() as f64;
            if coverage_lower_bound(hits, a) > p * t as f64 {
                violations += 1;
            }
        }
        assert!(
            violations <= 5,
            "lower bound violated {violations}/{runs} times (expected ≤ ~1)"
        );
    }

    #[test]
    fn empirical_coverage_upper_bound_holds() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(78);
        let p = 0.1;
        let t = 2_000usize;
        let a = 6.0;
        let mut violations = 0usize;
        let runs = 400;
        for _ in 0..runs {
            let hits = (0..t).filter(|_| rng.random::<f64>() < p).count() as f64;
            if coverage_upper_bound(hits, a) < p * t as f64 {
                violations += 1;
            }
        }
        assert!(
            violations <= 5,
            "upper bound violated {violations}/{runs} times"
        );
    }

    #[test]
    fn chernoff_samples_monotone() {
        assert!(chernoff_samples(0.1, 0.1, 0.01) > chernoff_samples(0.2, 0.1, 0.01));
        assert!(chernoff_samples(0.1, 0.05, 0.01) > chernoff_samples(0.1, 0.1, 0.01));
    }
}
