//! Multi-root RR sets with randomized rounding of the root count (§3.3).
//!
//! The estimator `Γ̃(S) = η_i · 1[S ∩ R ≠ ∅]` built on these sets satisfies
//! `(1 − 1/e) E[Γ(S)] ≤ E[Γ̃(S)] ≤ E[Γ(S)]` (Theorem 3.3 / Corollary 3.4)
//! *provided* the root count is drawn as
//!
//! ```text
//! k = ⌊n_i/η_i⌋ + 1  with probability  n_i/η_i − ⌊n_i/η_i⌋
//! k = ⌊n_i/η_i⌋      otherwise
//! ```
//!
//! independently per set, so that `E[k] = n_i/η_i`. The paper's §3.3 Remark
//! shows that fixing `k` at either bound gives strictly worse estimator
//! ranges (`[1 − 1/√e, 1]` and `[1 − 1/e, 2]`) — the fixed variants are kept
//! here behind [`RootCountDist`] for the ablation bench.

use crate::rr::ReverseSampler;
use rand::Rng;
use smin_diffusion::{DistinctDraw, Model, ResidualSnapshot, ResidualState};
use smin_graph::{Graph, NodeId};

/// How to pick the number of roots `k` for each mRR set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootCountDist {
    /// The paper's randomized rounding with `E[k] = n_i/η_i` (default).
    Randomized,
    /// Ablation: always `⌊n_i/η_i⌋` (estimator range `[1 − 1/√e, 1]`).
    FixedFloor,
    /// Ablation: always `⌊n_i/η_i⌋ + 1` (estimator range `[1 − 1/e, 2]`).
    FixedCeil,
}

/// Draws the root count for one mRR set over `n_alive` nodes and shortfall
/// `eta_i`, clamped to `[1, n_alive]`.
///
/// # Relation to the §3.3 guarantee
///
/// Theorem 3.3 needs `E[k] = n_i/η_i` exactly. The clamp does **not** disturb
/// that expectation as long as the caller maintains ASTI's loop invariant
/// `η_i ≤ n_i`. The driver validates `η ≤ n` up front and kills each selected
/// seed in the residual *unconditionally*, so the invariant holds whenever
/// the oracle is consistent — i.e. reports every selected seed among the
/// activated nodes, making each round shrink `η_i` at least as fast as `n_i`:
///
/// * lower clamp: `η_i ≤ n_i` gives `ratio ≥ 1`, hence `⌊ratio⌋ ≥ 1` and the
///   clamp to `1` never binds;
/// * upper clamp: `⌊ratio⌋ + 1 > n_i` requires `⌊ratio⌋ = n_i`, which forces
///   `η_i = 1` and an integral `ratio = n_i` — and then the fractional part is
///   `0`, so [`RootCountDist::Randomized`] draws `⌊ratio⌋ + 1` with
///   probability zero. Only the [`RootCountDist::FixedCeil`] ablation ever
///   hits this clamp, and its estimator range is off the paper's optimum by
///   design.
///
/// Outside the invariant (`η_i > n_i`, i.e. the shortfall cannot be met even
/// by activating every alive node), `ratio < 1` and the draw saturates at
/// `k = 1`, so `E[k] = 1 > n_i/η_i` and Theorem 3.3's premise no longer
/// holds. This regime is reachable on purpose: ASTI tolerates degenerate
/// oracles that report no activations (each round still removes the selected
/// seed from the residual, so `n_i` can sink below a stuck `η_i` before the
/// loop runs out of nodes and reports `reached = false`). Saturating keeps
/// the sampler total and the run terminating; the estimator merely loses its
/// approximation guarantee — which is vacuous there anyway, since even exact
/// coverage cannot reach `η_i > n_i`.
///
/// # Panics
/// Panics if `eta_i == 0` or `n_alive == 0` (the adaptive loop must have
/// stopped before this point).
pub fn sample_root_count(
    n_alive: usize,
    eta_i: usize,
    dist: RootCountDist,
    rng: &mut impl Rng,
) -> usize {
    assert!(
        eta_i > 0,
        "shortfall must be positive while selecting seeds"
    );
    assert!(n_alive > 0, "residual graph must be non-empty");
    let ratio = n_alive as f64 / eta_i as f64;
    let floor = ratio.floor() as usize;
    let frac = ratio - ratio.floor();
    let k = match dist {
        RootCountDist::Randomized => {
            if rng.random::<f64>() < frac {
                floor + 1
            } else {
                floor
            }
        }
        RootCountDist::FixedFloor => floor,
        RootCountDist::FixedCeil => floor + 1,
    };
    k.clamp(1, n_alive)
}

/// Samples mRR sets on the residual graph: draws `k`, picks `k` distinct
/// alive roots uniformly, and runs the consistent multi-root reverse BFS.
///
/// Root selection goes through an immutable [`ResidualSnapshot`] and an
/// index-based [`DistinctDraw`], so sampling never mutates the residual
/// state — one snapshot can feed any number of samplers concurrently.
pub struct MrrSampler {
    reverse: ReverseSampler,
    draw: DistinctDraw,
    roots_buf: Vec<NodeId>,
    /// Total edges examined across all samples (EPT accounting, Lemma 3.8).
    pub edges_examined: usize,
    /// Total sets sampled.
    pub sets_sampled: usize,
}

impl MrrSampler {
    /// Sampler scratch for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        MrrSampler {
            reverse: ReverseSampler::new(n),
            draw: DistinctDraw::new(),
            roots_buf: Vec::new(),
            edges_examined: 0,
            sets_sampled: 0,
        }
    }

    /// Samples one mRR set into `out` and returns the root count used.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_into(
        &mut self,
        g: &Graph,
        model: Model,
        residual: &ResidualState,
        eta_i: usize,
        dist: RootCountDist,
        rng: &mut impl Rng,
        out: &mut Vec<NodeId>,
    ) -> usize {
        self.sample_snapshot_into(g, model, &residual.snapshot(), eta_i, dist, rng, out)
    }

    /// Snapshot-based variant of [`MrrSampler::sample_into`]: the form the
    /// parallel sketch workers use, where the residual graph is borrowed
    /// immutably by every thread at once.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_snapshot_into(
        &mut self,
        g: &Graph,
        model: Model,
        snapshot: &ResidualSnapshot<'_>,
        eta_i: usize,
        dist: RootCountDist,
        rng: &mut impl Rng,
        out: &mut Vec<NodeId>,
    ) -> usize {
        let k = sample_root_count(snapshot.n_alive(), eta_i, dist, rng);
        self.draw.sample_from(snapshot, k, rng, &mut self.roots_buf);
        let cost = self.reverse.sample_into(
            g,
            model,
            Some(snapshot.alive_mask()),
            &self.roots_buf,
            rng,
            out,
        );
        self.edges_examined += cost;
        self.sets_sampled += 1;
        k
    }

    /// Samples a reverse-reachable set from explicit `roots` (no root-count
    /// draw) with the same accounting; used by the baselines for single-root
    /// RR sets.
    pub fn reverse_sample_into(
        &mut self,
        g: &Graph,
        model: Model,
        alive: &[bool],
        roots: &[NodeId],
        rng: &mut impl Rng,
        out: &mut Vec<NodeId>,
    ) -> usize {
        let cost = self
            .reverse
            .sample_into(g, model, Some(alive), roots, rng, out);
        self.edges_examined += cost;
        self.sets_sampled += 1;
        cost
    }

    /// Convenience wrapper allocating a fresh set.
    pub fn sample(
        &mut self,
        g: &Graph,
        model: Model,
        residual: &ResidualState,
        eta_i: usize,
        dist: RootCountDist,
        rng: &mut impl Rng,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.sample_into(g, model, residual, eta_i, dist, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    #[test]
    fn root_count_expectation_matches_ratio() {
        let mut rng = SmallRng::seed_from_u64(1);
        // n = 10, eta = 3 -> ratio 3.333..: k ∈ {3, 4}, E[k] = 10/3
        let trials = 60_000;
        let total: usize = (0..trials)
            .map(|_| sample_root_count(10, 3, RootCountDist::Randomized, &mut rng))
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 10.0 / 3.0).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn root_count_only_two_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = sample_root_count(10, 3, RootCountDist::Randomized, &mut rng);
            assert!(k == 3 || k == 4, "k = {k}");
        }
    }

    #[test]
    fn integer_ratio_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(
                sample_root_count(10, 5, RootCountDist::Randomized, &mut rng),
                2
            );
        }
    }

    #[test]
    fn expectation_exact_at_invariant_boundaries() {
        let mut rng = SmallRng::seed_from_u64(11);
        // eta_i = n_alive (ratio = 1): k must be exactly 1, never clamped up.
        for _ in 0..200 {
            assert_eq!(
                sample_root_count(7, 7, RootCountDist::Randomized, &mut rng),
                1
            );
        }
        // eta_i = 1 (ratio = n, integral): k must be exactly n — the upper
        // clamp exists but Randomized reaches floor+1 with probability 0.
        for _ in 0..200 {
            assert_eq!(
                sample_root_count(7, 1, RootCountDist::Randomized, &mut rng),
                7
            );
        }
    }

    #[test]
    fn shortfall_above_alive_count_saturates_at_one_root() {
        // eta_i > n_alive (reachable only with degenerate oracles): ratio < 1
        // and the draw saturates at k = 1. E[k] = n_i/eta_i no longer holds —
        // Theorem 3.3's premise is void here — but the sampler stays total.
        let mut rng = SmallRng::seed_from_u64(12);
        for dist in [
            RootCountDist::Randomized,
            RootCountDist::FixedFloor,
            RootCountDist::FixedCeil,
        ] {
            for _ in 0..100 {
                assert_eq!(sample_root_count(3, 5, dist, &mut rng), 1);
            }
        }
    }

    #[test]
    fn fixed_variants() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(
            sample_root_count(10, 3, RootCountDist::FixedFloor, &mut rng),
            3
        );
        assert_eq!(
            sample_root_count(10, 3, RootCountDist::FixedCeil, &mut rng),
            4
        );
    }

    #[test]
    fn clamped_to_alive_count() {
        let mut rng = SmallRng::seed_from_u64(5);
        // eta = 1 -> ratio = n; ceil would exceed n, must clamp
        assert_eq!(
            sample_root_count(4, 1, RootCountDist::FixedCeil, &mut rng),
            4
        );
        assert_eq!(
            sample_root_count(1, 1, RootCountDist::Randomized, &mut rng),
            1
        );
    }

    #[test]
    #[should_panic(expected = "shortfall must be positive")]
    fn zero_eta_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let _ = sample_root_count(5, 0, RootCountDist::Randomized, &mut rng);
    }

    #[test]
    fn mrr_sets_contain_only_alive_nodes() {
        let mut b = GraphBuilder::new(6);
        for u in 0..5u32 {
            b.add_edge_p(u, u + 1, 0.8).unwrap();
        }
        let g = b.build().unwrap();
        let mut res = ResidualState::new(6);
        res.kill_all(&[0, 3]);
        let mut sampler = MrrSampler::new(6);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let set = sampler.sample(&g, Model::IC, &res, 2, RootCountDist::Randomized, &mut rng);
            assert!(!set.is_empty(), "roots are alive so the set is non-empty");
            assert!(set.iter().all(|&u| res.is_alive(u)));
        }
        assert_eq!(sampler.sets_sampled, 200);
    }

    #[test]
    fn estimator_is_binary_eta_indicator() {
        // Estimator semantics: Γ̃(S) = η·1[S ∩ R ≠ ∅]; verified here via the
        // hit-rate of a singleton on the full graph with p = 1: every set
        // contains the whole ancestor closure of its roots, so a universal
        // source node is always hit.
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 1.0).unwrap();
        b.add_edge_p(0, 2, 1.0).unwrap();
        b.add_edge_p(0, 3, 1.0).unwrap();
        let g = b.build().unwrap();
        let res = ResidualState::new(4);
        let mut sampler = MrrSampler::new(4);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            let set = sampler.sample(&g, Model::IC, &res, 2, RootCountDist::Randomized, &mut rng);
            assert!(set.contains(&0), "node 0 reaches every root");
        }
    }
}
