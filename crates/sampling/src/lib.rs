//! # smin-sampling
//!
//! Reverse-reachable set machinery (§3.2–3.3 of the paper):
//!
//! * [`rr`] — classic single-root RR sets (Borgs et al.), used by the
//!   AdaptIM and ATEUC baselines;
//! * [`mrr`] — the paper's multi-root RR sets with randomized rounding of
//!   the root count (`E[k] = n_i/η_i`), the sampler that makes *truncated*
//!   spread estimation accurate (Theorem 3.3);
//! * [`pool`] — a columnar sketch pool (flat CSR sets + chunked-arena
//!   inverted index) with incremental coverage counts, supporting the
//!   argmax and greedy-cover queries of TRIM / TRIM-B;
//! * [`coverage`] — the shared [`CoverageEngine`](coverage::CoverageEngine):
//!   one marginal-maintenance implementation behind TRIM's argmax, eager
//!   greedy, CELF lazy greedy (the default), and the bound-driven greedy of
//!   the non-adaptive baselines, with the `ρ_b = 1 − (1−1/b)^b` guarantee;
//! * [`bounds`] — the martingale concentration bounds of Appendix A
//!   (Lemma A.2) that drive the stopping rules;
//! * [`parallel`] — deterministic multi-threaded sketch generation
//!   (`std::thread` scoped workers + channels, chunked work-stealing) with
//!   counter-derived per-set RNG streams, so the pool is bit-identical for
//!   any thread count.

#![forbid(unsafe_code)]

pub mod bounds;
pub mod coverage;
pub mod mrr;
pub mod parallel;
pub mod pool;
pub mod rr;

pub use coverage::{greedy_max_coverage, lazy_greedy_max_coverage, CoverageEngine, GreedyCover};
pub use mrr::{sample_root_count, MrrSampler, RootCountDist};
pub use parallel::{resolve_threads, GenStats, SketchGenPool, SketchJob};
pub use pool::{SetsOf, SketchPool};
pub use rr::ReverseSampler;
