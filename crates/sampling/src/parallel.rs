//! Deterministic parallel (m)RR sketch generation.
//!
//! TRIM spends nearly all of its time on Algorithm 2 line 6 and the
//! subsequent doublings — generating mRR sets — and §3.3's sampling is
//! independent per set, so the work is embarrassingly parallel. With no
//! external thread-pool crates available offline, this module builds one
//! from `std::thread` scoped workers plus `mpsc` channels:
//!
//! * the target range of set indices is split into chunks, and workers
//!   *steal* chunks from a shared atomic cursor (dynamic scheduling — a
//!   worker stuck on an expensive chunk never blocks the others);
//! * each finished chunk is shipped to the caller's thread over a channel
//!   as a flattened node buffer (one allocation per chunk, not per set);
//! * the caller appends chunks to the [`SketchPool`] strictly in index
//!   order, streaming as soon as the next-needed chunk lands.
//!
//! # Determinism
//!
//! Every sketch draws from its **own counter-derived RNG stream**:
//! set index `i` in a generation round is sampled with
//! `SmallRng::seed_from_u64(base_seed ^ i)` (the SplitMix64 finalizer inside
//! `seed_from_u64` decorrelates adjacent streams). Chunk boundaries and
//! thread scheduling therefore affect only *when* a set is sampled, never
//! *what* is sampled — the generated pool, and hence every downstream seed
//! selection, is bit-identical for any thread count, including the
//! sequential fast path.

use crate::mrr::{sample_root_count, RootCountDist};
use crate::pool::SketchPool;
use crate::rr::ReverseSampler;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smin_diffusion::{DistinctDraw, Model, ResidualSnapshot};
use smin_graph::{Graph, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the default worker count (used by CI to
/// exercise both the sequential and the parallel path).
pub const THREADS_ENV: &str = "SMIN_THREADS";

/// Below this many sets the scheduling overhead outweighs the parallelism
/// and generation runs inline on the caller's thread. Purely a performance
/// knob: the output is identical either way.
const MIN_PARALLEL_SETS: usize = 128;

/// Resolves the worker count: an explicit request wins, then the
/// [`THREADS_ENV`] override, then [`std::thread::available_parallelism`].
/// Always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(t) = explicit {
        return t.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

/// Everything a worker needs to sample one sketch, borrowed immutably so
/// the whole job is `Sync` and shareable across the scope.
#[derive(Clone, Copy)]
pub struct SketchJob<'a> {
    /// The base graph.
    pub graph: &'a Graph,
    /// Diffusion model.
    pub model: Model,
    /// Immutable view of the residual graph `G_i`.
    pub snapshot: ResidualSnapshot<'a>,
    /// Current shortfall `η_i` (drives the root-count draw).
    pub eta_i: usize,
    /// Root-count distribution (§3.3 randomized rounding by default).
    pub dist: RootCountDist,
    /// Base seed of the round; set `i` uses the stream `base_seed ^ i`.
    pub base_seed: u64,
}

impl SketchJob<'_> {
    /// The RNG stream for sketch index `idx`.
    #[inline]
    fn rng_for(&self, idx: usize) -> SmallRng {
        SmallRng::seed_from_u64(self.base_seed ^ idx as u64)
    }
}

/// Per-worker scratch: reverse-BFS state, root-draw stamps, and buffers.
/// Reused across generation calls so the hot path stays allocation-free.
struct WorkerScratch {
    reverse: ReverseSampler,
    draw: DistinctDraw,
    roots: Vec<NodeId>,
    set_buf: Vec<NodeId>,
}

impl WorkerScratch {
    fn new(n: usize) -> Self {
        WorkerScratch {
            reverse: ReverseSampler::new(n),
            draw: DistinctDraw::new(),
            roots: Vec::new(),
            set_buf: Vec::new(),
        }
    }

    /// Samples sketch `idx` into `self.set_buf`; returns edges examined.
    /// Fully monomorphized over [`SmallRng`] — no dynamic dispatch anywhere
    /// in the innermost sampling loop.
    fn sample_one(&mut self, job: &SketchJob<'_>, idx: usize) -> usize {
        let mut rng = job.rng_for(idx);
        let k = sample_root_count(job.snapshot.n_alive(), job.eta_i, job.dist, &mut rng);
        self.draw
            .sample_from(&job.snapshot, k, &mut rng, &mut self.roots);
        self.reverse.sample_into(
            job.graph,
            job.model,
            Some(job.snapshot.alive_mask()),
            &self.roots,
            &mut rng,
            &mut self.set_buf,
        )
    }
}

/// One finished chunk of sketches, flattened: set `j` of the chunk spans
/// `nodes[offs[j]..offs[j + 1]]`.
struct SketchChunk {
    ordinal: usize,
    nodes: Vec<NodeId>,
    offs: Vec<usize>,
    edges_examined: usize,
}

/// Accounting for one generation call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Sets appended to the pool.
    pub sets_generated: usize,
    /// Total edges examined across all sets (EPT accounting, Lemma 3.8).
    pub edges_examined: usize,
}

/// Reusable sketch-generation pool: owns one [`WorkerScratch`] per worker
/// (grown lazily to the largest thread count seen) and schedules chunked
/// generation over scoped `std::thread` workers.
pub struct SketchGenPool {
    n: usize,
    workers: Vec<WorkerScratch>,
}

impl SketchGenPool {
    /// Generation pool for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        SketchGenPool {
            n,
            workers: Vec::new(),
        }
    }

    /// Grows the pool from `pool.len()` to `target` sets (no-op if already
    /// there), sampling each set from its counter-derived RNG stream and
    /// appending in index order. `threads` is the worker count to use (see
    /// [`resolve_threads`]); the result is identical for every value.
    pub fn generate(
        &mut self,
        job: &SketchJob<'_>,
        target: usize,
        threads: usize,
        pool: &mut SketchPool,
    ) -> GenStats {
        let from = pool.len();
        if target <= from {
            return GenStats::default();
        }
        let total = target - from;
        let threads = threads.max(1);
        // Scratch is grown to the count actually used (1 here, the post-chunk
        // worker count in `generate_parallel`): each WorkerScratch carries
        // node-count-sized buffers, so over-provisioning is real memory.
        self.ensure_workers(1);

        if threads == 1 || total < MIN_PARALLEL_SETS {
            return self.generate_sequential(job, from, target, pool);
        }
        self.generate_parallel(job, from, target, threads, pool)
    }

    fn ensure_workers(&mut self, count: usize) {
        while self.workers.len() < count {
            self.workers.push(WorkerScratch::new(self.n));
        }
    }

    /// Inline fast path: same per-set RNG streams, no thread machinery.
    fn generate_sequential(
        &mut self,
        job: &SketchJob<'_>,
        from: usize,
        target: usize,
        pool: &mut SketchPool,
    ) -> GenStats {
        let w = &mut self.workers[0];
        let mut stats = GenStats::default();
        for idx in from..target {
            stats.edges_examined += w.sample_one(job, idx);
            pool.add_set(&w.set_buf);
            stats.sets_generated += 1;
        }
        stats
    }

    /// Scoped workers steal fixed-size chunks from an atomic cursor and ship
    /// flattened results home over a channel; the caller's thread appends
    /// them to the pool in chunk order as they complete.
    fn generate_parallel(
        &mut self,
        job: &SketchJob<'_>,
        from: usize,
        target: usize,
        threads: usize,
        pool: &mut SketchPool,
    ) -> GenStats {
        let total = target - from;
        // ~4 chunks per worker balances stealing granularity against
        // per-chunk channel traffic; clamped so tiny chunks never dominate.
        let chunk = (total / (threads * 4)).clamp(16, 1024);
        let n_chunks = total.div_ceil(chunk);
        let threads = threads.min(n_chunks);
        self.ensure_workers(threads);

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<SketchChunk>();
        let mut stats = GenStats::default();

        std::thread::scope(|scope| {
            for w in self.workers[..threads].iter_mut() {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || {
                    loop {
                        let ordinal = cursor.fetch_add(1, Ordering::Relaxed);
                        if ordinal >= n_chunks {
                            break;
                        }
                        let start = from + ordinal * chunk;
                        let end = (start + chunk).min(target);
                        let mut nodes = Vec::new();
                        let mut offs = Vec::with_capacity(end - start + 1);
                        offs.push(0);
                        let mut edges_examined = 0;
                        for idx in start..end {
                            edges_examined += w.sample_one(job, idx);
                            nodes.extend_from_slice(&w.set_buf);
                            offs.push(nodes.len());
                        }
                        if tx
                            .send(SketchChunk {
                                ordinal,
                                nodes,
                                offs,
                                edges_examined,
                            })
                            .is_err()
                        {
                            break; // receiver gone: the caller is unwinding
                        }
                    }
                });
            }
            drop(tx);

            // Stream chunks into the pool in index order.
            let mut pending: Vec<Option<SketchChunk>> = (0..n_chunks).map(|_| None).collect();
            let mut next = 0usize;
            for done in rx {
                let ordinal = done.ordinal;
                pending[ordinal] = Some(done);
                while next < n_chunks {
                    let Some(ch) = pending[next].take() else {
                        break;
                    };
                    for w in ch.offs.windows(2) {
                        pool.add_set(&ch.nodes[w[0]..w[1]]);
                        stats.sets_generated += 1;
                    }
                    stats.edges_examined += ch.edges_examined;
                    next += 1;
                }
            }
        });
        debug_assert_eq!(pool.len(), target, "all chunks must have arrived");
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_diffusion::ResidualState;

    fn test_graph(n: usize) -> Graph {
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        let pairs = smin_graph::generators::chung_lu_directed(n, n * 4, 2.1, &mut rng);
        smin_graph::generators::assemble(
            n,
            &pairs,
            true,
            smin_graph::WeightModel::WeightedCascade,
            &mut rng,
        )
        .unwrap()
    }

    fn dump(pool: &SketchPool) -> Vec<Vec<NodeId>> {
        (0..pool.len() as u32)
            .map(|i| pool.set(i).to_vec())
            .collect()
    }

    fn generate_with(threads: usize, target: usize) -> (Vec<Vec<NodeId>>, GenStats) {
        let g = test_graph(300);
        let mut residual = ResidualState::new(300);
        residual.kill_all(&[0, 7, 42]);
        let job = SketchJob {
            graph: &g,
            model: Model::IC,
            snapshot: residual.snapshot(),
            eta_i: 25,
            dist: RootCountDist::Randomized,
            base_seed: 0xDEAD_BEEF,
        };
        let mut gen = SketchGenPool::new(300);
        let mut pool = SketchPool::new(300);
        let stats = gen.generate(&job, target, threads, &mut pool);
        (dump(&pool), stats)
    }

    #[test]
    fn identical_output_across_thread_counts() {
        // 600 sets clears MIN_PARALLEL_SETS so threads > 1 really run the
        // chunked path; the pool must be bit-identical regardless.
        let (base, base_stats) = generate_with(1, 600);
        assert_eq!(base.len(), 600);
        for threads in [2, 3, 8] {
            let (out, stats) = generate_with(threads, 600);
            assert_eq!(out, base, "{threads} threads diverged from sequential");
            assert_eq!(
                stats, base_stats,
                "accounting diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn incremental_growth_matches_one_shot() {
        // grow_to(θ◦) then repeated doubling must equal a single generate
        // to the same target — set identity depends only on the index.
        let g = test_graph(200);
        let residual = ResidualState::new(200);
        let job = SketchJob {
            graph: &g,
            model: Model::IC,
            snapshot: residual.snapshot(),
            eta_i: 10,
            dist: RootCountDist::Randomized,
            base_seed: 99,
        };
        let mut gen = SketchGenPool::new(200);
        let mut stepped = SketchPool::new(200);
        for target in [5usize, 10, 20, 40, 200, 400] {
            gen.generate(&job, target, 4, &mut stepped);
        }
        let mut oneshot = SketchPool::new(200);
        gen.generate(&job, 400, 2, &mut oneshot);
        assert_eq!(dump(&stepped), dump(&oneshot));
    }

    #[test]
    fn sets_contain_only_alive_nodes() {
        let g = test_graph(150);
        let mut residual = ResidualState::new(150);
        residual.kill_all(&[3, 5, 8, 13, 21, 34, 55, 89]);
        let job = SketchJob {
            graph: &g,
            model: Model::LT,
            snapshot: residual.snapshot(),
            eta_i: 12,
            dist: RootCountDist::Randomized,
            base_seed: 7,
        };
        let mut gen = SketchGenPool::new(150);
        let mut pool = SketchPool::new(150);
        gen.generate(&job, 300, 4, &mut pool);
        assert_eq!(pool.len(), 300);
        for id in 0..300u32 {
            assert!(
                pool.set(id).iter().all(|&u| residual.is_alive(u)),
                "set {id} contains a dead node"
            );
            assert!(
                !pool.set(id).is_empty(),
                "roots are alive so sets are non-empty"
            );
        }
    }

    #[test]
    fn generate_is_idempotent_at_target() {
        let g = test_graph(100);
        let residual = ResidualState::new(100);
        let job = SketchJob {
            graph: &g,
            model: Model::IC,
            snapshot: residual.snapshot(),
            eta_i: 5,
            dist: RootCountDist::Randomized,
            base_seed: 1,
        };
        let mut gen = SketchGenPool::new(100);
        let mut pool = SketchPool::new(100);
        gen.generate(&job, 50, 2, &mut pool);
        let stats = gen.generate(&job, 50, 2, &mut pool);
        assert_eq!(stats, GenStats::default());
        assert_eq!(pool.len(), 50);
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit zero clamps to one");
        assert!(resolve_threads(None) >= 1);
    }
}
