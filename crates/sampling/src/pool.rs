//! Sketch pool: columnar storage for sampled (m)RR sets with incremental
//! coverage counts.
//!
//! TRIM needs `argmax_v Λ_R(v)` after every doubling; TRIM-B additionally
//! needs greedy maximum coverage, which requires the node→sets inverted
//! index. Both are maintained incrementally as sets arrive so a doubling
//! never re-scans old sets.
//!
//! # Memory layout
//!
//! Everything is struct-of-arrays over a handful of flat buffers — no
//! per-node or per-set heap allocations:
//!
//! * `set_nodes` + `set_off` — the sets themselves, flattened CSR-style;
//! * the node→sets inverted index lives in one **chunked arena**: each node
//!   owns a linked list of chunks (a `next` pointer followed by set-ids)
//!   inside a single `Vec<u32>`. Chunk capacities grow geometrically
//!   ([`INIT_CAP`] ids, doubling per link up to [`MAX_CAP`]), so a node in
//!   `k` sets is spread over `O(log k)` chunks — the list walk is a handful
//!   of pointer-chases into mostly-contiguous slices, not one dependent
//!   load per entry. Appending a set touches only each member's tail chunk,
//!   and `reset` is a truncation instead of `n` individual `Vec::clear`s.
//!   The arena replaces the former `Vec<Vec<u32>>` (one heap allocation per
//!   node, realloc churn on every doubling) that dominated pool rebuild
//!   cost in the doubling loops.
//!
//! The pool is rebuilt and re-queried hundreds of times per adaptive run
//! (the doubling structure of Algorithm 2/3), which is exactly the reuse
//! pattern the arena is shaped for: capacity learned in round one is kept
//! forever.

use smin_graph::cast::u32_of;
use smin_graph::{GenStamp, NodeId};
use std::cell::RefCell;

/// Ids in a node's first chunk: one cache line including the `next` pointer.
const INIT_CAP: u32 = 15;
/// Chunk-capacity ceiling (16 KiB chunks); `next_cap` doubles up to here.
const MAX_CAP: u32 = 4095;
/// Null chunk reference (word index into the arena).
const NONE: u32 = u32::MAX;

/// Capacity of the chunk allocated after one of capacity `cap`:
/// 15 → 31 → 63 → … → [`MAX_CAP`]. Both the appender and the iterator derive
/// the sequence from this one function, so no capacity header is stored.
#[inline]
fn next_cap(cap: u32) -> u32 {
    (cap * 2 + 1).min(MAX_CAP)
}

/// A pool of reverse-reachable sets over nodes `0..n`.
#[derive(Clone, Debug)]
pub struct SketchPool {
    n: usize,
    /// Flattened node lists, one slice per set.
    set_nodes: Vec<NodeId>,
    set_off: Vec<usize>,
    /// Chunked arena holding every node's inverted-index list. A chunk is
    /// `[next, id, id, …]`; references are word indices into this vector.
    arena: Vec<u32>,
    /// First chunk of each node's list ([`NONE`] when empty).
    head: Vec<u32>,
    /// Last chunk of each node's list (append target).
    tail: Vec<u32>,
    /// Capacity of each node's tail chunk.
    tail_cap: Vec<u32>,
    /// Free id slots remaining in each node's tail chunk.
    tail_free: Vec<u32>,
    /// `coverage[v] = Λ_R(v)`, the number of sets containing `v`.
    coverage: Vec<u32>,
    /// Nodes with non-zero coverage, in first-touch order. Lets `argmax` and
    /// `reset` run in O(touched) instead of O(n) — essential when the pool is
    /// reused across hundreds of adaptive rounds on a multi-million-node
    /// graph.
    touched: Vec<NodeId>,
    /// Sets that were sampled empty (all roots dead) still count toward
    /// `len()` — the estimator treats them as covering nothing.
    empty_sets: usize,
    /// Interior mutability keeps `coverage_of_set` a `&self` query (it is
    /// pure) while letting it reuse the stamp buffer across calls.
    seen: RefCell<GenStamp>,
}

impl SketchPool {
    /// An empty pool over `n` nodes.
    pub fn new(n: usize) -> Self {
        SketchPool {
            n,
            set_nodes: Vec::new(),
            set_off: vec![0],
            arena: Vec::new(),
            head: vec![NONE; n],
            tail: vec![NONE; n],
            tail_cap: vec![0; n],
            tail_free: vec![0; n],
            coverage: vec![0; n],
            touched: Vec::new(),
            empty_sets: 0,
            seen: RefCell::new(GenStamp::new()),
        }
    }

    /// Empties the pool keeping all allocations, in O(touched + sets).
    ///
    /// This is the pool-recycling contract the service layer builds on: a
    /// reset pool must *retain* every buffer's capacity (arena, flattened
    /// sets, per-node columns), so per-request rebuilds on a warm pool
    /// perform no reallocation. Debug builds assert that [`heap_bytes`]
    /// never shrinks across a reset.
    ///
    /// [`heap_bytes`]: SketchPool::heap_bytes
    pub fn reset(&mut self) {
        #[cfg(debug_assertions)]
        let bytes_before = self.heap_bytes();
        for &v in &self.touched {
            self.coverage[v as usize] = 0;
            self.head[v as usize] = NONE;
            self.tail[v as usize] = NONE;
            self.tail_cap[v as usize] = 0;
            self.tail_free[v as usize] = 0;
        }
        self.touched.clear();
        self.arena.clear();
        self.set_nodes.clear();
        self.set_off.clear();
        self.set_off.push(0);
        self.empty_sets = 0;
        #[cfg(debug_assertions)]
        debug_assert!(
            self.heap_bytes() >= bytes_before,
            "SketchPool::reset released capacity ({} -> {} bytes); recycled \
             pools must keep their arenas",
            bytes_before,
            self.heap_bytes()
        );
    }

    /// Number of sets `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.set_off.len() - 1
    }

    /// `true` when no sets have been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of nodes the pool indexes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total of all set sizes (drives the greedy cover cost).
    #[inline]
    pub fn total_size(&self) -> usize {
        self.set_nodes.len()
    }

    /// Heap bytes currently held by the pool's buffers (arena, flattened
    /// sets, per-node columns). Benchmarks report this to track the memory
    /// side of the arena layout.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.set_nodes.capacity() * size_of::<NodeId>()
            + self.set_off.capacity() * size_of::<usize>()
            + self.arena.capacity() * size_of::<u32>()
            + self.head.capacity() * size_of::<u32>()
            + self.tail.capacity() * size_of::<u32>()
            + self.tail_cap.capacity() * size_of::<u32>()
            + self.tail_free.capacity() * size_of::<u32>()
            + self.coverage.capacity() * size_of::<u32>()
            + self.touched.capacity() * size_of::<NodeId>()
    }

    /// Allocates one fresh chunk of `cap` ids, returning its word index.
    #[inline]
    fn alloc_chunk(&mut self, cap: u32) -> u32 {
        let idx = self.arena.len();
        // Chunk references are u32 word indices; the arena would need 16 GiB
        // before this fires.
        assert!(
            idx + cap as usize + 1 < NONE as usize,
            "sketch-pool arena word index overflow"
        );
        self.arena.resize(idx + cap as usize + 1, NONE);
        u32_of(idx)
    }

    /// Adds one set; duplicates within `nodes` must already be removed
    /// (the samplers guarantee this).
    pub fn add_set(&mut self, nodes: &[NodeId]) {
        let id = self.len();
        // The inverted index stores set ids as u32; θ_max beyond u32::MAX
        // would silently alias sets if this ever truncated.
        assert!(
            id < u32::MAX as usize,
            "SketchPool holds {id} sets; adding more would overflow the u32 set-id space"
        );
        let id = u32_of(id);
        for &v in nodes {
            debug_assert!((v as usize) < self.n);
            let vi = v as usize;
            if self.tail_free[vi] == 0 {
                // tail chunk full (or list empty): link in a fresh chunk,
                // doubling the capacity so heavy nodes stay O(log k) chunks
                let cap = if self.coverage[vi] == 0 {
                    INIT_CAP
                } else {
                    next_cap(self.tail_cap[vi])
                };
                let chunk = self.alloc_chunk(cap);
                if self.coverage[vi] == 0 {
                    self.head[vi] = chunk;
                    self.touched.push(v);
                } else {
                    self.arena[self.tail[vi] as usize] = chunk;
                }
                self.tail[vi] = chunk;
                self.tail_cap[vi] = cap;
                self.tail_free[vi] = cap;
            }
            let fill = self.tail_cap[vi] - self.tail_free[vi];
            self.arena[self.tail[vi] as usize + 1 + fill as usize] = id;
            self.tail_free[vi] -= 1;
            self.coverage[vi] += 1;
        }
        if nodes.is_empty() {
            self.empty_sets += 1;
        }
        self.set_nodes.extend_from_slice(nodes);
        self.set_off.push(self.set_nodes.len());
    }

    /// The nodes of set `id`.
    #[inline]
    pub fn set(&self, id: u32) -> &[NodeId] {
        &self.set_nodes[self.set_off[id as usize]..self.set_off[id as usize + 1]]
    }

    /// Sets containing `v`, in insertion order. Walks the node's chunk list
    /// inside the arena; the iterator is exact-sized (`Λ_R(v)` entries).
    #[inline]
    pub fn sets_of(&self, v: NodeId) -> SetsOf<'_> {
        SetsOf {
            arena: &self.arena,
            chunk: self.head[v as usize],
            cap: INIT_CAP,
            pos: 0,
            remaining: self.coverage[v as usize],
        }
    }

    /// `Λ_R(v)`.
    #[inline]
    pub fn coverage(&self, v: NodeId) -> u32 {
        self.coverage[v as usize]
    }

    /// Coverage counts for all nodes.
    #[inline]
    pub fn coverage_counts(&self) -> &[u32] {
        &self.coverage
    }

    /// `Λ_R(S)` for a set of nodes: number of sets hit by at least one
    /// member. Computed with a scan over the members' set lists against a
    /// reusable generation-stamped buffer — no allocation per call.
    pub fn coverage_of_set(&self, nodes: &[NodeId]) -> u32 {
        let mut seen = self.seen.borrow_mut();
        seen.begin(self.len());
        let mut c = 0u32;
        for &v in nodes {
            self.sets_of(v).for_each(|s| {
                if seen.mark(s as usize) {
                    c += 1;
                }
            });
        }
        c
    }

    /// Nodes that appear in at least one set (first-touch order).
    #[inline]
    pub fn touched_nodes(&self) -> &[NodeId] {
        &self.touched
    }

    /// `argmax_v Λ_R(v)`; `None` when the pool covers nothing. O(touched).
    ///
    /// Delegates to the coverage engine's shared candidate scan, so the tie
    /// rule (higher coverage, then smaller node id) is identical to the
    /// first pick of every greedy strategy in [`crate::coverage`].
    pub fn argmax(&self) -> Option<(NodeId, u32)> {
        crate::coverage::best_node(&self.touched, &self.coverage)
    }
}

/// Iterator over the sets containing one node (see [`SketchPool::sets_of`]).
#[derive(Clone, Debug)]
pub struct SetsOf<'a> {
    arena: &'a [u32],
    /// Word index of the current chunk ([`NONE`] only when exhausted).
    chunk: u32,
    /// Capacity of the current chunk (replayed via [`next_cap`], so no
    /// per-chunk header is needed).
    cap: u32,
    /// Ids consumed from the current chunk.
    pos: u32,
    remaining: u32,
}

impl Iterator for SetsOf<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        if self.pos == self.cap {
            self.chunk = self.arena[self.chunk as usize];
            self.cap = next_cap(self.cap);
            self.pos = 0;
        }
        let id = self.arena[self.chunk as usize + 1 + self.pos as usize];
        self.pos += 1;
        self.remaining -= 1;
        Some(id)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }

    /// Chunk-at-a-time traversal: internal iteration visits each chunk as a
    /// slice, so `for_each`/`fold` consumers (the greedy hot path) pay one
    /// `next`-pointer load per chunk — `O(log k)` chases for a node in `k`
    /// sets — and iterate contiguous memory in between.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, u32) -> B,
    {
        let mut acc = init;
        // A partially consumed chunk first (pos > 0 after external next()s).
        while self.remaining > 0 {
            let base = self.chunk as usize + 1 + self.pos as usize;
            let take = (self.cap - self.pos).min(self.remaining) as usize;
            for &id in &self.arena[base..base + take] {
                acc = f(acc, id);
            }
            self.remaining -= u32_of(take);
            if self.remaining > 0 {
                self.chunk = self.arena[self.chunk as usize];
                self.cap = next_cap(self.cap);
                self.pos = 0;
            }
        }
        acc
    }
}

impl ExactSizeIterator for SetsOf<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets_of_vec(pool: &SketchPool, v: NodeId) -> Vec<u32> {
        pool.sets_of(v).collect()
    }

    #[test]
    fn coverage_counts_incrementally() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1, 2]);
        pool.add_set(&[1]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.coverage(0), 1);
        assert_eq!(pool.coverage(1), 3);
        assert_eq!(pool.coverage(2), 1);
        assert_eq!(pool.coverage(3), 0);
        assert_eq!(pool.total_size(), 5);
    }

    #[test]
    fn argmax_picks_heaviest() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0]);
        pool.add_set(&[2]);
        pool.add_set(&[2]);
        assert_eq!(pool.argmax(), Some((2, 2)));
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_id() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[3]); // touched first, same coverage
        pool.add_set(&[1]);
        assert_eq!(pool.argmax(), Some((1, 1)));
    }

    #[test]
    fn argmax_none_when_empty() {
        let pool = SketchPool::new(3);
        assert_eq!(pool.argmax(), None);
        let mut pool = SketchPool::new(3);
        pool.add_set(&[]);
        assert_eq!(pool.argmax(), None);
        assert_eq!(pool.len(), 1, "empty sets still count toward |R|");
    }

    #[test]
    fn inverted_index_consistent() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0, 2]);
        pool.add_set(&[2]);
        assert_eq!(sets_of_vec(&pool, 2), vec![0, 1]);
        assert_eq!(sets_of_vec(&pool, 0), vec![0]);
        assert_eq!(pool.set(0), &[0, 2]);
        assert_eq!(pool.set(1), &[2]);
    }

    #[test]
    fn inverted_index_spans_many_chunks() {
        // One node in 100 sets: the chunk list is 100/7 ≈ 15 chunks long and
        // must replay ids in exact insertion order.
        let mut pool = SketchPool::new(2);
        for i in 0..100u32 {
            if i % 3 == 0 {
                pool.add_set(&[0, 1]);
            } else {
                pool.add_set(&[0]);
            }
        }
        assert_eq!(pool.coverage(0), 100);
        assert_eq!(sets_of_vec(&pool, 0), (0..100).collect::<Vec<_>>());
        assert_eq!(
            sets_of_vec(&pool, 1),
            (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>()
        );
        assert_eq!(pool.sets_of(0).len(), 100, "exact-size iterator");
    }

    #[test]
    fn reset_keeps_pool_usable() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1]);
        pool.reset();
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.coverage(1), 0);
        assert!(pool.touched_nodes().is_empty());
        assert_eq!(pool.argmax(), None);
        pool.add_set(&[2]);
        assert_eq!(pool.argmax(), Some((2, 1)));
        assert_eq!(sets_of_vec(&pool, 1), Vec::<u32>::new());
        assert_eq!(sets_of_vec(&pool, 2), vec![0]);
    }

    #[test]
    fn reset_retains_exact_capacity() {
        // The recycling contract: heap_bytes is invariant across reset, so a
        // warm pool refilled to the same size reallocates nothing.
        let mut pool = SketchPool::new(64);
        for i in 0..500u32 {
            pool.add_set(&[i % 64, (i + 1) % 64, (i + 7) % 64]);
        }
        let filled = pool.heap_bytes();
        pool.reset();
        assert_eq!(pool.heap_bytes(), filled, "reset must not release buffers");
        for i in 0..500u32 {
            pool.add_set(&[i % 64, (i + 1) % 64, (i + 7) % 64]);
        }
        assert_eq!(
            pool.heap_bytes(),
            filled,
            "identical refill on a recycled pool must not grow the heap"
        );
    }

    #[test]
    fn reset_then_refill_reuses_arena_without_leaks() {
        let mut pool = SketchPool::new(4);
        for _ in 0..30 {
            pool.add_set(&[0, 2]);
        }
        pool.reset();
        assert!(pool.heap_bytes() > 0, "capacity survives reset");
        for i in 0..10u32 {
            pool.add_set(&[2, 3]);
            assert_eq!(pool.coverage(2), i + 1);
        }
        assert_eq!(sets_of_vec(&pool, 0), Vec::<u32>::new());
        assert_eq!(sets_of_vec(&pool, 2), (0..10).collect::<Vec<_>>());
        assert_eq!(sets_of_vec(&pool, 3), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn touched_nodes_tracks_first_touch() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[2, 0]);
        pool.add_set(&[0, 3]);
        assert_eq!(pool.touched_nodes(), &[2, 0, 3]);
    }

    #[test]
    fn coverage_of_set_unions() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1, 2]);
        pool.add_set(&[3]);
        assert_eq!(pool.coverage_of_set(&[0, 2]), 2);
        assert_eq!(pool.coverage_of_set(&[1]), 2);
        assert_eq!(pool.coverage_of_set(&[0, 1, 2, 3]), 3);
        assert_eq!(pool.coverage_of_set(&[]), 0);
    }

    #[test]
    fn coverage_of_set_reuses_stamp_buffer_correctly() {
        // Repeated and interleaved queries must be independent: the stamp
        // buffer is shared across calls and must never leak marks.
        let mut pool = SketchPool::new(4);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1, 2]);
        for _ in 0..3 {
            assert_eq!(pool.coverage_of_set(&[1]), 2);
            assert_eq!(pool.coverage_of_set(&[0]), 1);
            assert_eq!(pool.coverage_of_set(&[0, 2]), 2);
        }
        // Growing the pool after queries must grow the buffer too.
        pool.add_set(&[3]);
        assert_eq!(pool.coverage_of_set(&[0, 1, 2, 3]), 3);
        // And reset + refill must not see stale stamps.
        pool.reset();
        pool.add_set(&[2]);
        assert_eq!(pool.coverage_of_set(&[2]), 1);
        assert_eq!(pool.coverage_of_set(&[0]), 0);
    }

    #[test]
    fn clone_keeps_queries_independent() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0, 1]);
        let cloned = pool.clone();
        assert_eq!(pool.coverage_of_set(&[0]), 1);
        assert_eq!(cloned.coverage_of_set(&[0]), 1);
        assert_eq!(cloned.coverage_of_set(&[0]), 1);
    }

    #[test]
    fn heap_bytes_tracks_growth() {
        let mut pool = SketchPool::new(100);
        let empty = pool.heap_bytes();
        for i in 0..50u32 {
            pool.add_set(&[i, i + 1, i + 2]);
        }
        assert!(pool.heap_bytes() > empty);
    }
}
