//! Sketch pool: stores sampled (m)RR sets with incremental coverage counts.
//!
//! TRIM needs `argmax_v Λ_R(v)` after every doubling; TRIM-B additionally
//! needs greedy maximum coverage, which requires the node→sets inverted
//! index. Both are maintained incrementally as sets arrive so a doubling
//! never re-scans old sets.

use smin_graph::{GenStamp, NodeId};
use std::cell::RefCell;

/// A pool of reverse-reachable sets over nodes `0..n`.
#[derive(Clone, Debug)]
pub struct SketchPool {
    n: usize,
    /// Flattened node lists, one slice per set.
    set_nodes: Vec<NodeId>,
    set_off: Vec<usize>,
    /// Inverted index: for each node, which sets contain it.
    node_sets: Vec<Vec<u32>>,
    /// `coverage[v] = Λ_R(v)`, the number of sets containing `v`.
    coverage: Vec<u32>,
    /// Nodes with non-zero coverage, in first-touch order. Lets `argmax` and
    /// `reset` run in O(touched) instead of O(n) — essential when the pool is
    /// reused across hundreds of adaptive rounds on a multi-million-node
    /// graph.
    touched: Vec<NodeId>,
    /// Sets that were sampled empty (all roots dead) still count toward
    /// `len()` — the estimator treats them as covering nothing.
    empty_sets: usize,
    /// Interior mutability keeps `coverage_of_set` a `&self` query (it is
    /// pure) while letting it reuse the stamp buffer across calls.
    seen: RefCell<GenStamp>,
}

impl SketchPool {
    /// An empty pool over `n` nodes.
    pub fn new(n: usize) -> Self {
        SketchPool {
            n,
            set_nodes: Vec::new(),
            set_off: vec![0],
            node_sets: vec![Vec::new(); n],
            coverage: vec![0; n],
            touched: Vec::new(),
            empty_sets: 0,
            seen: RefCell::new(GenStamp::new()),
        }
    }

    /// Empties the pool keeping all allocations, in O(touched + sets).
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.coverage[v as usize] = 0;
            self.node_sets[v as usize].clear();
        }
        self.touched.clear();
        self.set_nodes.clear();
        self.set_off.clear();
        self.set_off.push(0);
        self.empty_sets = 0;
    }

    /// Number of sets `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.set_off.len() - 1
    }

    /// `true` when no sets have been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of nodes the pool indexes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total of all set sizes (drives the greedy cover cost).
    #[inline]
    pub fn total_size(&self) -> usize {
        self.set_nodes.len()
    }

    /// Adds one set; duplicates within `nodes` must already be removed
    /// (the samplers guarantee this).
    pub fn add_set(&mut self, nodes: &[NodeId]) {
        let id = self.len();
        // The inverted index stores set ids as u32; θ_max beyond u32::MAX
        // would silently alias sets if this ever truncated.
        assert!(
            id < u32::MAX as usize,
            "SketchPool holds {id} sets; adding more would overflow the u32 set-id space"
        );
        let id = id as u32;
        for &v in nodes {
            debug_assert!((v as usize) < self.n);
            self.node_sets[v as usize].push(id);
            if self.coverage[v as usize] == 0 {
                self.touched.push(v);
            }
            self.coverage[v as usize] += 1;
        }
        if nodes.is_empty() {
            self.empty_sets += 1;
        }
        self.set_nodes.extend_from_slice(nodes);
        self.set_off.push(self.set_nodes.len());
    }

    /// The nodes of set `id`.
    #[inline]
    pub fn set(&self, id: u32) -> &[NodeId] {
        &self.set_nodes[self.set_off[id as usize]..self.set_off[id as usize + 1]]
    }

    /// Sets containing `v`.
    #[inline]
    pub fn sets_of(&self, v: NodeId) -> &[u32] {
        &self.node_sets[v as usize]
    }

    /// `Λ_R(v)`.
    #[inline]
    pub fn coverage(&self, v: NodeId) -> u32 {
        self.coverage[v as usize]
    }

    /// Coverage counts for all nodes.
    #[inline]
    pub fn coverage_counts(&self) -> &[u32] {
        &self.coverage
    }

    /// `Λ_R(S)` for a set of nodes: number of sets hit by at least one
    /// member. Computed with a scan over the members' set lists against a
    /// reusable generation-stamped buffer — no allocation per call.
    pub fn coverage_of_set(&self, nodes: &[NodeId]) -> u32 {
        let mut seen = self.seen.borrow_mut();
        seen.begin(self.len());
        let mut c = 0u32;
        for &v in nodes {
            for &s in self.sets_of(v) {
                if seen.mark(s as usize) {
                    c += 1;
                }
            }
        }
        c
    }

    /// Nodes that appear in at least one set (first-touch order).
    #[inline]
    pub fn touched_nodes(&self) -> &[NodeId] {
        &self.touched
    }

    /// `argmax_v Λ_R(v)` with ties broken toward the earlier-touched node;
    /// `None` when the pool covers nothing. O(touched).
    pub fn argmax(&self) -> Option<(NodeId, u32)> {
        let mut best: Option<(NodeId, u32)> = None;
        for &v in &self.touched {
            let c = self.coverage[v as usize];
            if best.is_none_or(|(_, bc)| c > bc) {
                best = Some((v, c));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_incrementally() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1, 2]);
        pool.add_set(&[1]);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.coverage(0), 1);
        assert_eq!(pool.coverage(1), 3);
        assert_eq!(pool.coverage(2), 1);
        assert_eq!(pool.coverage(3), 0);
        assert_eq!(pool.total_size(), 5);
    }

    #[test]
    fn argmax_picks_heaviest() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0]);
        pool.add_set(&[2]);
        pool.add_set(&[2]);
        assert_eq!(pool.argmax(), Some((2, 2)));
    }

    #[test]
    fn argmax_none_when_empty() {
        let pool = SketchPool::new(3);
        assert_eq!(pool.argmax(), None);
        let mut pool = SketchPool::new(3);
        pool.add_set(&[]);
        assert_eq!(pool.argmax(), None);
        assert_eq!(pool.len(), 1, "empty sets still count toward |R|");
    }

    #[test]
    fn inverted_index_consistent() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0, 2]);
        pool.add_set(&[2]);
        assert_eq!(pool.sets_of(2), &[0, 1]);
        assert_eq!(pool.sets_of(0), &[0]);
        assert_eq!(pool.set(0), &[0, 2]);
        assert_eq!(pool.set(1), &[2]);
    }

    #[test]
    fn reset_keeps_pool_usable() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1]);
        pool.reset();
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.coverage(1), 0);
        assert!(pool.touched_nodes().is_empty());
        assert_eq!(pool.argmax(), None);
        pool.add_set(&[2]);
        assert_eq!(pool.argmax(), Some((2, 1)));
        assert_eq!(pool.sets_of(1), &[] as &[u32]);
        assert_eq!(pool.sets_of(2), &[0]);
    }

    #[test]
    fn touched_nodes_tracks_first_touch() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[2, 0]);
        pool.add_set(&[0, 3]);
        assert_eq!(pool.touched_nodes(), &[2, 0, 3]);
    }

    #[test]
    fn coverage_of_set_unions() {
        let mut pool = SketchPool::new(4);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1, 2]);
        pool.add_set(&[3]);
        assert_eq!(pool.coverage_of_set(&[0, 2]), 2);
        assert_eq!(pool.coverage_of_set(&[1]), 2);
        assert_eq!(pool.coverage_of_set(&[0, 1, 2, 3]), 3);
        assert_eq!(pool.coverage_of_set(&[]), 0);
    }

    #[test]
    fn coverage_of_set_reuses_stamp_buffer_correctly() {
        // Repeated and interleaved queries must be independent: the stamp
        // buffer is shared across calls and must never leak marks.
        let mut pool = SketchPool::new(4);
        pool.add_set(&[0, 1]);
        pool.add_set(&[1, 2]);
        for _ in 0..3 {
            assert_eq!(pool.coverage_of_set(&[1]), 2);
            assert_eq!(pool.coverage_of_set(&[0]), 1);
            assert_eq!(pool.coverage_of_set(&[0, 2]), 2);
        }
        // Growing the pool after queries must grow the buffer too.
        pool.add_set(&[3]);
        assert_eq!(pool.coverage_of_set(&[0, 1, 2, 3]), 3);
        // And reset + refill must not see stale stamps.
        pool.reset();
        pool.add_set(&[2]);
        assert_eq!(pool.coverage_of_set(&[2]), 1);
        assert_eq!(pool.coverage_of_set(&[0]), 0);
    }

    #[test]
    fn clone_keeps_queries_independent() {
        let mut pool = SketchPool::new(3);
        pool.add_set(&[0, 1]);
        let cloned = pool.clone();
        assert_eq!(pool.coverage_of_set(&[0]), 1);
        assert_eq!(cloned.coverage_of_set(&[0]), 1);
        assert_eq!(cloned.coverage_of_set(&[0]), 1);
    }
}
