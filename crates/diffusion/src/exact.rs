//! Exact expectations by exhaustive realization enumeration.
//!
//! Only feasible for tiny graphs (the realization space is `2^m` for IC and
//! `Π_v (indeg(v) + 1)` for LT), but invaluable for validating the samplers:
//! Theorem 3.3's estimator bounds and the paper's Example 2.3 are checked
//! against these exact values in the test suites.

use crate::forward::ForwardSim;
use crate::model::Model;
use crate::realization::Realization;
use smin_graph::cast::u32_of;
use smin_graph::{Graph, NodeId};

/// Hard cap on the number of enumerated realizations (~4M) so that a misuse
/// on a big graph fails fast instead of running forever.
const MAX_WORLDS: f64 = 4_194_304.0;

/// Visits every IC realization of `g` with its probability. Probabilities
/// sum to 1 exactly (up to floating point).
pub fn for_each_ic_realization(g: &Graph, mut f: impl FnMut(&Realization, f64)) {
    let m = g.m();
    assert!(
        (m as f64).exp2() <= MAX_WORLDS,
        "2^{m} realizations is too many to enumerate"
    );
    let probs: Vec<f64> = g.edges().map(|(_, _, p)| p).collect();
    let mut live = vec![false; m];
    enum_ic(&probs, 0, 1.0, &mut live, &mut f);
}

fn enum_ic(
    probs: &[f64],
    e: usize,
    acc: f64,
    live: &mut Vec<bool>,
    f: &mut impl FnMut(&Realization, f64),
) {
    if e == probs.len() {
        // Cloning the status vector per world keeps the API simple; the
        // world count is capped so this is cheap in absolute terms.
        let phi = Realization::from_ic_statuses(live.clone());
        f(&phi, acc);
        return;
    }
    live[e] = true;
    enum_ic(probs, e + 1, acc * probs[e], live, f);
    live[e] = false;
    enum_ic(probs, e + 1, acc * (1.0 - probs[e]), live, f);
}

/// Visits every LT realization (per-node live in-edge choices) with its
/// probability.
pub fn for_each_lt_realization(g: &Graph, mut f: impl FnMut(&Realization, f64)) {
    let n = g.n();
    let mut worlds = 1.0f64;
    for v in 0..u32_of(n) {
        worlds *= (g.in_degree(v) + 1) as f64;
        assert!(
            worlds <= MAX_WORLDS,
            "too many LT realizations to enumerate"
        );
    }
    let mut chosen: Vec<Option<u32>> = vec![None; n];
    enum_lt(g, 0, 1.0, &mut chosen, &mut f);
}

fn enum_lt(
    g: &Graph,
    v: usize,
    acc: f64,
    chosen: &mut Vec<Option<u32>>,
    f: &mut impl FnMut(&Realization, f64),
) {
    if acc == 0.0 {
        return; // dead branch; skipping keeps the sum exact
    }
    if v == g.n() {
        let phi = Realization::from_lt_choices(chosen.clone());
        f(&phi, acc);
        return;
    }
    let mut none_mass = 1.0;
    for (_, p, e) in g.in_edges(v as NodeId) {
        none_mass -= p;
        chosen[v] = Some(e);
        enum_lt(g, v + 1, acc * p, chosen, f);
    }
    chosen[v] = None;
    enum_lt(g, v + 1, acc * none_mass.max(0.0), chosen, f);
}

/// Exact `E[I(S)]` by enumeration.
pub fn exact_expected_spread(g: &Graph, model: Model, seeds: &[NodeId]) -> f64 {
    let mut sim = ForwardSim::new(g.n());
    let mut total = 0.0;
    let mut visit = |phi: &Realization, p: f64| {
        total += p * sim.spread(g, phi, seeds) as f64;
    };
    match model {
        Model::IC => for_each_ic_realization(g, &mut visit),
        Model::LT => for_each_lt_realization(g, &mut visit),
    }
    total
}

/// Exact `E[Γ(S)] = E[min{I(S), η}]` by enumeration (Definition 2.2).
pub fn exact_expected_truncated(g: &Graph, model: Model, seeds: &[NodeId], eta: usize) -> f64 {
    let mut sim = ForwardSim::new(g.n());
    let mut total = 0.0;
    let mut visit = |phi: &Realization, p: f64| {
        total += p * sim.spread(g, phi, seeds).min(eta) as f64;
    };
    match model {
        Model::IC => for_each_ic_realization(g, &mut visit),
        Model::LT => for_each_lt_realization(g, &mut visit),
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use smin_graph::GraphBuilder;

    /// The Figure 2 graph of Example 2.3: v1→v2 and v1→v3 with p = 0.5,
    /// v2→v4 and v3→v4 with p = 1. Node ids: v1=0, v2=1, v3=2, v4=3.
    fn figure2() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(0, 2, 0.5).unwrap();
        b.add_edge_p(1, 3, 1.0).unwrap();
        b.add_edge_p(2, 3, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let g = figure2();
        let mut total = 0.0;
        for_each_ic_realization(&g, |_, p| total += p);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example_2_3_vanilla_spreads() {
        let g = figure2();
        // E[I(v1)] = 0.25·(3 + 3 + 4 + 1) = 2.75 — the *largest* vanilla
        // spread, which is exactly the trap described in the paper.
        assert!((exact_expected_spread(&g, Model::IC, &[0]) - 2.75).abs() < 1e-12);
        assert!((exact_expected_spread(&g, Model::IC, &[1]) - 2.0).abs() < 1e-12);
        assert!((exact_expected_spread(&g, Model::IC, &[2]) - 2.0).abs() < 1e-12);
        assert!((exact_expected_spread(&g, Model::IC, &[3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example_2_3_truncated_spreads() {
        let g = figure2();
        let eta = 2;
        // Truncated at η = 2 the ordering flips: v2/v3 (2.0) beat v1 (1.75).
        assert!((exact_expected_truncated(&g, Model::IC, &[0], eta) - 1.75).abs() < 1e-12);
        assert!((exact_expected_truncated(&g, Model::IC, &[1], eta) - 2.0).abs() < 1e-12);
        assert!((exact_expected_truncated(&g, Model::IC, &[2], eta) - 2.0).abs() < 1e-12);
        assert!((exact_expected_truncated(&g, Model::IC, &[3], eta) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncation_never_increases() {
        let g = figure2();
        for v in 0..4u32 {
            for eta in 1..=4 {
                let full = exact_expected_spread(&g, Model::IC, &[v]);
                let trunc = exact_expected_truncated(&g, Model::IC, &[v], eta);
                assert!(trunc <= full + 1e-12);
                assert!(trunc <= eta as f64 + 1e-12);
            }
        }
    }

    #[test]
    fn lt_enumeration_matches_hand_computation() {
        // 0 -> 1 with p 0.5; LT: node 1 keeps the edge with prob 0.5.
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut total = 0.0;
        for_each_lt_realization(&g, |_, p| total += p);
        assert!((total - 1.0).abs() < 1e-12);
        assert!((exact_expected_spread(&g, Model::LT, &[0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lt_and_ic_agree_on_deterministic_graph() {
        // all probabilities 1 and in-degree ≤ 1 → both models are plain
        // reachability.
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 1.0).unwrap();
        b.add_edge_p(1, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(exact_expected_spread(&g, Model::IC, &[0]), 3.0);
        assert_eq!(exact_expected_spread(&g, Model::LT, &[0]), 3.0);
    }

    #[test]
    fn mc_estimates_converge_to_exact() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let g = figure2();
        let mut rng = SmallRng::seed_from_u64(21);
        let mc = crate::spread::mc_expected_spread(&g, Model::IC, &[0], 60_000, &mut rng);
        assert!((mc - 2.75).abs() < 0.03, "mc = {mc}");
        let mct = crate::spread::mc_expected_truncated(&g, Model::IC, &[0], 2, 60_000, &mut rng);
        assert!((mct - 1.75).abs() < 0.03, "mc trunc = {mct}");
    }
}
