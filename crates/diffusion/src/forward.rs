//! Forward propagation: spread `I_ϕ(S)` on a realization and fresh-coin
//! simulation.
//!
//! [`ForwardSim`] owns reusable scratch buffers so repeated spread queries on
//! the same graph allocate nothing (the Monte-Carlo estimator calls it tens
//! of thousands of times).

use crate::model::Model;
use crate::realization::Realization;
use rand::Rng;
use smin_graph::{Graph, NodeId};

/// Reusable BFS scratch for forward spread computations over one graph.
pub struct ForwardSim {
    visited: Vec<bool>,
    /// Epoch trick: `visited` is only valid where `epoch_of == epoch`, so
    /// clearing between runs is O(touched), not O(n).
    touched: Vec<NodeId>,
    queue: Vec<NodeId>,
}

impl ForwardSim {
    /// Scratch sized for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        ForwardSim {
            visited: vec![false; n],
            touched: Vec::new(),
            queue: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for &u in &self.touched {
            self.visited[u as usize] = false;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Spread `I_ϕ(S)`: number of nodes reachable from `seeds` via live edges
    /// of `phi`.
    pub fn spread(&mut self, g: &Graph, phi: &Realization, seeds: &[NodeId]) -> usize {
        self.spread_restricted(g, phi, seeds, None)
    }

    /// Nodes reached (including the seeds), materialized.
    pub fn reachable(&mut self, g: &Graph, phi: &Realization, seeds: &[NodeId]) -> Vec<NodeId> {
        self.run(g, phi, seeds, None);
        self.touched.clone()
    }

    /// Marginal spread `I_ϕ(S | S_active)`: live-edge reachability restricted
    /// to nodes that are not already `active` (§2.3 — the marginal spread of
    /// `S` equals its spread in the residual graph). Seeds already active
    /// contribute nothing.
    pub fn spread_restricted(
        &mut self,
        g: &Graph,
        phi: &Realization,
        seeds: &[NodeId],
        active: Option<&[bool]>,
    ) -> usize {
        self.run(g, phi, seeds, active);
        self.touched.len()
    }

    /// As [`spread_restricted`](Self::spread_restricted) but returning the
    /// newly reached nodes (the "observe" step of Algorithm 1).
    pub fn reachable_restricted(
        &mut self,
        g: &Graph,
        phi: &Realization,
        seeds: &[NodeId],
        active: &[bool],
    ) -> Vec<NodeId> {
        self.run(g, phi, seeds, Some(active));
        self.touched.clone()
    }

    fn run(&mut self, g: &Graph, phi: &Realization, seeds: &[NodeId], active: Option<&[bool]>) {
        self.reset();
        let blocked = |u: NodeId| active.is_some_and(|a| a[u as usize]);
        for &s in seeds {
            if !self.visited[s as usize] && !blocked(s) {
                self.visited[s as usize] = true;
                self.touched.push(s);
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (e, v, _) in g.out_edges_indexed(u) {
                if !self.visited[v as usize] && !blocked(v) && phi.is_live(e, v) {
                    self.visited[v as usize] = true;
                    self.touched.push(v);
                    self.queue.push(v);
                }
            }
        }
    }

    /// Fresh-coin IC simulation (flips each touched edge once; equivalent in
    /// distribution to sampling a realization and running [`Self::spread`],
    /// but without materializing `O(m)` state).
    pub fn simulate_ic(&mut self, g: &Graph, seeds: &[NodeId], rng: &mut impl Rng) -> usize {
        self.reset();
        for &s in seeds {
            if !self.visited[s as usize] {
                self.visited[s as usize] = true;
                self.touched.push(s);
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (v, p) in g.out_edges(u) {
                if !self.visited[v as usize] && rng.random::<f64>() < p {
                    self.visited[v as usize] = true;
                    self.touched.push(v);
                    self.queue.push(v);
                }
            }
        }
        self.touched.len()
    }

    /// Fresh-choice LT simulation via the live-edge equivalence: each
    /// first-touched node draws its single live in-edge on demand.
    pub fn simulate_lt(&mut self, g: &Graph, seeds: &[NodeId], rng: &mut impl Rng) -> usize {
        // LT forward simulation by thresholds requires tracking accumulated
        // weight per node; the live-edge view is simpler and exactly
        // equivalent (Kempe et al. 2003): sample each node's choice lazily
        // and BFS forward over chosen edges. We do the reverse: BFS forward,
        // and for edge u -> v decide "did v choose u?" by drawing v's choice
        // once on first examination.
        let n = g.n();
        // chosen[v]: u32::MAX - 1 = undrawn, u32::MAX = drew none, else edge id.
        const UNDRAWN: u32 = u32::MAX - 1;
        const NONE: u32 = u32::MAX;
        let mut chosen = vec![UNDRAWN; n];

        self.reset();
        for &s in seeds {
            if !self.visited[s as usize] {
                self.visited[s as usize] = true;
                self.touched.push(s);
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for (e, v, _) in g.out_edges_indexed(u) {
                if self.visited[v as usize] {
                    continue;
                }
                if chosen[v as usize] == UNDRAWN {
                    let mut r = rng.random::<f64>();
                    chosen[v as usize] = NONE;
                    for (_, p, ein) in g.in_edges(v) {
                        if r < p {
                            chosen[v as usize] = ein;
                            break;
                        }
                        r -= p;
                    }
                }
                if chosen[v as usize] == e {
                    self.visited[v as usize] = true;
                    self.touched.push(v);
                    self.queue.push(v);
                }
            }
        }
        self.touched.len()
    }

    /// Dispatches on `model`.
    pub fn simulate(
        &mut self,
        g: &Graph,
        model: Model,
        seeds: &[NodeId],
        rng: &mut impl Rng,
    ) -> usize {
        match model {
            Model::IC => self.simulate_ic(g, seeds, rng),
            Model::LT => self.simulate_lt(g, seeds, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use smin_graph::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 1.0).unwrap();
        b.add_edge_p(1, 2, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn spread_follows_live_edges_only() {
        let g = path3();
        let mut sim = ForwardSim::new(3);
        let all_live = Realization::from_ic_statuses(vec![true, true]);
        assert_eq!(sim.spread(&g, &all_live, &[0]), 3);
        let first_blocked = Realization::from_ic_statuses(vec![false, true]);
        assert_eq!(sim.spread(&g, &first_blocked, &[0]), 1);
        assert_eq!(sim.spread(&g, &first_blocked, &[1]), 2);
    }

    #[test]
    fn restricted_spread_skips_active_nodes() {
        let g = path3();
        let mut sim = ForwardSim::new(3);
        let phi = Realization::from_ic_statuses(vec![true, true]);
        let active = vec![false, true, false];
        // 0 would reach 1 and 2, but 1 is active: propagation stops there —
        // paths through active nodes add nothing new (their live out-edges
        // already fired).
        assert_eq!(sim.spread_restricted(&g, &phi, &[0], Some(&active)), 1);
        // an already-active seed contributes nothing
        assert_eq!(sim.spread_restricted(&g, &phi, &[1], Some(&active)), 0);
    }

    #[test]
    fn reachable_returns_new_nodes() {
        let g = path3();
        let mut sim = ForwardSim::new(3);
        let phi = Realization::from_ic_statuses(vec![true, false]);
        let mut r = sim.reachable(&g, &phi, &[0]);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = path3();
        let mut sim = ForwardSim::new(3);
        let phi = Realization::from_ic_statuses(vec![false, false]);
        assert_eq!(sim.spread(&g, &phi, &[0, 0, 0]), 1);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = path3();
        let mut sim = ForwardSim::new(3);
        let phi = Realization::from_ic_statuses(vec![true, true]);
        assert_eq!(sim.spread(&g, &phi, &[0]), 3);
        assert_eq!(sim.spread(&g, &phi, &[2]), 1);
        assert_eq!(sim.spread(&g, &phi, &[0]), 3);
    }

    #[test]
    fn simulate_ic_rate_matches_edge_probability() {
        let mut b = GraphBuilder::new(2);
        b.add_edge_p(0, 1, 0.4).unwrap();
        let g = b.build().unwrap();
        let mut sim = ForwardSim::new(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 20_000;
        let hits: usize = (0..trials)
            .map(|_| sim.simulate_ic(&g, &[0], &mut rng) - 1)
            .sum();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.4).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn simulate_lt_rate_matches_choice_probability() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 2, 0.3).unwrap();
        b.add_edge_p(1, 2, 0.3).unwrap();
        let g = b.build().unwrap();
        let mut sim = ForwardSim::new(3);
        let mut rng = SmallRng::seed_from_u64(6);
        let trials = 20_000;
        // Seeding {0}: node 2 activates iff its single live in-edge is 0->2,
        // which happens with probability 0.3.
        let hits: usize = (0..trials)
            .map(|_| sim.simulate_lt(&g, &[0], &mut rng) - 1)
            .sum();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn lt_realization_spread_consistent_with_simulation_mean() {
        // line 0 -> 1 -> 2 with p = 0.5 each; E[I({0})] = 1 + 0.5 + 0.25.
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 0.5).unwrap();
        b.add_edge_p(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let mut sim = ForwardSim::new(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 40_000;
        let mut total_phi = 0usize;
        let mut total_sim = 0usize;
        for _ in 0..trials {
            let phi = Realization::sample(&g, Model::LT, &mut rng);
            total_phi += sim.spread(&g, &phi, &[0]);
            total_sim += sim.simulate_lt(&g, &[0], &mut rng);
        }
        let mean_phi = total_phi as f64 / trials as f64;
        let mean_sim = total_sim as f64 / trials as f64;
        assert!((mean_phi - 1.75).abs() < 0.03, "phi mean = {mean_phi}");
        assert!((mean_sim - 1.75).abs() < 0.03, "sim mean = {mean_sim}");
    }
}
