//! Observation logs: record and replay the select→observe history of an
//! adaptive campaign.
//!
//! A real deployment can't resample its world — once a batch is seeded the
//! observed cascade is a fact. [`LoggingOracle`] wraps any oracle and records
//! each interaction; [`ReplayOracle`] plays a recorded log back, which makes
//! adaptive runs auditable and exactly reproducible without access to the
//! original world (or the RNG state that produced it).

use crate::oracle::InfluenceOracle;
use smin_graph::NodeId;

/// One observe step: the seeds submitted and the nodes that lit up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservationStep {
    /// Seeds submitted in this step.
    pub seeds: Vec<NodeId>,
    /// Newly activated nodes returned by the world.
    pub activated: Vec<NodeId>,
}

/// A full campaign history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObservationLog {
    /// Number of nodes in the graph the log was recorded against.
    pub n: usize,
    /// Steps in submission order.
    pub steps: Vec<ObservationStep>,
}

impl ObservationLog {
    /// Total nodes activated across all steps.
    pub fn total_activated(&self) -> usize {
        self.steps.iter().map(|s| s.activated.len()).sum()
    }

    /// All seeds in submission order.
    pub fn seeds(&self) -> Vec<NodeId> {
        self.steps
            .iter()
            .flat_map(|s| s.seeds.iter().copied())
            .collect()
    }

    /// Serializes to a simple line format (`S u1 u2 | A v1 v2` per step).
    pub fn to_text(&self) -> String {
        let mut out = format!("# observation log, n = {}\n", self.n);
        for step in &self.steps {
            out.push('S');
            for s in &step.seeds {
                out.push_str(&format!(" {s}"));
            }
            out.push_str(" | A");
            for a in &step.activated {
                out.push_str(&format!(" {a}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the format written by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<ObservationLog, String> {
        let mut log = ObservationLog::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(n) = rest.split("n =").nth(1) {
                    log.n = n
                        .trim()
                        .parse()
                        .map_err(|e| format!("line {}: bad n: {e}", i + 1))?;
                }
                continue;
            }
            let body = line
                .strip_prefix('S')
                .ok_or_else(|| format!("line {}: expected 'S ... | A ...'", i + 1))?;
            let (seeds, activated) = body
                .split_once("| A")
                .ok_or_else(|| format!("line {}: missing '| A'", i + 1))?;
            let parse_ids = |s: &str| -> Result<Vec<NodeId>, String> {
                s.split_whitespace()
                    .map(|t| {
                        t.parse::<NodeId>()
                            .map_err(|e| format!("line {}: {e}", i + 1))
                    })
                    .collect()
            };
            log.steps.push(ObservationStep {
                seeds: parse_ids(seeds)?,
                activated: parse_ids(activated)?,
            });
        }
        Ok(log)
    }
}

/// Wraps an oracle, recording every interaction.
pub struct LoggingOracle<O: InfluenceOracle> {
    inner: O,
    log: ObservationLog,
}

impl<O: InfluenceOracle> LoggingOracle<O> {
    /// Starts recording on top of `inner`.
    pub fn new(inner: O, n: usize) -> Self {
        LoggingOracle {
            inner,
            log: ObservationLog {
                n,
                steps: Vec::new(),
            },
        }
    }

    /// The recorded history so far.
    pub fn log(&self) -> &ObservationLog {
        &self.log
    }

    /// Consumes the wrapper, returning the log and the inner oracle.
    pub fn into_parts(self) -> (ObservationLog, O) {
        (self.log, self.inner)
    }
}

impl<O: InfluenceOracle> InfluenceOracle for LoggingOracle<O> {
    fn observe(&mut self, seeds: &[NodeId]) -> Vec<NodeId> {
        let activated = self.inner.observe(seeds);
        self.log.steps.push(ObservationStep {
            seeds: seeds.to_vec(),
            activated: activated.clone(),
        });
        activated
    }

    fn active_mask(&self) -> &[bool] {
        self.inner.active_mask()
    }

    fn num_active(&self) -> usize {
        self.inner.num_active()
    }
}

/// Replays a recorded log. Each `observe` must submit exactly the seeds of
/// the next recorded step (the usual case: re-driving the same policy with
/// the same RNG seed); mismatches produce a panic with a precise diagnostic
/// rather than silently diverging.
pub struct ReplayOracle {
    log: ObservationLog,
    next: usize,
    active: Vec<bool>,
    num_active: usize,
}

impl ReplayOracle {
    /// Prepares a replay of `log`.
    pub fn new(log: ObservationLog) -> Self {
        let n = log.n;
        ReplayOracle {
            log,
            next: 0,
            active: vec![false; n],
            num_active: 0,
        }
    }

    /// Steps remaining.
    pub fn remaining(&self) -> usize {
        self.log.steps.len() - self.next
    }
}

impl InfluenceOracle for ReplayOracle {
    fn observe(&mut self, seeds: &[NodeId]) -> Vec<NodeId> {
        let step = self
            .log
            .steps
            .get(self.next)
            .unwrap_or_else(|| panic!("replay exhausted after {} steps", self.next));
        assert_eq!(
            seeds,
            &step.seeds[..],
            "replay divergence at step {}: submitted {seeds:?}, recorded {:?}",
            self.next,
            step.seeds
        );
        self.next += 1;
        for &a in &step.activated {
            if !self.active[a as usize] {
                self.active[a as usize] = true;
                self.num_active += 1;
            }
        }
        step.activated.clone()
    }

    fn active_mask(&self) -> &[bool] {
        &self.active
    }

    fn num_active(&self) -> usize {
        self.num_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RealizationOracle;
    use crate::realization::Realization;
    use smin_graph::GraphBuilder;

    fn path3() -> smin_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_p(0, 1, 1.0).unwrap();
        b.add_edge_p(1, 2, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn logging_records_interactions() {
        let g = path3();
        let phi = Realization::from_ic_statuses(vec![true, false]);
        let inner = RealizationOracle::new(&g, phi);
        let mut oracle = LoggingOracle::new(inner, 3);
        oracle.observe(&[0]);
        oracle.observe(&[2]);
        let (log, _) = oracle.into_parts();
        assert_eq!(log.steps.len(), 2);
        assert_eq!(log.steps[0].seeds, vec![0]);
        assert_eq!(log.total_activated(), 3);
        assert_eq!(log.seeds(), vec![0, 2]);
    }

    #[test]
    fn replay_reproduces_the_run() {
        let g = path3();
        let phi = Realization::from_ic_statuses(vec![true, true]);
        let mut rec = LoggingOracle::new(RealizationOracle::new(&g, phi), 3);
        let first = rec.observe(&[0]);
        let (log, _) = rec.into_parts();

        let mut replay = ReplayOracle::new(log);
        assert_eq!(replay.remaining(), 1);
        let replayed = replay.observe(&[0]);
        assert_eq!(replayed, first);
        assert_eq!(replay.num_active(), 3);
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "replay divergence")]
    fn replay_detects_divergence() {
        let log = ObservationLog {
            n: 3,
            steps: vec![ObservationStep {
                seeds: vec![0],
                activated: vec![0],
            }],
        };
        let mut replay = ReplayOracle::new(log);
        let _ = replay.observe(&[1]);
    }

    #[test]
    #[should_panic(expected = "replay exhausted")]
    fn replay_detects_exhaustion() {
        let mut replay = ReplayOracle::new(ObservationLog {
            n: 2,
            steps: vec![],
        });
        let _ = replay.observe(&[0]);
    }

    #[test]
    fn text_roundtrip() {
        let log = ObservationLog {
            n: 5,
            steps: vec![
                ObservationStep {
                    seeds: vec![1, 2],
                    activated: vec![1, 2, 4],
                },
                ObservationStep {
                    seeds: vec![0],
                    activated: vec![0],
                },
            ],
        };
        let text = log.to_text();
        let back = ObservationLog::from_text(&text).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(ObservationLog::from_text("S 1 2 3").is_err());
        assert!(ObservationLog::from_text("X 1 | A 2").is_err());
        assert!(ObservationLog::from_text("S x | A 2").is_err());
    }
}
