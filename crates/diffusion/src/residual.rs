//! The residual graph `G_i` (§2.3) as a mutable alive-mask over the base
//! graph.
//!
//! After each adaptive round the nodes activated so far are removed;
//! `G_{i+1}` is the subgraph induced by the survivors. Rather than rebuilding
//! CSR arrays every round, [`ResidualState`] keeps:
//!
//! * `alive: Vec<bool>` — consulted by reverse BFS to skip dead nodes;
//! * a dense `alive_nodes` permutation with back-pointers — O(1) kill and
//!   O(k) uniform sampling of k *distinct* roots (partial Fisher–Yates),
//!   exactly what mRR-set generation needs.

use rand::Rng;
use smin_graph::NodeId;

/// Alive/dead bookkeeping for the residual graph.
#[derive(Clone, Debug)]
pub struct ResidualState {
    alive: Vec<bool>,
    /// Dense list of alive nodes (order unspecified).
    alive_nodes: Vec<NodeId>,
    /// `pos[u]` = index of `u` in `alive_nodes` (valid only while alive).
    pos: Vec<u32>,
}

impl ResidualState {
    /// All `n` nodes alive.
    pub fn new(n: usize) -> Self {
        ResidualState {
            alive: vec![true; n],
            alive_nodes: (0..n as NodeId).collect(),
            pos: (0..n as u32).collect(),
        }
    }

    /// Number of alive nodes `n_i`.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.alive_nodes.len()
    }

    /// Whether `u` is still alive (inactive).
    #[inline]
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u as usize]
    }

    /// Read-only alive mask (for BFS loops).
    #[inline]
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// The alive nodes in unspecified order.
    #[inline]
    pub fn alive_nodes(&self) -> &[NodeId] {
        &self.alive_nodes
    }

    /// Removes `u` (just activated). No-op if already dead.
    pub fn kill(&mut self, u: NodeId) {
        if !self.alive[u as usize] {
            return;
        }
        self.alive[u as usize] = false;
        let i = self.pos[u as usize] as usize;
        let last = *self.alive_nodes.last().expect("alive list cannot be empty here");
        self.alive_nodes.swap_remove(i);
        if last != u {
            self.pos[last as usize] = i as u32;
        }
    }

    /// Removes every node in `nodes`.
    pub fn kill_all(&mut self, nodes: &[NodeId]) {
        for &u in nodes {
            self.kill(u);
        }
    }

    /// Samples one alive node uniformly. Panics if none are alive.
    pub fn sample_alive(&self, rng: &mut impl Rng) -> NodeId {
        self.alive_nodes[rng.random_range(0..self.alive_nodes.len())]
    }

    /// Samples `k` *distinct* alive nodes uniformly into `out` via partial
    /// Fisher–Yates on the dense list (the internal order is permuted, which
    /// is harmless). Panics if `k > n_alive`.
    pub fn sample_k_distinct(&mut self, k: usize, rng: &mut impl Rng, out: &mut Vec<NodeId>) {
        assert!(
            k <= self.alive_nodes.len(),
            "cannot sample {k} distinct nodes from {} alive",
            self.alive_nodes.len()
        );
        out.clear();
        for i in 0..k {
            let j = rng.random_range(i..self.alive_nodes.len());
            self.alive_nodes.swap(i, j);
            let (a, b) = (self.alive_nodes[i], self.alive_nodes[j]);
            self.pos[a as usize] = i as u32;
            self.pos[b as usize] = j as u32;
            out.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn kill_updates_counts_and_mask() {
        let mut r = ResidualState::new(5);
        assert_eq!(r.n_alive(), 5);
        r.kill(2);
        assert_eq!(r.n_alive(), 4);
        assert!(!r.is_alive(2));
        assert!(r.is_alive(0));
        r.kill(2); // idempotent
        assert_eq!(r.n_alive(), 4);
    }

    #[test]
    fn kill_all_and_list_consistency() {
        let mut r = ResidualState::new(6);
        r.kill_all(&[0, 5, 3]);
        assert_eq!(r.n_alive(), 3);
        let mut alive: Vec<_> = r.alive_nodes().to_vec();
        alive.sort_unstable();
        assert_eq!(alive, vec![1, 2, 4]);
        for &u in r.alive_nodes() {
            assert!(r.is_alive(u));
        }
    }

    #[test]
    fn sample_k_distinct_properties() {
        let mut r = ResidualState::new(10);
        r.kill_all(&[0, 1, 2]);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut out = Vec::new();
        for _ in 0..200 {
            r.sample_k_distinct(4, &mut rng, &mut out);
            assert_eq!(out.len(), 4);
            let mut s = out.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "samples must be distinct");
            assert!(out.iter().all(|&u| r.is_alive(u)));
        }
    }

    #[test]
    fn sample_k_distinct_is_uniform() {
        let mut r = ResidualState::new(5);
        let mut rng = SmallRng::seed_from_u64(10);
        let mut out = Vec::new();
        let mut counts = [0usize; 5];
        let trials = 50_000;
        for _ in 0..trials {
            r.sample_k_distinct(2, &mut rng, &mut out);
            for &u in &out {
                counts[u as usize] += 1;
            }
        }
        // each node appears with probability 2/5
        for (u, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!((rate - 0.4).abs() < 0.02, "node {u}: rate = {rate}");
        }
    }

    #[test]
    fn kill_after_sampling_stays_consistent() {
        let mut r = ResidualState::new(8);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        r.sample_k_distinct(3, &mut rng, &mut out);
        let victim = out[0];
        r.kill(victim);
        assert!(!r.is_alive(victim));
        assert_eq!(r.n_alive(), 7);
        // the dense list no longer contains the victim
        assert!(!r.alive_nodes().contains(&victim));
        // and sampling still returns alive nodes only
        for _ in 0..50 {
            r.sample_k_distinct(5, &mut rng, &mut out);
            assert!(out.iter().all(|&u| r.is_alive(u)));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut r = ResidualState::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        r.sample_k_distinct(4, &mut rng, &mut out);
    }
}
